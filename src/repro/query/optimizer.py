"""Cost-based plan selection for single-source forall iterations.

The paper motivates ``suchthat``/``by`` clauses partly as optimizer fodder
(section 3.1). This module implements the selection: given a source and an
introspectable predicate, every applicable access path is *priced* using
the cluster's statistics (:mod:`repro.query.stats`) and the cheapest one
wins:

* **index equality lookup** — a conjunct ``A.f == c`` on an indexed field
  (hash or B+tree);
* **index range scan** — conjuncts ``A.f < c`` / ``<=`` / ``>`` / ``>=``
  combined into the tightest [lo, hi] interval on a B+tree-indexed field;
* **composite-index scan** — a composite (multi-field) B+tree index whose
  leading fields all have equality conjuncts, optionally with a range on
  the next field: executed as a tuple-key range scan;
* **full scan** — always a candidate, and *chosen* when statistics say the
  indexes are worse (a low-selectivity predicate on a small cluster pays
  more in random fetches than one sequential pass costs).

The cost model is row-based: a sequential scan visits ``N`` rows at unit
cost; an index plan pays a probe plus :data:`COST_FETCH_ROW` per fetched
row (random access through the object directory is dearer than the next
row of a heap scan). Selectivities come from per-field distinct counts and
min/max bounds; when the statistics are exact (tracked since empty, or
rebuilt by ``db.analyze()``) equality estimates use the actual value
frequency, so a query on a pathologically common value correctly falls
back to the full scan.

Whatever the access path, conjuncts not served by the index remain as a
residual filter (compiled once per execution, not re-interpreted per
row), so results are always exactly the suchthat subset.

Plans are cached per database, keyed on ``(cluster, predicate shape)`` —
the shape elides constants, so ``A.price < 3`` and ``A.price < 99`` share
an entry. A cache hit re-binds the cached access-path choice to the new
constants and re-estimates; entries are invalidated by index creation
(epoch bump) and by statistics drift (the cluster mutated too much since
the plan was chosen).

Only :class:`~repro.core.clusters.ClusterHandle` sources can use indexes
(deep views span clusters with different index sets; sets and lists are
memory-resident anyway).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterator, List, Optional, Tuple

from .predicates import And, Compare, Predicate, TrueP

# -- cost model constants -----------------------------------------------------

#: Cost of visiting one row in a sequential heap scan.
COST_SEQ_ROW = 1.0
#: Cost of one index descent/probe.
COST_INDEX_PROBE = 2.0
#: Cost of fetching one row found through an index (random access through
#: the object directory: pricier than the next row of a heap scan, but the
#: directory is hashed and pages are pooled, so not by much).
COST_FETCH_ROW = 1.5

#: Defaults when no statistics exist for the cluster.
DEFAULT_ROWS = 1000
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 0.3
DEFAULT_OTHER_SEL = 0.5

#: Number of plans built from scratch (not served by a cache); a test and
#: ``db.stats()`` read this to verify caching works.
PLAN_BUILDS = 0


class Plan:
    """An executable access path producing the iteration subset."""

    #: Estimated number of rows the plan yields (after residual filter).
    estimated_rows: float = 0.0
    #: Estimated execution cost in cost-model units.
    estimated_cost: float = 0.0
    #: The operator span from the most recent traced execution (set by
    #: the iteration layer when tracing is on; None otherwise).
    last_span = None

    def execute(self, span=None) -> Iterator:
        """Iterate the plan's rows.

        *span* (a :class:`repro.obs.trace.Span`) turns on row accounting
        at batch granularity; when it is None — the default — every plan
        runs its original untraced code path.
        """
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def _estimate_suffix(self) -> str:
        return " [est %.0f rows, cost %.1f]" % (self.estimated_rows,
                                                self.estimated_cost)


class FullScan(Plan):
    """Iterate the source, filtering with the whole predicate.

    Cluster (and deep-view) sources expose ``iter_batches()`` — page-at-a-
    time lists of decoded objects — and the compiled residual is applied
    across each batch, so the per-object cost is one closure call instead
    of a generator-chain hop per row.
    """

    def __init__(self, source, pred: Predicate):
        self.source = source
        self.pred = pred

    def execute(self, span=None) -> Iterator:
        pred = self.pred
        iter_batches = getattr(self.source, "iter_batches", None)
        if iter_batches is None:
            if isinstance(pred, TrueP):
                check = None
            else:
                check = (pred.compiled() if isinstance(pred, Predicate)
                         else pred)
            if span is None:
                if check is None:
                    return iter(self.source)
                return (obj for obj in self.source if check(obj))

            def counted() -> Iterator:
                for obj in self.source:
                    span.rows_in += 1
                    if check is None or check(obj):
                        span.rows_out += 1
                        yield obj
            return counted()
        if isinstance(pred, TrueP):
            if span is None:
                return (obj for batch in iter_batches() for obj in batch)

            def passthrough() -> Iterator:
                for batch in iter_batches():
                    span.rows_in += len(batch)
                    span.rows_out += len(batch)
                    yield from batch
            return passthrough()
        check = pred.compiled() if isinstance(pred, Predicate) else pred
        if span is None:
            def batched() -> Iterator:
                for batch in iter_batches():
                    # One list-comprehension pass per page: the filter loop
                    # runs in C instead of hopping through a generator chain.
                    matched = [obj for obj in batch if check(obj)]
                    if matched:
                        yield from matched
            return batched()

        def batched_traced() -> Iterator:
            for batch in iter_batches():
                span.rows_in += len(batch)
                matched = [obj for obj in batch if check(obj)]
                span.rows_out += len(matched)
                if matched:
                    yield from matched
        return batched_traced()

    def describe(self) -> str:
        return ("full scan of %r filter %r" % (self.source, self.pred)
                + self._estimate_suffix())


#: Objects materialized per chunk by index-driven plans before the
#: residual filter runs across the chunk. Bounds the extra work an
#: early-exiting consumer pays while still amortizing the filter loop.
INDEX_BATCH = 32


def _batched_matches(db, cluster: str, serials, check, span=None) -> Iterator:
    """Materialize *serials*, applying *check* a chunk at a time.

    The deref path behind this hits the database's decoded-object cache,
    so re-visiting an unchanged object costs page-LSN validations, not
    directory probes + decodes. Yield order follows *serials* (index key
    order), which ordered iteration relies on. *span* adds row accounting
    at chunk granularity (traced executions only).
    """
    from ..core.oid import Oid
    cache = db._cache
    deref = db.deref
    chunk: List = []
    for serial in serials:
        obj = cache.get((cluster, serial))
        if obj is None:
            obj = deref(Oid(cluster, serial), _missing_ok=True)
            if obj is None:
                continue
        chunk.append(obj)
        if len(chunk) >= INDEX_BATCH:
            matched = (chunk if check is None
                       else [o for o in chunk if check(o)])
            if span is not None:
                span.rows_in += len(chunk)
                span.rows_out += len(matched)
            yield from matched
            chunk = []
    if chunk:
        matched = (chunk if check is None
                   else [o for o in chunk if check(o)])
        if span is not None:
            span.rows_in += len(chunk)
            span.rows_out += len(matched)
        yield from matched


class IndexEquality(Plan):
    """Probe an index for one key; residual-filter the matches."""

    def __init__(self, handle, field: str, value: Any, residual: Predicate):
        self.handle = handle
        self.field = field
        self.value = value
        self.residual = residual

    def execute(self, span=None) -> Iterator:
        db = self.handle.db
        self._flush_pending(db)
        cluster = self.handle.name
        db._lock_cluster_scan(cluster)
        check = (None if isinstance(self.residual, TrueP)
                 else self.residual.compiled())
        serials = db.store.index_search(cluster, self.field, self.value)
        return _batched_matches(db, cluster, serials, check, span)

    def _flush_pending(self, db) -> None:
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)

    def describe(self) -> str:
        return ("index eq-lookup %s.%s == %r residual %r" % (
            self.handle.name, self.field, self.value, self.residual)
            + self._estimate_suffix())


class IndexRange(Plan):
    """Range-scan a B+tree index; residual-filter the matches."""

    def __init__(self, handle, field: str, lo, lo_strict, hi, hi_strict,
                 residual: Predicate):
        self.handle = handle
        self.field = field
        self.lo = lo
        self.lo_strict = lo_strict
        self.hi = hi
        self.hi_strict = hi_strict
        self.residual = residual

    def execute(self, span=None) -> Iterator:
        db = self.handle.db
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        cluster = self.handle.name
        db._lock_cluster_scan(cluster)
        check = (None if isinstance(self.residual, TrueP)
                 else self.residual.compiled())

        def serials():
            for key, serial in db.store.index_range(
                    cluster, self.field, self.lo, self.hi,
                    include_hi=not self.hi_strict):
                if self.lo_strict and key == self.lo:
                    continue
                yield serial
        yield from _batched_matches(db, cluster, serials(), check, span)

    def describe(self) -> str:
        lo_b = "(" if self.lo_strict else "["
        hi_b = ")" if self.hi_strict else "]"
        return ("index range-scan %s.%s in %s%r, %r%s residual %r" % (
            self.handle.name, self.field, lo_b, self.lo, self.hi, hi_b,
            self.residual) + self._estimate_suffix())


class CompositeScan(Plan):
    """Tuple-key range scan over a composite B+tree index.

    *eq_values* fixes the leading fields; an optional range on the next
    field tightens the bounds. The scan visits exactly the tuples whose
    prefix matches, residual-filtering the rest of the predicate.
    """

    def __init__(self, handle, index_name: str, n_fields: int,
                 eq_values: List[Any], lo, lo_strict, hi, hi_strict,
                 residual: Predicate):
        self.handle = handle
        self.index_name = index_name
        self.n_fields = n_fields
        self.eq_values = list(eq_values)
        self.lo = lo
        self.lo_strict = lo_strict
        self.hi = hi
        self.hi_strict = hi_strict
        self.residual = residual

    def execute(self, span=None) -> Iterator:
        db = self.handle.db
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        cluster = self.handle.name
        db._lock_cluster_scan(cluster)
        check = (None if isinstance(self.residual, TrueP)
                 else self.residual.compiled())
        prefix = tuple(self.eq_values)
        lo_key = prefix if self.lo is None else prefix + (self.lo,)
        k = len(prefix)

        def serials():
            for key, serial in db.store.index_range(
                    cluster, self.index_name, lo_key, None):
                if key[:k] != prefix:
                    break  # past the matching prefix: done
                if (self.lo is not None and self.lo_strict
                        and len(key) > k and key[k] == self.lo):
                    continue
                if self.hi is not None and len(key) > k:
                    if key[k] > self.hi or (self.hi_strict
                                            and key[k] == self.hi):
                        break
                yield serial
        yield from _batched_matches(db, cluster, serials(), check, span)

    def describe(self) -> str:
        bound = ""
        if self.lo is not None or self.hi is not None:
            bound = " next-field in %s%r, %r%s" % (
                "(" if self.lo_strict else "[", self.lo, self.hi,
                ")" if self.hi_strict else "]")
        return ("composite-index scan %s.%s prefix=%r%s residual %r" % (
            self.handle.name, self.index_name, self.eq_values, bound,
            self.residual) + self._estimate_suffix())


# -- selectivity estimation ---------------------------------------------------

def _cluster_stats(source):
    db = getattr(source, "db", None)
    manager = getattr(db, "cluster_stats", None)
    if manager is None:
        return None
    return manager.get(source.name)


def _row_count(stats) -> float:
    if stats is None:
        return float(DEFAULT_ROWS)
    return float(max(stats.count, 1))


def _eq_selectivity(stats, field: str, value) -> float:
    """Fraction of rows matching ``field == value``."""
    if stats is None:
        return DEFAULT_EQ_SEL
    n = max(stats.count, 1)
    fs = stats.field(field)
    if fs is None:
        return DEFAULT_EQ_SEL
    if fs.counts is not None:
        try:
            return fs.counts.get(value, 0) / float(n)
        except TypeError:
            pass  # unhashable probe value
    if fs.n_distinct > 0:
        return 1.0 / fs.n_distinct
    return DEFAULT_EQ_SEL


def _range_selectivity(stats, field: str, lo, hi) -> float:
    """Fraction of rows with ``field`` inside [lo, hi] (None = open)."""
    if stats is None:
        return DEFAULT_RANGE_SEL
    fs = stats.field(field)
    if fs is None or fs.min is None or fs.max is None:
        return DEFAULT_RANGE_SEL
    try:
        width = float(fs.max - fs.min)
    except TypeError:
        return DEFAULT_RANGE_SEL  # non-numeric domain
    if width <= 0:
        return 1.0  # single-valued domain: a covering range matches all
    try:
        eff_lo = fs.min if lo is None else max(lo, fs.min)
        eff_hi = fs.max if hi is None else min(hi, fs.max)
        frac = (float(eff_hi) - float(eff_lo)) / width
    except TypeError:
        return DEFAULT_RANGE_SEL
    return min(max(frac, 0.0), 1.0)


def _conjunct_selectivity(stats, conj: Predicate) -> float:
    if isinstance(conj, Compare):
        if conj.op == "==":
            return _eq_selectivity(stats, conj.attr, conj.value)
        if conj.op == "!=":
            return 1.0 - _eq_selectivity(stats, conj.attr, conj.value)
        if conj.op in ("<", "<="):
            return _range_selectivity(stats, conj.attr, None, conj.value)
        return _range_selectivity(stats, conj.attr, conj.value, None)
    return DEFAULT_OTHER_SEL


def predicate_selectivity(stats, pred: Predicate) -> float:
    """Estimated fraction of rows satisfying *pred* (independence
    assumption across conjuncts)."""
    sel = 1.0
    for conj in pred.conjuncts():
        sel *= _conjunct_selectivity(stats, conj)
    return sel


# -- plan construction & costing ----------------------------------------------

class _Candidate:
    __slots__ = ("plan", "spec", "cost")

    def __init__(self, plan, spec, cost):
        self.plan = plan
        self.spec = spec
        self.cost = cost


def _residual(conjuncts: List[Predicate],
              consumed: List[Predicate]) -> Predicate:
    rest = [c for c in conjuncts if not any(c is used for used in consumed)]
    if not rest:
        return TrueP()
    if len(rest) == 1:
        return rest[0]
    return And(*rest)


def _fold_bounds(bounds: List[Compare]):
    """Tightest [lo, hi] interval implied by range comparisons."""
    lo, lo_strict, hi, hi_strict = None, False, None, False
    for comp in bounds:
        if comp.op in (">", ">="):
            if lo is None or comp.value > lo:
                lo, lo_strict = comp.value, comp.op == ">"
            elif comp.value == lo:
                lo_strict = lo_strict or comp.op == ">"
        else:
            if hi is None or comp.value < hi:
                hi, hi_strict = comp.value, comp.op == "<"
            elif comp.value == hi:
                hi_strict = hi_strict or comp.op == "<"
    return lo, lo_strict, hi, hi_strict


def _finish(plan: Plan, stats, pred: Predicate, access_rows: float,
            cost: float, total_rows: Optional[float] = None) -> Plan:
    # estimated_rows reflects the full predicate, but never exceeds what
    # the access path yields.
    n = _row_count(stats) if total_rows is None else total_rows
    plan.estimated_rows = min(access_rows,
                              max(0.0, n * predicate_selectivity(stats, pred)))
    plan.estimated_cost = cost
    return plan


def _build_candidates(source, pred: Predicate,
                      conjuncts: List[Predicate], stats) -> List[_Candidate]:
    """All applicable access paths, each priced. Index candidates first so
    a cost tie resolves in their favour (matching the pre-cost-model
    behaviour); the full scan is always last."""
    indexed = source.db.store.indexes_on(source.name)
    n = _row_count(stats)
    candidates: List[_Candidate] = []

    comparisons = [(i, c) for i, c in enumerate(conjuncts)
                   if isinstance(c, Compare)]
    eq_by_field = {}
    for i, comp in comparisons:
        if comp.op == "==" and comp.attr not in eq_by_field:
            eq_by_field[comp.attr] = (i, comp)

    for name in sorted(indexed):
        info = indexed[name]
        # 1. full-equality match (single or composite, any index kind).
        if all(f in eq_by_field for f in info.fields):
            idxs = [eq_by_field[f][0] for f in info.fields]
            used = [eq_by_field[f][1] for f in info.fields]
            residual = _residual(conjuncts, used)
            if len(info.fields) == 1:
                key = used[0].value
            else:
                key = tuple(c.value for c in used)
            sel = 1.0
            for comp in used:
                sel *= _eq_selectivity(stats, comp.attr, comp.value)
            if info.unique:
                access = min(n * sel, 1.0)
            else:
                access = n * sel
            cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
            plan = _finish(IndexEquality(source, name, key, residual),
                           stats, pred, access, cost)
            candidates.append(_Candidate(plan, ("eq", name, tuple(idxs)),
                                         cost))
            continue
        if info.kind != "btree":
            continue
        # 2. composite B+tree with equality on a proper prefix (and an
        #    optional range on the field right after the prefix).
        if len(info.fields) >= 2:
            prefix_idx: List[int] = []
            prefix: List[Compare] = []
            for f in info.fields:
                if f in eq_by_field:
                    prefix_idx.append(eq_by_field[f][0])
                    prefix.append(eq_by_field[f][1])
                else:
                    break
            if prefix:
                used = list(prefix)
                next_field = (info.fields[len(prefix)]
                              if len(prefix) < len(info.fields) else None)
                lo = lo_strict = hi = hi_strict = None
                bound_idx: List[int] = []
                if next_field is not None:
                    bounds = [(i, c) for i, c in comparisons
                              if c.attr == next_field
                              and c.op in ("<", "<=", ">", ">=")]
                    bound_idx = [i for i, _ in bounds]
                    folded = [c for _, c in bounds]
                    lo, lo_strict, hi, hi_strict = _fold_bounds(folded)
                    used = used + folded
                residual = _residual(conjuncts, used)
                sel = 1.0
                for comp in prefix:
                    sel *= _eq_selectivity(stats, comp.attr, comp.value)
                if next_field is not None and (lo is not None
                                               or hi is not None):
                    sel *= _range_selectivity(stats, next_field, lo, hi)
                access = n * sel
                cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
                plan = _finish(
                    CompositeScan(source, name, len(info.fields),
                                  [c.value for c in prefix], lo,
                                  bool(lo_strict), hi, bool(hi_strict),
                                  residual),
                    stats, pred, access, cost)
                candidates.append(_Candidate(
                    plan, ("comp", name, len(info.fields),
                           tuple(prefix_idx), tuple(bound_idx)), cost))
            continue
        # 3. range on a single-field B+tree index.
        field = info.fields[0]
        bounds = [(i, c) for i, c in comparisons
                  if c.attr == field and c.op in ("<", "<=", ">", ">=")]
        if not bounds:
            continue
        folded = [c for _, c in bounds]
        lo, lo_strict, hi, hi_strict = _fold_bounds(folded)
        residual = _residual(conjuncts, folded)
        sel = _range_selectivity(stats, field, lo, hi)
        access = n * sel
        cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
        plan = _finish(
            IndexRange(source, name, lo, bool(lo_strict), hi,
                       bool(hi_strict), residual),
            stats, pred, access, cost)
        candidates.append(_Candidate(
            plan, ("range", name, tuple(i for i, _ in bounds)), cost))

    # Full scan: always applicable, listed last so index plans win ties.
    scan_cost = n * COST_SEQ_ROW
    plan = _finish(FullScan(source, pred), stats, pred, n, scan_cost)
    candidates.append(_Candidate(plan, ("full",), scan_cost))
    return candidates


def _bind_spec(spec, source, pred: Predicate, conjuncts: List[Predicate],
               stats) -> Optional[Plan]:
    """Rebuild the plan a cached spec describes, with this predicate's
    constants. Returns None if the predicate no longer fits the spec
    (shouldn't happen for same-shape predicates, but be safe)."""
    kind = spec[0]
    n = _row_count(stats)
    try:
        if kind == "full":
            plan = FullScan(source, pred)
            return _finish(plan, stats, pred, n, n * COST_SEQ_ROW)
        if kind == "eq":
            _, name, idxs = spec
            used = [conjuncts[i] for i in idxs]
            residual = _residual(conjuncts, used)
            key = used[0].value if len(used) == 1 else tuple(
                c.value for c in used)
            sel = 1.0
            for comp in used:
                sel *= _eq_selectivity(stats, comp.attr, comp.value)
            access = n * sel
            cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
            return _finish(IndexEquality(source, name, key, residual),
                           stats, pred, access, cost)
        if kind == "range":
            _, name, idxs = spec
            folded = [conjuncts[i] for i in idxs]
            lo, lo_strict, hi, hi_strict = _fold_bounds(folded)
            residual = _residual(conjuncts, folded)
            field = folded[0].attr
            access = n * _range_selectivity(stats, field, lo, hi)
            cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
            return _finish(
                IndexRange(source, name, lo, bool(lo_strict), hi,
                           bool(hi_strict), residual),
                stats, pred, access, cost)
        if kind == "comp":
            _, name, n_fields, prefix_idx, bound_idx = spec
            prefix = [conjuncts[i] for i in prefix_idx]
            folded = [conjuncts[i] for i in bound_idx]
            lo, lo_strict, hi, hi_strict = _fold_bounds(folded)
            used = prefix + folded
            residual = _residual(conjuncts, used)
            sel = 1.0
            for comp in prefix:
                sel *= _eq_selectivity(stats, comp.attr, comp.value)
            if folded:
                sel *= _range_selectivity(stats, folded[0].attr, lo, hi)
            access = n * sel
            cost = COST_INDEX_PROBE + access * COST_FETCH_ROW
            return _finish(
                CompositeScan(source, name, n_fields,
                              [c.value for c in prefix], lo,
                              bool(lo_strict), hi, bool(hi_strict),
                              residual),
                stats, pred, access, cost)
    except (IndexError, AttributeError):
        return None
    return None


# -- plan cache ---------------------------------------------------------------

#: A cached plan is stale once the cluster has seen more than
#: ``max(_DRIFT_FLOOR, _DRIFT_FRACTION * count_at_build)`` mutations.
_DRIFT_FLOOR = 32
_DRIFT_FRACTION = 0.25


class _CacheEntry:
    __slots__ = ("spec", "epoch", "stats_version", "count_at_build")

    def __init__(self, spec, epoch, stats_version, count_at_build):
        self.spec = spec
        self.epoch = epoch
        self.stats_version = stats_version
        self.count_at_build = count_at_build


class PlanCache:
    """LRU cache of access-path choices keyed on (cluster, shape).

    Thread-safe: lookups and stores from concurrent sessions share one
    mutex (plan specs themselves are immutable once stored).
    """

    def __init__(self, capacity: int = 256):
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._mutex = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, cluster: str, shape, epoch: int, stats):
        with self._mutex:
            key = (cluster, shape)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            if entry.epoch != epoch or self._drifted(entry, stats):
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    @staticmethod
    def _drifted(entry: _CacheEntry, stats) -> bool:
        if stats is None:
            return entry.stats_version is not None
        if entry.stats_version is None:
            return True
        drift = stats.version - entry.stats_version
        limit = max(_DRIFT_FLOOR, entry.count_at_build * _DRIFT_FRACTION)
        return drift > limit

    def store(self, cluster: str, shape, spec, epoch: int, stats) -> None:
        with self._mutex:
            key = (cluster, shape)
            self._entries[key] = _CacheEntry(
                spec, epoch,
                None if stats is None else stats.version,
                0 if stats is None else stats.count)
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()

    def invalidate_cluster(self, cluster: str) -> None:
        """Drop the cached plans for one cluster, keeping the rest.

        An aborted transaction only disturbs the statistics (and hence
        plan choices) of the clusters it touched; plans over other
        clusters stay warm.
        """
        with self._mutex:
            doomed = [key for key in self._entries if key[0] == cluster]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)

    def stats(self) -> dict:
        with self._mutex:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "entries": len(self._entries),
                "invalidations": self.invalidations,
            }


# -- entry point --------------------------------------------------------------

def choose_plan(source, pred: Predicate) -> Plan:
    """Pick the cheapest applicable plan for iterating *source*."""
    global PLAN_BUILDS
    from ..core.clusters import ClusterHandle
    if not isinstance(source, ClusterHandle) or not source.exists:
        PLAN_BUILDS += 1
        plan = FullScan(source, pred)
        try:
            n = float(len(source))
        except TypeError:
            n = float(DEFAULT_ROWS)
        return _finish(plan, None, pred, n, n * COST_SEQ_ROW, total_rows=n)
    db = source.db
    stats = _cluster_stats(source)
    cache: Optional[PlanCache] = getattr(db, "plan_cache", None)
    epoch = getattr(db, "_plan_epoch", 0)
    conjuncts = pred.conjuncts()
    shape = pred.shape()
    if cache is not None and shape is not None:
        entry = cache.lookup(source.name, shape, epoch, stats)
        if entry is not None:
            plan = _rebind(entry.spec, source, pred, conjuncts, stats)
            if plan is not None:
                return plan
    PLAN_BUILDS += 1
    candidates = _build_candidates(source, pred, conjuncts, stats)
    best = candidates[0]
    for cand in candidates[1:]:
        if cand.cost < best.cost:
            best = cand
    if cache is not None and shape is not None:
        spec = best.spec
        if spec[0] == "full":
            # Remember the cheapest index alternative: the shape elides
            # constants, so a later same-shape predicate with a *rarer*
            # constant can flip back to the index at bind time.
            alts = [c for c in candidates if c.spec[0] != "full"]
            if alts:
                spec = ("full", min(alts, key=lambda c: c.cost).spec)
        cache.store(source.name, shape, spec, epoch, stats)
    return best.plan


def _rebind(spec, source, pred: Predicate, conjuncts: List[Predicate],
            stats) -> Optional[Plan]:
    """Bind a cached spec to this predicate's constants, re-deciding the
    index-vs-scan flip with the *current* estimates.

    Constants are elided from the cache key, so the same shape may cover
    constants with wildly different frequencies (when statistics are
    exact, equality selectivity is the actual value frequency). The
    cached access path is therefore sanity-checked: an index plan that
    now prices worse than a sequential pass falls back to the full scan,
    and a cached full scan whose recorded index alternative now prices
    better flips to it.
    """
    plan = _bind_spec(spec, source, pred, conjuncts, stats)
    if plan is None:
        return None
    n = _row_count(stats)
    scan_cost = n * COST_SEQ_ROW
    if spec[0] == "full":
        if len(spec) > 1 and spec[1] is not None:
            alt = _bind_spec(spec[1], source, pred, conjuncts, stats)
            if alt is not None and alt.estimated_cost < plan.estimated_cost:
                return alt
        return plan
    if plan.estimated_cost > scan_cost:
        return _finish(FullScan(source, pred), stats, pred, n, scan_cost)
    return plan
