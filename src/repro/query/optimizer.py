"""Plan selection for single-source forall iterations.

The paper motivates ``suchthat``/``by`` clauses partly as optimizer fodder
(section 3.1). This module implements the selection: given a source and an
introspectable predicate, choose between

* **index equality lookup** — a conjunct ``A.f == c`` on an indexed field
  (hash or B+tree);
* **index range scan** — conjuncts ``A.f < c`` / ``<=`` / ``>`` / ``>=``
  combined into the tightest [lo, hi] interval on a B+tree-indexed field;
* **composite-index scan** — a composite (multi-field) B+tree index whose
  leading fields all have equality conjuncts, optionally with a range on
  the next field: executed as a tuple-key range scan;
* **full scan** — everything else (opaque callables included).

Whatever the access path, conjuncts not served by the index remain as a
residual filter, so results are always exactly the suchthat subset.

Only :class:`~repro.core.clusters.ClusterHandle` sources can use indexes
(deep views span clusters with different index sets; sets and lists are
memory-resident anyway).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from .predicates import And, Compare, Predicate, TrueP


class Plan:
    """An executable access path producing the iteration subset."""

    def execute(self) -> Iterator:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FullScan(Plan):
    """Iterate the source, filtering with the whole predicate."""

    def __init__(self, source, pred: Predicate):
        self.source = source
        self.pred = pred

    def execute(self) -> Iterator:
        pred = self.pred
        if isinstance(pred, TrueP):
            return iter(self.source)
        return (obj for obj in self.source if pred(obj))

    def describe(self) -> str:
        return "full scan of %r filter %r" % (self.source, self.pred)


class IndexEquality(Plan):
    """Probe an index for one key; residual-filter the matches."""

    def __init__(self, handle, field: str, value: Any, residual: Predicate):
        self.handle = handle
        self.field = field
        self.value = value
        self.residual = residual

    def execute(self) -> Iterator:
        db = self.handle.db
        self._flush_pending(db)
        index = db.store.index(self.handle.name, self.field)
        from ..core.oid import Oid
        for serial in index.search(self.value):
            obj = db.deref(Oid(self.handle.name, serial), _missing_ok=True)
            if obj is not None and self.residual(obj):
                yield obj

    def _flush_pending(self, db) -> None:
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)

    def describe(self) -> str:
        return "index eq-lookup %s.%s == %r residual %r" % (
            self.handle.name, self.field, self.value, self.residual)


class IndexRange(Plan):
    """Range-scan a B+tree index; residual-filter the matches."""

    def __init__(self, handle, field: str, lo, lo_strict, hi, hi_strict,
                 residual: Predicate):
        self.handle = handle
        self.field = field
        self.lo = lo
        self.lo_strict = lo_strict
        self.hi = hi
        self.hi_strict = hi_strict
        self.residual = residual

    def execute(self) -> Iterator:
        db = self.handle.db
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        index = db.store.index(self.handle.name, self.field)
        from ..core.oid import Oid
        for key, serial in index.range(self.lo, self.hi,
                                       include_hi=not self.hi_strict):
            if self.lo_strict and key == self.lo:
                continue
            obj = db.deref(Oid(self.handle.name, serial), _missing_ok=True)
            if obj is not None and self.residual(obj):
                yield obj

    def describe(self) -> str:
        lo_b = "(" if self.lo_strict else "["
        hi_b = ")" if self.hi_strict else "]"
        return "index range-scan %s.%s in %s%r, %r%s residual %r" % (
            self.handle.name, self.field, lo_b, self.lo, self.hi, hi_b,
            self.residual)


class CompositeScan(Plan):
    """Tuple-key range scan over a composite B+tree index.

    *eq_values* fixes the leading fields; an optional range on the next
    field tightens the bounds. The scan visits exactly the tuples whose
    prefix matches, residual-filtering the rest of the predicate.
    """

    def __init__(self, handle, index_name: str, n_fields: int,
                 eq_values: List[Any], lo, lo_strict, hi, hi_strict,
                 residual: Predicate):
        self.handle = handle
        self.index_name = index_name
        self.n_fields = n_fields
        self.eq_values = list(eq_values)
        self.lo = lo
        self.lo_strict = lo_strict
        self.hi = hi
        self.hi_strict = hi_strict
        self.residual = residual

    def execute(self) -> Iterator:
        db = self.handle.db
        if db._txn is not None and db._dirty:
            db._flush(db._txn.txn_id)
        index = db.store.index(self.handle.name, self.index_name)
        from ..core.oid import Oid
        prefix = tuple(self.eq_values)
        lo_key = prefix if self.lo is None else prefix + (self.lo,)
        k = len(prefix)
        for key, serial in index.range(lo_key, None):
            if key[:k] != prefix:
                break  # past the matching prefix: done
            if (self.lo is not None and self.lo_strict
                    and len(key) > k and key[k] == self.lo):
                continue
            if self.hi is not None and len(key) > k:
                if key[k] > self.hi or (self.hi_strict
                                        and key[k] == self.hi):
                    break
            obj = db.deref(Oid(self.handle.name, serial), _missing_ok=True)
            if obj is not None and self.residual(obj):
                yield obj

    def describe(self) -> str:
        bound = ""
        if self.lo is not None or self.hi is not None:
            bound = " next-field in %s%r, %r%s" % (
                "(" if self.lo_strict else "[", self.lo, self.hi,
                ")" if self.hi_strict else "]")
        return "composite-index scan %s.%s prefix=%r%s residual %r" % (
            self.handle.name, self.index_name, self.eq_values, bound,
            self.residual)


def choose_plan(source, pred: Predicate) -> Plan:
    """Pick the cheapest applicable plan for iterating *source*."""
    from ..core.clusters import ClusterHandle
    if not isinstance(source, ClusterHandle) or not source.exists:
        return FullScan(source, pred)
    indexed = source.db.store.indexes_on(source.name)
    if not indexed:
        return FullScan(source, pred)
    conjuncts = pred.conjuncts()
    comparisons = [c for c in conjuncts if isinstance(c, Compare)]
    eq_by_field = {}
    for comp in comparisons:
        if comp.op == "==" and comp.attr not in eq_by_field:
            eq_by_field[comp.attr] = comp

    # 1. full-equality match on an index (single or composite, any kind).
    for name, info in indexed.items():
        if all(f in eq_by_field for f in info.fields):
            used = [eq_by_field[f] for f in info.fields]
            residual = _residual(conjuncts, used)
            if len(info.fields) == 1:
                key = used[0].value
            else:
                key = tuple(c.value for c in used)
            return IndexEquality(source, name, key, residual)

    # 2. composite B+tree with equality on a proper prefix (and an
    #    optional range on the field right after the prefix).
    best = None  # (prefix_len, plan)
    for name, info in indexed.items():
        if info.kind != "btree" or len(info.fields) < 2:
            continue
        prefix = []
        used: List[Predicate] = []
        for f in info.fields:
            if f in eq_by_field:
                prefix.append(eq_by_field[f])
                used.append(eq_by_field[f])
            else:
                break
        if not prefix:
            continue
        next_field = (info.fields[len(prefix)]
                      if len(prefix) < len(info.fields) else None)
        lo = lo_strict = hi = hi_strict = None
        if next_field is not None:
            bounds = [c for c in comparisons if c.attr == next_field
                      and c.op in ("<", "<=", ">", ">=")]
            lo, lo_strict, hi, hi_strict = _fold_bounds(bounds)
            used = used + bounds
        residual = _residual(conjuncts, used)
        plan = CompositeScan(source, name, len(info.fields),
                             [c.value for c in prefix], lo, bool(lo_strict),
                             hi, bool(hi_strict), residual)
        if best is None or len(prefix) > best[0]:
            best = (len(prefix), plan)
    if best is not None:
        return best[1]

    # 3. range on a single-field B+tree index.
    for name, info in indexed.items():
        if info.kind != "btree" or len(info.fields) != 1:
            continue
        field = info.fields[0]
        bounds = [c for c in comparisons
                  if c.attr == field and c.op in ("<", "<=", ">", ">=")]
        if not bounds:
            continue
        lo, lo_strict, hi, hi_strict = _fold_bounds(bounds)
        residual = _residual(conjuncts, bounds)
        return IndexRange(source, name, lo, bool(lo_strict), hi,
                          bool(hi_strict), residual)

    return FullScan(source, pred)


def _fold_bounds(bounds: List[Compare]):
    """Tightest [lo, hi] interval implied by range comparisons."""
    lo, lo_strict, hi, hi_strict = None, False, None, False
    for comp in bounds:
        if comp.op in (">", ">="):
            if lo is None or comp.value > lo:
                lo, lo_strict = comp.value, comp.op == ">"
            elif comp.value == lo:
                lo_strict = lo_strict or comp.op == ">"
        else:
            if hi is None or comp.value < hi:
                hi, hi_strict = comp.value, comp.op == "<"
            elif comp.value == hi:
                hi_strict = hi_strict or comp.op == "<"
    return lo, lo_strict, hi, hi_strict


def _residual(conjuncts: List[Predicate],
              consumed: List[Predicate]) -> Predicate:
    rest = [c for c in conjuncts if not any(c is used for used in consumed)]
    if not rest:
        return TrueP()
    if len(rest) == 1:
        return rest[0]
    return And(*rest)
