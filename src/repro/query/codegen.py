"""Plan-to-code generation: fused query pipelines (compile, don't interpret).

The interpreted execution path composes an optimizer plan from nested
generators — ``iter_batches()`` feeding ``batched()`` feeding ``_take()``
feeding a ``sum(1 for _ in ...)`` — so every row pays several generator-
frame hops plus a compiled-closure call for the residual filter.  This
module lowers the *whole* pipeline into one synthesized Python function:
the cluster-scan loop, the residual predicate (inlined as an expression,
with a scalar-field ``__dict__`` fast path), the hash-join chain, and the
terminal (count / collect / stream) all fuse into a single frame that is
``compile()``d once and cached.

Contract (enforced by the differential harness in
``tests/query/test_codegen_differential.py``):

* **Identical semantics.**  Generated code performs the same flushes,
  takes the same cluster scan locks in the same order, goes through the
  same decoded-object caches (``db._cache`` / ``db.deref``), and yields
  rows in the same order as the interpreted plan it replaces.  Unordered
  single-source iteration streams lazily, so the section 3.2 fixpoint
  property (inserts made during the loop are visited) is preserved.
* **Automatic fallback.**  Anything the lowering does not cover — traced
  runs (``explain analyze``), plans over exotic sources, predicates the
  emitter cannot prove equivalent — silently executes interpreted.  The
  caller treats :data:`INELIGIBLE` as "use the interpreted path".
* **Error parity.**  Inlined ``A.field <op> const`` comparisons replicate
  :class:`Compare`'s TypeError-swallowing by re-running the batch through
  the predicate's safe ``compiled()`` closure when the inlined expression
  raises; ``A.x < A.y`` comparisons propagate TypeError exactly like
  :class:`AttrCompare` does.

Generated sources are registered in :mod:`linecache` under
``<ode-codegen:N>`` filenames so tracebacks show the fused code, and
``Forall.explain(code=True)`` can print it.

Disable with ``REPRO_CODEGEN=0`` (environment), ``db.codegen_enabled =
False`` (per database), or ``q.codegen(False)`` (per query): all three
restore the pure interpreted path.
"""

from __future__ import annotations

import keyword
import linecache
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.fields import Field
from ..core.oid import Oid
from .optimizer import (INDEX_BATCH, CompositeScan, FullScan, IndexEquality,
                        IndexRange)
from .predicates import (And, AttrCompare, Callable_, Compare, JoinCompare,
                         Not, Or, Predicate, TrueP, VarCompare)

#: Sentinel returned when the lowering does not apply; the caller falls
#: back to the interpreted pipeline.
INELIGIBLE = object()

_ENV = "REPRO_CODEGEN"
_ENV_STRICT = "REPRO_CODEGEN_STRICT"
_FN = "__ode_pipeline"


def env_enabled() -> bool:
    """Whether the process-wide environment switch allows codegen."""
    return os.environ.get(_ENV, "1").strip().lower() not in (
        "0", "off", "false", "no")


def enabled_for(db) -> bool:
    """Whether codegen applies for queries against *db* (None = no db)."""
    if db is not None and not getattr(db, "codegen_enabled", True):
        return False
    return env_enabled()


class _CannotLower(Exception):
    """Raised internally when a plan/predicate has no lowering."""


# ---------------------------------------------------------------------------
# compiled-function cache
# ---------------------------------------------------------------------------

class CompiledQuery:
    """One generated function plus its debugging metadata."""

    __slots__ = ("fn", "source", "filename", "clusters", "mode")

    def __init__(self, fn: Callable, source: str, filename: str,
                 clusters: frozenset, mode: str):
        self.fn = fn
        self.source = source
        self.filename = filename
        self.clusters = set(clusters)
        self.mode = mode


class CodegenCache:
    """LRU cache of generated query functions.

    Keys are structural: the generated source is fully determined by the
    key, and every value that can vary between executions (constants,
    opaque callables, index bounds, the database itself) flows through
    the runtime dict instead.  Invalidation mirrors the plan cache: the
    database drops entries per cluster on abort and clears outright on
    DDL/analyze/repair.  This is hygiene, not a correctness requirement —
    plan choice feeds the key, so a dropped index simply routes lookups
    to a different key.
    """

    def __init__(self, capacity: int = 256):
        self._capacity = capacity
        self._entries: "OrderedDict[Tuple, CompiledQuery]" = OrderedDict()
        self._mutex = threading.RLock()
        self._seq = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Cumulative nanoseconds spent synthesizing + compile()ing.
        self.compile_ns = 0

    def lookup(self, key: Tuple,
               clusters: frozenset) -> Optional[CompiledQuery]:
        with self._mutex:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            # Code is cluster-generic; remember every cluster that uses
            # the entry so per-cluster invalidation covers all of them.
            entry.clusters.update(clusters)
            self.hits += 1
            return entry

    def store(self, key: Tuple, entry: CompiledQuery) -> None:
        with self._mutex:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                _, old = self._entries.popitem(last=False)
                linecache.cache.pop(old.filename, None)

    def next_tag(self) -> int:
        with self._mutex:
            self._seq += 1
            return self._seq

    def invalidate_cluster(self, cluster: str) -> None:
        with self._mutex:
            doomed = [key for key, entry in self._entries.items()
                      if cluster in entry.clusters]
            for key in doomed:
                entry = self._entries.pop(key)
                linecache.cache.pop(entry.filename, None)
            self.invalidations += len(doomed)

    def clear(self) -> None:
        with self._mutex:
            for entry in self._entries.values():
                linecache.cache.pop(entry.filename, None)
            self.invalidations += len(self._entries)
            self._entries.clear()

    def stats(self) -> dict:
        with self._mutex:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "entries": len(self._entries),
                "invalidations": self.invalidations,
                "compile_ns": self.compile_ns,
            }


#: Fallback cache for queries with no database in sight (pure-Python
#: sources feeding a fused join); the generated code for those touches
#: no clusters, so a process-wide cache is safe.
_GLOBAL_CACHE = CodegenCache()


def cache_for(db) -> CodegenCache:
    if db is None:
        return _GLOBAL_CACHE
    cache = getattr(db, "codegen_cache", None)
    return cache if cache is not None else _GLOBAL_CACHE


# ---------------------------------------------------------------------------
# predicate lowering
# ---------------------------------------------------------------------------

class _Ctx:
    """Collects runtime values referenced by the generated expression."""

    def __init__(self):
        self.consts: List[Any] = []
        self.funcs: List[Callable] = []
        self.guard_type = False   # inlined Compare: TypeError -> False
        self.guard_key = False    # __dict__ fast path: KeyError -> retry

    def const(self, value) -> str:
        self.consts.append(value)
        return "_c%d" % (len(self.consts) - 1)

    def func(self, fn) -> str:
        self.funcs.append(fn)
        return "_f%d" % (len(self.funcs) - 1)

    def guard(self) -> str:
        """The except clause for the batch-level retry, or ''."""
        excs = []
        if self.guard_type:
            excs.append("TypeError")
        if self.guard_key:
            excs.append("KeyError")
        if not excs:
            return ""
        if len(excs) == 1:
            return excs[0]
        return "(%s)" % ", ".join(excs)


def _attr_load(var: str, attr: str, cls, ctx: _Ctx,
               fast: bool = True) -> str:
    """Source for reading ``var.attr``.

    When the attribute is a plain scalar field (identity
    ``from_stored_hook``) on a statically-known class, read the stored
    slot directly — ``Field.__get__`` returns exactly
    ``obj.__dict__["_f_attr"]`` for those, and a missing slot (default
    never materialized) raises KeyError into the batch guard, which
    re-runs the batch through the safe compiled predicate.
    """
    if not attr.isidentifier() or keyword.iskeyword(attr):
        return "getattr(%s, %r)" % (var, attr)
    if fast and cls is not None:
        descr = getattr(cls, attr, None)
        if (isinstance(descr, Field)
                and type(descr).from_stored_hook is Field.from_stored_hook):
            ctx.guard_key = True
            return '%s.__dict__["_f_%s"]' % (var, attr)
    return "%s.%s" % (var, attr)


def _contains_opaque(pred) -> bool:
    """Whether *pred* contains user callables (or unknown node types).

    The batch-retry guard re-runs a whole batch through the safe closure
    when an inlined comparison raises; that would call side-effecting
    user callables twice per object, so predicates containing opaque
    parts are lowered in *safe* mode (closure calls, no guards) instead.
    """
    if isinstance(pred, (TrueP, Compare, AttrCompare)):
        return False
    if isinstance(pred, (And, Or)):
        return any(_contains_opaque(p) for p in pred.parts)
    if isinstance(pred, Not):
        return _contains_opaque(pred.part)
    return True


def _lower(pred, ctx: _Ctx, var: str = "obj", cls=None,
           safe: bool = False) -> str:
    """Lower a single-object predicate to an inline boolean expression.

    In *safe* mode comparison leaves call their compiled closures (exact
    per-object error semantics, no guards needed); otherwise they inline
    with the batch-retry guard providing Compare's TypeError swallowing.
    """
    if isinstance(pred, TrueP):
        return "True"
    if isinstance(pred, Compare):
        if safe:
            return "%s(%s)" % (ctx.func(pred.compiled()), var)
        ctx.guard_type = True
        return "(%s %s %s)" % (_attr_load(var, pred.attr, cls, ctx),
                               pred.op, ctx.const(pred.value))
    if isinstance(pred, AttrCompare):
        fast = not safe
        return "(%s %s %s)" % (
            _attr_load(var, pred.left, cls, ctx, fast=fast),
            pred.op,
            _attr_load(var, pred.right, cls, ctx, fast=fast))
    if isinstance(pred, And):
        return "(%s)" % " and ".join(_lower(p, ctx, var, cls, safe)
                                     for p in pred.parts)
    if isinstance(pred, Or):
        return "(%s)" % " or ".join(_lower(p, ctx, var, cls, safe)
                                    for p in pred.parts)
    if isinstance(pred, Not):
        return "(not %s)" % _lower(pred.part, ctx, var, cls, safe)
    if isinstance(pred, Callable_):
        return "%s(%s)" % (ctx.func(pred.func), var)
    if isinstance(pred, Predicate):
        # Unknown predicate subtype: call its safe compiled closure.
        return "%s(%s)" % (ctx.func(pred.compiled()), var)
    raise _CannotLower("not a predicate: %r" % (pred,))


def _lower_conjunct(conj, ctx: _Ctx, arity: int) -> str:
    """Lower one join residual conjunct over row variables o0..o{arity-1}.

    Join residuals run per emitted row (no batch to retry), so nothing
    here may diverge from the interpreted check even on type errors:
    VarCompare inners go through their safe compiled closure (which owns
    the Compare TypeError-swallowing), JoinCompare inlines the exact
    getattr comparison (which propagates TypeError, as interpreted), and
    opaque callables are called with the row unpacked.
    """
    if isinstance(conj, VarCompare):
        return "%s(o%d)" % (ctx.func(conj.inner.compiled()), conj.var)
    if isinstance(conj, JoinCompare):
        return "(%s %s %s)" % (
            _attr_load("o%d" % conj.lvar, conj.lattr, None, ctx, fast=False),
            conj.op,
            _attr_load("o%d" % conj.rvar, conj.rattr, None, ctx, fast=False))
    if isinstance(conj, Callable_):
        args = ", ".join("o%d" % i for i in range(arity))
        return "%s(%s)" % (ctx.func(conj.func), args)
    if isinstance(conj, Predicate):
        row = ", ".join("o%d" % i for i in range(arity))
        return "%s((%s,))" % (ctx.func(conj.compiled()), row)
    raise _CannotLower("not a predicate: %r" % (conj,))


# ---------------------------------------------------------------------------
# source emission helpers
# ---------------------------------------------------------------------------

class _Writer:
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 1

    def w(self, text: str = "") -> None:
        self.lines.append("    " * self.indent + text if text else "")

    def source(self) -> str:
        return ("def %s(rt):\n" % _FN) + "\n".join(self.lines) + "\n"


def _emit_prologue(w: _Writer, ctx: _Ctx, *, db: bool = True,
                   check: bool = False, limit: bool = False) -> None:
    if db:
        w.w('db = rt["db"]')
        w.w("store = db.store")
    for i in range(len(ctx.consts)):
        w.w('_c%d = rt["c%d"]' % (i, i))
    for i in range(len(ctx.funcs)):
        w.w('_f%d = rt["f%d"]' % (i, i))
    if check:
        w.w('_check = rt["check"]')
    if limit:
        w.w('_limit = rt["limit"]')


def _emit_filter(w: _Writer, expr: Optional[str], guard: str, out_var: str,
                 in_var: str = "objs") -> None:
    """Emit ``out_var = [obj for obj in in_var if expr]`` with the
    batch-level retry through the safe predicate on guard exceptions."""
    if expr is None:
        w.w("%s = %s" % (out_var, in_var))
        return
    body = "%s = [obj for obj in %s if %s]" % (out_var, in_var, expr)
    if not guard:
        w.w(body)
        return
    w.w("try:")
    w.indent += 1
    w.w(body)
    w.indent -= 1
    w.w("except %s:" % guard)
    w.indent += 1
    w.w("%s = [obj for obj in %s if _check(obj)]" % (out_var, in_var))
    w.indent -= 1


def _emit_consume(w: _Writer, terminal: str, expr: Optional[str],
                  guard: str, has_limit: bool,
                  in_var: str = "objs") -> None:
    """Consume one batch of candidate objects for the given terminal."""
    if terminal == "count":
        if expr is None:
            w.w("n += len(%s)" % in_var)
            return
        body = "n += len([obj for obj in %s if %s])" % (in_var, expr)
        if not guard:
            w.w(body)
            return
        w.w("try:")
        w.indent += 1
        w.w(body)
        w.indent -= 1
        w.w("except %s:" % guard)
        w.indent += 1
        w.w("n += len([obj for obj in %s if _check(obj)])" % in_var)
        w.indent -= 1
        return
    if terminal == "collect":
        if expr is None:
            w.w("out.extend(%s)" % in_var)
            return
        body = "out.extend([obj for obj in %s if %s])" % (in_var, expr)
        if not guard:
            w.w(body)
            return
        w.w("try:")
        w.indent += 1
        w.w(body)
        w.indent -= 1
        w.w("except %s:" % guard)
        w.indent += 1
        w.w("out.extend([obj for obj in %s if _check(obj)])" % in_var)
        w.indent -= 1
        return
    # terminal == "iter"
    _emit_filter(w, expr, guard, "matched", in_var)
    if not has_limit:
        w.w("yield from matched")
    else:
        # _take checks the bound BEFORE yielding (limit(0) yields nothing)
        w.w("for obj in matched:")
        w.indent += 1
        w.w("if _n >= _limit:")
        w.indent += 1
        w.w("return")
        w.indent -= 1
        w.w("yield obj")
        w.w("_n += 1")
        w.indent -= 1


def _emit_cluster_scan(w: _Writer, terminal: str, expr: Optional[str],
                       guard: str, has_limit: bool, deep: bool) -> None:
    """The fused ``_iter_batches_one`` loop (+ optional hierarchy walk)."""
    if deep:
        w.w('for _cl in rt["hier"]():')
        w.indent += 1
        w.w("if not store.has_cluster(_cl):")
        w.indent += 1
        w.w("continue")
        w.indent -= 1
    else:
        w.w('_cl = rt["cluster"]')
        w.w("if store.has_cluster(_cl):")
        w.indent += 1
    w.w("if db._txn is not None and db._dirty:")
    w.indent += 1
    w.w("db._flush(db._txn.txn_id)")
    w.indent -= 1
    w.w("db._lock_cluster_scan(_cl)")
    w.w("_vis = db._scan_visibility(_cl)")
    w.w("_cget = db._cache.get")
    w.w("_mat = db._materialize_from_scan")
    # The MVCC overlay mirrors the interpreted _iter_batches_one loop:
    # history-flagged serials resolve through the visibility check, the
    # fast path notes serials in the seen-set, and a tail pass resurrects
    # objects whose records were deleted from the store mid-scan.
    w.w("if _vis is not None:")
    w.indent += 1
    w.w("_hget = _vis.hget")
    w.w("_needs = _vis.needs")
    w.w("_seen = _vis.seen")
    w.w("_vmat = _vis.materialize")
    w.w("_clean = _vis.batch_clean")
    w.indent -= 1
    w.w("for _batch in store.scan_batches(_cl):")
    w.indent += 1
    w.w("_heads = []")
    w.w("_ha = _heads.append")
    w.w("_states = {}")
    w.w("for _rid, _rec in _batch:")
    w.indent += 1
    w.w('_rkey = _rec["__key"]')
    w.w("if _rkey[1] == 0:")
    w.indent += 1
    w.w("_ha(_rec)")
    w.indent -= 1
    w.w("else:")
    w.indent += 1
    w.w("_states[(_rkey[0], _rkey[1])] = _rec")
    w.indent -= 2
    w.w("objs = []")
    w.w("_oa = objs.append")
    # Decide once per decoded batch whether the per-head history probes
    # are needed (registration-before-mutation makes the post-decode
    # check sound — see _ScanVis.batch_clean).
    w.w("_checked = _vis is not None and not _clean()")
    w.w("for _rec in _heads:")
    w.indent += 1
    w.w('_serial = _rec["__key"][0]')
    w.w("if _checked:")
    w.indent += 1
    w.w("_hist = _hget(_serial)")
    w.w("if _hist is not None and _needs(_hist):")
    w.indent += 1
    w.w("obj = _vmat(_serial)")
    w.w("if obj is not None:")
    w.indent += 1
    w.w("_oa(obj)")
    w.indent -= 1
    w.w("continue")
    w.indent -= 2
    w.w("if _vis is not None:")
    w.indent += 1
    w.w("if _serial in _seen:")
    w.indent += 1
    w.w("continue")
    w.indent -= 1
    w.w("_seen.add(_serial)")
    w.indent -= 1
    w.w("obj = _cget((_cl, _serial))")
    w.w("if obj is None:")
    w.indent += 1
    w.w("obj = _mat(_cl, _serial, _rec, _states)")
    w.indent -= 1
    w.w("if obj is not None:")
    w.indent += 1
    w.w("_oa(obj)")
    w.indent -= 2
    w.w("if objs:")
    w.indent += 1
    _emit_consume(w, terminal, expr, guard, has_limit)
    w.indent -= 2  # out of if objs + for batch
    w.w("if _vis is not None:")
    w.indent += 1
    w.w("objs = _vis.tail()")
    w.w("if objs:")
    w.indent += 1
    _emit_consume(w, terminal, expr, guard, has_limit)
    w.indent -= 2
    w.indent -= 1  # out of cluster guard / hierarchy loop


def _emit_materialize_serial(w: _Writer) -> None:
    """Turn ``_serial`` into ``obj`` via cache then deref (skip missing)."""
    w.w("obj = _cget((_cl, _serial))")
    w.w("if obj is None:")
    w.indent += 1
    w.w("obj = _deref(_Oid(_cl, _serial), _missing_ok=True)")
    w.w("if obj is None:")
    w.indent += 1
    w.w("continue")
    w.indent -= 2


def _emit_index_setup(w: _Writer) -> None:
    w.w('_cl = rt["cluster"]')
    w.w("if db._txn is not None and db._dirty:")
    w.indent += 1
    w.w("db._flush(db._txn.txn_id)")
    w.indent -= 1
    w.w("db._lock_cluster_scan(_cl)")
    w.w("_cget = db._cache.get")
    w.w("_deref = db.deref")
    w.w('_Oid = rt["Oid"]')


def _serial_loop_header(kind: str, w: _Writer) -> None:
    """Emit the per-kind loop over index entries, leaving ``_serial``
    bound inside the loop body (indent is left inside the loop)."""
    if kind == "eq":
        w.w("for _serial in _serials:")
        w.indent += 1
        return
    if kind == "range":
        w.w('_lo = rt["lo"]')
        w.w('_ls = rt["lo_strict"]')
        w.w('for _ikey, _serial in store.index_range('
            '_cl, rt["field"], _lo, rt["hi"], include_hi=rt["inc_hi"]):')
        w.indent += 1
        w.w("if _ls and _ikey == _lo:")
        w.indent += 1
        w.w("continue")
        w.indent -= 1
        return
    # composite
    w.w('_prefix = rt["prefix"]')
    w.w('_k = rt["k"]')
    w.w('_lo = rt["lo"]')
    w.w('_ls = rt["lo_strict"]')
    w.w('_hi = rt["hi"]')
    w.w('_hs = rt["hi_strict"]')
    w.w('for _ikey, _serial in store.index_range('
        '_cl, rt["index"], rt["lo_key"], None):')
    w.indent += 1
    w.w("if _ikey[:_k] != _prefix:")
    w.indent += 1
    w.w("break")
    w.indent -= 1
    w.w("if _lo is not None and _ls and len(_ikey) > _k "
        "and _ikey[_k] == _lo:")
    w.indent += 1
    w.w("continue")
    w.indent -= 1
    w.w("if _hi is not None and len(_ikey) > _k:")
    w.indent += 1
    w.w("if _ikey[_k] > _hi or (_hs and _ikey[_k] == _hi):")
    w.indent += 1
    w.w("break")
    w.indent -= 2


def _emit_index_drain(w: _Writer, kind: str, terminal: str,
                      expr: Optional[str], guard: str,
                      has_limit: bool) -> None:
    """Index plan for eager terminals: drain serials, filter once."""
    if kind == "eq":
        w.w('_serials = store.index_search(_cl, rt["field"], rt["value"])')
    w.w("objs = []")
    w.w("_oa = objs.append")
    _serial_loop_header(kind, w)
    _emit_materialize_serial(w)
    w.w("_oa(obj)")
    w.indent -= 1
    w.w("if objs:")
    w.indent += 1
    _emit_consume(w, terminal, expr, guard, has_limit)
    w.indent -= 1


def _emit_index_stream(w: _Writer, kind: str, expr: Optional[str],
                       guard: str, has_limit: bool) -> None:
    """Index plan for the streaming terminal: chunk like the interpreted
    ``_batched_matches`` so early-exiting consumers do the same work."""
    if kind == "eq":
        pass  # _serials bound eagerly by the caller
    w.w("_chunk = []")
    w.w("_ca = _chunk.append")
    _serial_loop_header(kind, w)
    _emit_materialize_serial(w)
    w.w("_ca(obj)")
    w.w("if len(_chunk) >= %d:" % INDEX_BATCH)
    w.indent += 1
    _emit_consume(w, "iter", expr, guard, has_limit, in_var="_chunk")
    w.w("_chunk = []")
    w.w("_ca = _chunk.append")
    w.indent -= 2
    w.w("if _chunk:")
    w.indent += 1
    _emit_consume(w, "iter", expr, guard, has_limit, in_var="_chunk")
    w.indent -= 1


def _emit_collect_tail(w: _Writer, ordered: bool, elide_sort: bool,
                       has_limit: bool, join: bool = False) -> None:
    if ordered and not elide_sort:
        w.w('for _kf, _desc in rt["sortkeys"]:')
        w.indent += 1
        if join:
            w.w("out.sort(key=lambda _row, _k=_kf: _k(*_row), "
                "reverse=_desc)")
        else:
            w.w("out.sort(key=_kf, reverse=_desc)")
        w.indent -= 1
    if has_limit:
        w.w("del out[_limit:]")
    w.w("return out")


# ---------------------------------------------------------------------------
# single-source pipelines
# ---------------------------------------------------------------------------

def _single_spec(plan):
    """``(kind, cluster, cls, pred, db)`` for a supported plan, else None."""
    from ..core.clusters import ClusterHandle, DeepView
    if isinstance(plan, FullScan):
        src = plan.source
        if isinstance(src, ClusterHandle):
            return ("full", src.name, src.cls, plan.pred, src.db)
        if isinstance(src, DeepView):
            return ("deep", src.handle.name, None, plan.pred, src.handle.db)
        return None
    if isinstance(plan, IndexEquality):
        return ("eq", plan.handle.name, plan.handle.cls, plan.residual,
                plan.handle.db)
    if isinstance(plan, IndexRange):
        return ("range", plan.handle.name, plan.handle.cls, plan.residual,
                plan.handle.db)
    if isinstance(plan, CompositeScan):
        return ("comp", plan.handle.name, plan.handle.cls, plan.residual,
                plan.handle.db)
    return None


def _order_keys_ok(order) -> bool:
    from .predicates import AttrExpr
    for key, _desc in order:
        if not (isinstance(key, (AttrExpr, str)) or callable(key)):
            return False
    return True


def _sortkeys(q) -> List[Tuple[Callable, bool]]:
    from .iterate import _key_fn
    return [(_key_fn(key), desc) for key, desc in reversed(q._order)]


def _build_single_source(kind: str, terminal: str, expr: Optional[str],
                         guard: str, ctx: _Ctx, ordered: bool,
                         elide_sort: bool, has_limit: bool) -> str:
    w = _Writer()
    if terminal == "iter":
        _emit_prologue(w, ctx, check=bool(guard), limit=has_limit)
        if kind == "eq":
            # IndexEquality.execute is eager up to index_search; the
            # generated pipeline keeps that lock timing.
            _emit_index_setup(w)
            w.w('_serials = store.index_search(_cl, rt["field"], '
                'rt["value"])')
        w.w("def _rows():")
        w.indent += 1
        if has_limit:
            w.w("_n = 0")
        if kind in ("full", "deep"):
            _emit_cluster_scan(w, "iter", expr, guard, has_limit,
                               deep=(kind == "deep"))
        elif kind == "eq":
            _emit_index_stream(w, "eq", expr, guard, has_limit)
        else:
            # Range/composite execute() bodies are generators: all setup
            # (flush, lock) happens lazily on first pull, as interpreted.
            _emit_index_setup(w)
            _emit_index_stream(w, kind, expr, guard, has_limit)
        if not w.lines[-1].strip():
            w.w("pass")
        w.indent -= 1
        w.w("return _rows()")
        return w.source()
    # eager terminals: count / collect
    _emit_prologue(w, ctx, check=bool(guard), limit=has_limit)
    if terminal == "count":
        w.w("n = 0")
    else:
        w.w("out = []")
    if kind in ("full", "deep"):
        _emit_cluster_scan(w, terminal, expr, guard, has_limit,
                           deep=(kind == "deep"))
    else:
        _emit_index_setup(w)
        _emit_index_drain(w, kind, terminal, expr, guard, has_limit)
    if terminal == "count":
        w.w("return n")
    else:
        _emit_collect_tail(w, ordered, elide_sort, has_limit)
    return w.source()


def run_single(q, plan, terminal):
    """Execute a one-source Forall through generated code.

    *terminal* is ``"iter"`` (stream rows), ``"collect"`` (list after
    sort/limit) or ``"count"``.  Returns :data:`INELIGIBLE` when the
    lowering does not apply; execution errors from generated code
    propagate exactly as the interpreted pipeline's would.
    """
    spec = _single_spec(plan)
    if spec is None:
        return INELIGIBLE
    kind, cluster, cls, pred, db = spec
    if not enabled_for(db) or getattr(q, "_codegen_off", False):
        return INELIGIBLE
    ordered = bool(q._order)
    has_limit = q._limit is not None
    if terminal == "count" and (ordered or has_limit):
        return INELIGIBLE
    if terminal == "collect" and has_limit and not ordered:
        # Interpreted unordered to_list() streams through _take and
        # stops early; let the streaming terminal handle it instead.
        return INELIGIBLE
    elide_sort = (ordered and q._plan_orders_by(plan)
                  and not q._order[0][1])
    if terminal == "iter" and ordered and not elide_sort:
        # Interpreted materializes + sorts, then streams; do the same.
        rows = run_single(q, plan, "collect")
        return INELIGIBLE if rows is INELIGIBLE else iter(rows)
    if ordered and not elide_sort and not _order_keys_ok(q._order):
        return INELIGIBLE
    cache = cache_for(db)
    try:
        ctx = _Ctx()
        expr = None
        if not isinstance(pred, TrueP):
            expr = _lower(pred, ctx, "obj", cls,
                          safe=_contains_opaque(pred))
        guard = ctx.guard()
        key = ("single", kind, terminal, expr, guard, ordered,
               elide_sort, has_limit)
        clusters = frozenset((cluster,))
        entry = cache.lookup(key, clusters)
        if entry is None:
            t0 = time.perf_counter_ns()
            source = _build_single_source(kind, terminal, expr, guard, ctx,
                                          ordered, elide_sort, has_limit)
            fn, filename = _compile(source, cache)
            cache.compile_ns += time.perf_counter_ns() - t0
            entry = CompiledQuery(fn, source, filename, clusters,
                                  "fused %s %s" % (kind, terminal))
            cache.store(key, entry)
    except _CannotLower:
        return INELIGIBLE
    except Exception:
        if os.environ.get(_ENV_STRICT):
            raise
        return INELIGIBLE
    rt: Dict[str, Any] = {"db": db, "Oid": Oid}
    for i, value in enumerate(ctx.consts):
        rt["c%d" % i] = value
    for i, fn_ in enumerate(ctx.funcs):
        rt["f%d" % i] = fn_
    if guard:
        rt["check"] = (pred.compiled() if isinstance(pred, Predicate)
                       else pred)
    if has_limit:
        rt["limit"] = q._limit
    if ordered and not elide_sort:
        rt["sortkeys"] = _sortkeys(q)
    if kind == "full":
        rt["cluster"] = cluster
    elif kind == "deep":
        rt["hier"] = plan.source.handle.hierarchy
    elif kind == "eq":
        rt.update(cluster=cluster, field=plan.field, value=plan.value)
    elif kind == "range":
        rt.update(cluster=cluster, field=plan.field, lo=plan.lo,
                  hi=plan.hi, lo_strict=plan.lo_strict,
                  inc_hi=not plan.hi_strict)
    else:
        prefix = tuple(plan.eq_values)
        rt.update(cluster=cluster, index=plan.index_name, prefix=prefix,
                  k=len(prefix),
                  lo_key=prefix if plan.lo is None else prefix + (plan.lo,),
                  lo=plan.lo, lo_strict=plan.lo_strict,
                  hi=plan.hi, hi_strict=plan.hi_strict)
    return entry.fn(rt)


# ---------------------------------------------------------------------------
# join pipelines
# ---------------------------------------------------------------------------

def _join_db(q):
    for source in q._sources:
        db = getattr(source, "db", None)
        if db is None:
            handle = getattr(source, "handle", None)
            db = getattr(handle, "db", None)
        if db is not None:
            return db
    return None


def _join_clusters(q) -> frozenset:
    names = []
    for source in q._sources:
        name = getattr(source, "name", None)
        if name is None:
            handle = getattr(source, "handle", None)
            name = getattr(handle, "name", None)
        if name is not None:
            names.append(name)
    return frozenset(names)


def _join_eligible(q, terminal: str):
    """Shared join eligibility; returns (db, ordered) or INELIGIBLE."""
    db = _join_db(q)
    if not enabled_for(db) or getattr(q, "_codegen_off", False):
        return INELIGIBLE
    ordered = bool(q._order)
    has_limit = q._limit is not None
    if terminal == "count" and (ordered or has_limit):
        return INELIGIBLE
    if terminal == "collect" and has_limit and not ordered:
        return INELIGIBLE
    if ordered:
        from .predicates import AttrExpr
        for key, _desc in q._order:
            if not callable(key) or isinstance(key, AttrExpr):
                return INELIGIBLE  # interpreted raises; keep that path
    return db, ordered


def _emit_join_terminal(w: _Writer, terminal: str, arity: int,
                        has_limit: bool) -> None:
    row = ", ".join("o%d" % i for i in range(arity))
    if terminal == "count":
        w.w("n += 1")
    elif terminal == "collect":
        w.w("out.append((%s))" % (row + ("," if arity == 1 else "")))
    else:
        if has_limit:
            w.w("if _n >= _limit:")
            w.indent += 1
            w.w("return")
            w.indent -= 1
        w.w("yield (%s)" % (row + ("," if arity == 1 else "")))
        if has_limit:
            w.w("_n += 1")


def _emit_join_head(w: _Writer, terminal: str, ctx: _Ctx,
                    has_limit: bool, db_backed: bool) -> None:
    _emit_prologue(w, ctx, db=db_backed, limit=has_limit)
    if terminal == "count":
        w.w("n = 0")
    elif terminal == "collect":
        w.w("out = []")


def _emit_join_tail(w: _Writer, terminal: str, ordered: bool,
                    has_limit: bool) -> None:
    if terminal == "count":
        w.w("return n")
    elif terminal == "collect":
        _emit_collect_tail(w, ordered, False, has_limit, join=True)


def _key_expr(var: str, attrs: List[str], ctx: _Ctx) -> str:
    loads = [_attr_load(var if v is None else "o%d" % v, a, None, ctx,
                        fast=False)
             for v, a in attrs]
    if len(loads) == 1:
        return loads[0]
    return "(%s)" % ", ".join(loads)


def run_fused_join(q, terminal):
    """Execute a V-predicate join through generated code."""
    elig = _join_eligible(q, terminal)
    if elig is INELIGIBLE:
        return INELIGIBLE
    db, ordered = elig
    has_limit = q._limit is not None
    arity = len(q._sources)
    try:
        plans, eq_pairs, residual_at = q._fusion()
    except Exception:
        return INELIGIBLE  # interpreted path reports the error
    from .iterate import _orient
    per_level_keys = []
    swap = False
    for k in range(1, arity):
        keys = [_orient(jc, k) for jc in eq_pairs
                if max(jc.lvar, jc.rvar) == k]
        per_level_keys.append(keys)
    if arity >= 2 and per_level_keys[0]:
        swap = plans[0].estimated_rows < plans[1].estimated_rows
    cache = cache_for(db)
    try:
        ctx = _Ctx()
        resid_exprs: List[List[str]] = []
        for k in range(arity):
            resid_exprs.append([_lower_conjunct(c, ctx, k + 1)
                                for c in residual_at[k]])
        keys_sig = tuple(tuple(keys) for keys in per_level_keys)
        resid_sig = tuple(tuple(es) for es in resid_exprs)
        key = ("fused", arity, keys_sig, resid_sig, swap, terminal,
               ordered, has_limit)
        clusters = _join_clusters(q)
        entry = cache.lookup(key, clusters)
        if entry is None:
            t0 = time.perf_counter_ns()
            source = _build_fused_join(arity, per_level_keys, resid_exprs,
                                       swap, terminal, ctx, ordered,
                                       has_limit)
            fn, filename = _compile(source, cache)
            cache.compile_ns += time.perf_counter_ns() - t0
            entry = CompiledQuery(fn, source, filename, clusters,
                                  "fused hash join")
            cache.store(key, entry)
    except _CannotLower:
        return INELIGIBLE
    except Exception:
        if os.environ.get(_ENV_STRICT):
            raise
        return INELIGIBLE
    rt: Dict[str, Any] = {"plans": plans, "E": ()}
    for i, value in enumerate(ctx.consts):
        rt["c%d" % i] = value
    for i, fn_ in enumerate(ctx.funcs):
        rt["f%d" % i] = fn_
    if has_limit:
        rt["limit"] = q._limit
    if ordered:
        rt["sortkeys"] = [(key_, desc) for key_, desc in reversed(q._order)]
    return entry.fn(rt)


def _build_fused_join(arity: int, per_level_keys, resid_exprs, swap: bool,
                      terminal: str, ctx: _Ctx, ordered: bool,
                      has_limit: bool) -> str:
    """Left-deep hash-join chain as straight-line nested loops.

    Plan execution order matches the interpreted chain exactly: stage 0
    executes first (the interpreted code builds its row generator
    eagerly), then on demand sources arity-1 down to 1 execute and build
    their hash tables, then the probe nest streams.
    """
    w = _Writer()
    _emit_join_head(w, terminal, ctx, has_limit, db_backed=False)
    w.w('_plans = rt["plans"]')
    w.w('_E = rt["E"]')
    w.w("_p0 = _plans[0].execute()")
    streaming = terminal == "iter"
    if streaming:
        w.w("def _rows():")
        w.indent += 1
        if has_limit:
            w.w("_n = 0")
    # Build sides, highest k first (interpreted pull order).
    for k in range(arity - 1, 0, -1):
        keys = per_level_keys[k - 1]
        if k == 1 and swap:
            w.w("_r1 = _plans[1].execute()")
            continue
        if not keys:
            w.w("_items%d = list(_plans[%d].execute())" % (k, k))
            continue
        w.w("_t%d = {}" % k)
        w.w("for o%d in _plans[%d].execute():" % (k, k))
        w.indent += 1
        build = _key_expr(None, [(k, b) for _, _, b in keys], ctx)
        w.w("_t%d.setdefault(%s, []).append(o%d)" % (k, build, k))
        w.indent -= 1

    def emit_level(k: int) -> int:
        """Emit the loop introducing o{k}; returns indents consumed."""
        used = 0
        if k == 0:
            w.w("for o0 in _p0:")
            w.indent += 1
            used += 1
        else:
            keys = per_level_keys[k - 1]
            if not keys:
                w.w("for o%d in _items%d:" % (k, k))
                w.indent += 1
                used += 1
            else:
                probe = _key_expr(None, [(v, a) for v, a, _ in keys], ctx)
                w.w("for o%d in _t%d.get(%s, _E):" % (k, k, probe))
                w.indent += 1
                used += 1
        for expr in resid_exprs[k]:
            w.w("if not %s:" % expr)
            w.indent += 1
            w.w("continue")
            w.indent -= 1
        return used

    depth = 0
    if swap and arity >= 2:
        # k==1 with the smaller left side: build on stage 0, stream 1.
        keys = per_level_keys[0]
        w.w("_t0 = {}")
        w.w("for o0 in _p0:")
        w.indent += 1
        for expr in resid_exprs[0]:
            w.w("if not %s:" % expr)
            w.indent += 1
            w.w("continue")
            w.indent -= 1
        build0 = _key_expr(None, [(v, a) for v, a, _ in keys], ctx)
        w.w("_t0.setdefault(%s, []).append(o0)" % build0)
        w.indent -= 1
        w.w("for o1 in _r1:")
        w.indent += 1
        depth += 1
        probe1 = _key_expr(None, [(1, b) for _, _, b in keys], ctx)
        w.w("for o0 in _t0.get(%s, _E):" % probe1)
        w.indent += 1
        depth += 1
        for expr in resid_exprs[1]:
            w.w("if not %s:" % expr)
            w.indent += 1
            w.w("continue")
            w.indent -= 1
        start = 2
    else:
        depth += emit_level(0)
        start = 1
    for k in range(start, arity):
        depth += emit_level(k)
    _emit_join_terminal(w, terminal, arity, has_limit)
    w.indent -= depth
    if streaming:
        w.indent -= 1
        w.w("return _rows()")
    else:
        _emit_join_tail(w, terminal, ordered, has_limit)
    return w.source()


def run_hash_join(q, terminal):
    """Execute a ``join_on`` hash equijoin through generated code."""
    specs = getattr(q, "_join_key_specs", None)
    if specs is None:
        return INELIGIBLE
    pred = q._pred
    if pred is not None and (isinstance(pred, Predicate)
                             or not callable(pred)):
        return INELIGIBLE  # interpreted path raises QueryError
    elig = _join_eligible(q, terminal)
    if elig is INELIGIBLE:
        return INELIGIBLE
    db, ordered = elig
    has_limit = q._limit is not None
    arity = len(q._sources)
    from .predicates import AttrExpr
    cache = cache_for(db)
    try:
        ctx = _Ctx()
        key_exprs = []
        for spec in specs:
            if isinstance(spec, AttrExpr):
                key_exprs.append(("attr", spec.name))
            elif isinstance(spec, str):
                key_exprs.append(("attr", spec))
            elif callable(spec):
                key_exprs.append(("call", ctx.func(spec)))
            else:
                return INELIGIBLE
        check_name = ctx.func(pred) if pred is not None else None
        key = ("hashjoin", arity, tuple(key_exprs), check_name is not None,
               terminal, ordered, has_limit)
        clusters = _join_clusters(q)
        entry = cache.lookup(key, clusters)
        if entry is None:
            t0 = time.perf_counter_ns()
            source = _build_hash_join(arity, key_exprs, check_name,
                                      terminal, ctx, ordered, has_limit)
            fn, filename = _compile(source, cache)
            cache.compile_ns += time.perf_counter_ns() - t0
            entry = CompiledQuery(fn, source, filename, clusters,
                                  "hash equijoin")
            cache.store(key, entry)
    except Exception:
        if os.environ.get(_ENV_STRICT):
            raise
        return INELIGIBLE
    rt: Dict[str, Any] = {"sources": q._sources, "E": ()}
    for i, fn_ in enumerate(ctx.funcs):
        rt["f%d" % i] = fn_
    for i, value in enumerate(ctx.consts):
        rt["c%d" % i] = value
    if has_limit:
        rt["limit"] = q._limit
    if ordered:
        rt["sortkeys"] = [(key_, desc) for key_, desc in reversed(q._order)]
    return entry.fn(rt)


def _jk_expr(kind_name, var: str, ctx: _Ctx) -> str:
    kind, name = kind_name
    if kind == "attr":
        return _attr_load(var, name, None, ctx, fast=False)
    return "%s(%s)" % (name, var)


def _build_hash_join(arity: int, key_exprs, check_name, terminal: str,
                     ctx: _Ctx, ordered: bool, has_limit: bool) -> str:
    w = _Writer()
    _emit_join_head(w, terminal, ctx, has_limit, db_backed=False)
    w.w('_sources = rt["sources"]')
    w.w('_E = rt["E"]')
    streaming = terminal == "iter"
    if streaming:
        w.w("def _rows():")
        w.indent += 1
        if has_limit:
            w.w("_n = 0")
    for k in range(1, arity):
        w.w("_t%d = {}" % k)
        w.w("for _it in _sources[%d]:" % k)
        w.indent += 1
        w.w("_t%d.setdefault(%s, []).append(_it)"
            % (k, _jk_expr(key_exprs[k], "_it", ctx)))
        w.indent -= 1
    w.w("for o0 in _sources[0]:")
    w.indent += 1
    w.w("_jk = %s" % _jk_expr(key_exprs[0], "o0", ctx))
    depth = 1
    for k in range(1, arity):
        w.w("for o%d in _t%d.get(_jk, _E):" % (k, k))
        w.indent += 1
        depth += 1
    if check_name is not None:
        args = ", ".join("o%d" % i for i in range(arity))
        w.w("if %s(%s):" % (check_name, args))
        w.indent += 1
        depth += 1
    _emit_join_terminal(w, terminal, arity, has_limit)
    w.indent -= depth
    if streaming:
        w.indent -= 1
        w.w("return _rows()")
    else:
        _emit_join_tail(w, terminal, ordered, has_limit)
    return w.source()


def run_nested_join(q, terminal):
    """Execute an opaque-predicate (or unfiltered) cross product through
    generated nested loops.  Inner sources are re-iterated per outer row,
    exactly like the interpreted recursive expansion."""
    pred = q._pred
    if pred is not None and (isinstance(pred, Predicate)
                             or not callable(pred)):
        return INELIGIBLE  # multivar handled elsewhere; else interpreted raises
    elig = _join_eligible(q, terminal)
    if elig is INELIGIBLE:
        return INELIGIBLE
    db, ordered = elig
    has_limit = q._limit is not None
    arity = len(q._sources)
    cache = cache_for(db)
    try:
        ctx = _Ctx()
        check_name = ctx.func(pred) if pred is not None else None
        key = ("nested", arity, check_name is not None, terminal, ordered,
               has_limit)
        clusters = _join_clusters(q)
        entry = cache.lookup(key, clusters)
        if entry is None:
            t0 = time.perf_counter_ns()
            source = _build_nested_join(arity, check_name, terminal, ctx,
                                        ordered, has_limit)
            fn, filename = _compile(source, cache)
            cache.compile_ns += time.perf_counter_ns() - t0
            entry = CompiledQuery(fn, source, filename, clusters,
                                  "nested-loop join")
            cache.store(key, entry)
    except Exception:
        if os.environ.get(_ENV_STRICT):
            raise
        return INELIGIBLE
    rt: Dict[str, Any] = {"sources": q._sources}
    for i, fn_ in enumerate(ctx.funcs):
        rt["f%d" % i] = fn_
    if has_limit:
        rt["limit"] = q._limit
    if ordered:
        rt["sortkeys"] = [(key_, desc) for key_, desc in reversed(q._order)]
    return entry.fn(rt)


def _build_nested_join(arity: int, check_name, terminal: str, ctx: _Ctx,
                       ordered: bool, has_limit: bool) -> str:
    w = _Writer()
    _emit_join_head(w, terminal, ctx, has_limit, db_backed=False)
    w.w('_sources = rt["sources"]')
    streaming = terminal == "iter"
    if streaming:
        w.w("def _rows():")
        w.indent += 1
        if has_limit:
            w.w("_n = 0")
    depth = 0
    for k in range(arity):
        w.w("for o%d in _sources[%d]:" % (k, k))
        w.indent += 1
        depth += 1
    if check_name is not None:
        args = ", ".join("o%d" % i for i in range(arity))
        w.w("if %s(%s):" % (check_name, args))
        w.indent += 1
        depth += 1
    _emit_join_terminal(w, terminal, arity, has_limit)
    w.indent -= depth
    if streaming:
        w.indent -= 1
        w.w("return _rows()")
    else:
        _emit_join_tail(w, terminal, ordered, has_limit)
    return w.source()


def run_join(q, terminal):
    """Dispatch a multi-source Forall to the matching join lowering."""
    from .predicates import is_multivar
    if terminal == "iter" and q._order:
        # Interpreted ordered joins materialize + sort before streaming.
        rows = run_join(q, "collect")
        return INELIGIBLE if rows is INELIGIBLE else iter(rows)
    if q._join_keys is not None:
        return run_hash_join(q, terminal)
    if is_multivar(q._pred):
        return run_fused_join(q, terminal)
    return run_nested_join(q, terminal)


# ---------------------------------------------------------------------------
# compile + linecache registration
# ---------------------------------------------------------------------------

def _compile(source: str, cache: CodegenCache) -> Tuple[Callable, str]:
    filename = "<ode-codegen:%d>" % cache.next_tag()
    code = compile(source, filename, "exec")
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    namespace: Dict[str, Any] = {}
    exec(code, namespace)
    return namespace[_FN], filename


# ---------------------------------------------------------------------------
# explain support
# ---------------------------------------------------------------------------

def would_run(q) -> bool:
    """Cheap check: would the untraced execution use generated code?

    Used by the traced pipeline to annotate its span header; approximate
    (ignores rarely-hit ordering edge cases) but never costs a compile.
    """
    if getattr(q, "_codegen_off", False):
        return False
    if len(q._sources) == 1:
        try:
            plan = q._single_plan()
        except Exception:
            return False
        spec = _single_spec(plan)
        return spec is not None and enabled_for(spec[4])
    if not enabled_for(_join_db(q)):
        return False
    from .predicates import is_multivar
    if q._join_keys is not None:
        return (getattr(q, "_join_key_specs", None) is not None
                and not isinstance(q._pred, Predicate))
    if is_multivar(q._pred):
        return True
    return q._pred is None or (callable(q._pred)
                               and not isinstance(q._pred, Predicate))

def describe_mode(q) -> Tuple[str, Optional[str]]:
    """``(mode_line, generated_source_or_None)`` for ``explain``.

    Probes eligibility without executing: compiles (and caches) the
    pipeline a subsequent run would use.  Mode is ``compiled`` when any
    of the query's terminals would run generated code.
    """
    if q._trace_on:
        return ("interpreted (traced)", None)
    probe = None
    if len(q._sources) == 1:
        try:
            plan = q._single_plan()
        except Exception:
            return ("interpreted", None)
        spec = _single_spec(plan)
        if spec is not None and enabled_for(spec[4]) \
                and not getattr(q, "_codegen_off", False):
            try:
                ctx = _Ctx()
                pred = spec[3]
                expr = (None if isinstance(pred, TrueP)
                        else _lower(pred, ctx, "obj", spec[2],
                                    safe=_contains_opaque(pred)))
                terminal = "collect" if q._order else "iter"
                has_limit = q._limit is not None
                if terminal == "iter" and has_limit:
                    pass
                elide = (bool(q._order) and q._plan_orders_by(plan)
                         and not q._order[0][1])
                source = _build_single_source(
                    spec[0], terminal, expr, ctx.guard(), ctx,
                    bool(q._order), elide, has_limit)
                probe = source
            except Exception:
                probe = None
            if probe is not None:
                return ("compiled (fused %s)" % spec[0], probe)
        return ("interpreted", None)
    # joins: dry-run the lowering for the streaming terminal
    result = _probe_join_source(q)
    if result is not None:
        mode, source = result
        return ("compiled (%s)" % mode, source)
    return ("interpreted", None)


def _probe_join_source(q):
    from .predicates import is_multivar
    db = _join_db(q)
    if not enabled_for(db) or getattr(q, "_codegen_off", False):
        return None
    has_limit = q._limit is not None
    ordered = bool(q._order)
    try:
        if q._join_keys is not None:
            specs = getattr(q, "_join_key_specs", None)
            if specs is None or isinstance(q._pred, Predicate):
                return None
            from .predicates import AttrExpr
            ctx = _Ctx()
            key_exprs = []
            for spec in specs:
                if isinstance(spec, AttrExpr):
                    key_exprs.append(("attr", spec.name))
                elif isinstance(spec, str):
                    key_exprs.append(("attr", spec))
                elif callable(spec):
                    key_exprs.append(("call", ctx.func(spec)))
                else:
                    return None
            check = ctx.func(q._pred) if q._pred is not None else None
            return ("hash equijoin", _build_hash_join(
                len(q._sources), key_exprs, check, "iter", ctx, ordered,
                has_limit))
        if is_multivar(q._pred):
            plans, eq_pairs, residual_at = q._fusion()
            from .iterate import _orient
            arity = len(q._sources)
            per_level_keys = [
                [_orient(jc, k) for jc in eq_pairs
                 if max(jc.lvar, jc.rvar) == k]
                for k in range(1, arity)]
            swap = bool(arity >= 2 and per_level_keys[0]
                        and plans[0].estimated_rows
                        < plans[1].estimated_rows)
            ctx = _Ctx()
            resid_exprs = [[_lower_conjunct(c, ctx, k + 1)
                            for c in residual_at[k]] for k in range(arity)]
            return ("fused hash join", _build_fused_join(
                arity, per_level_keys, resid_exprs, swap, "iter", ctx,
                ordered, has_limit))
        if q._pred is None or not isinstance(q._pred, Predicate):
            ctx = _Ctx()
            check = ctx.func(q._pred) if q._pred is not None else None
            return ("nested-loop join", _build_nested_join(
                len(q._sources), check, "iter", ctx, ordered, has_limit))
    except Exception:
        return None
    return None
