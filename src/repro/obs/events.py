"""Bounded ring buffer of notable engine events.

Captures the moments worth a post-mortem: slow queries, lock waits past
a deadline, deadlock victim/waits-for snapshots, group-commit flushes,
and vacuum/placement runs. The ring is a ``collections.deque`` with a
``maxlen`` — ``append`` on a deque is a single C call, so emitting from
concurrent transaction threads is safe under the GIL without a lock.

Events persist across sessions via a JSONL sidecar (``<db>.odb.events``)
written on :meth:`Database.close`, which is what ``python -m repro
events DB.odb`` reads.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from collections import deque
from typing import Dict, List, Optional


class EventLog:
    """Fixed-capacity ring of ``{"seq", "ts", "kind", "data"}`` events."""

    #: default thresholds, overridable per instance
    SLOW_QUERY_MS = 100.0
    LONG_LOCK_WAIT_MS = 100.0
    #: Byte cap on the JSONL sidecar; :meth:`save` rotates the previous
    #: file to ``<path>.1`` rather than letting an event storm (many
    #: large payloads still within the line-count cap) grow it unbounded.
    SIDECAR_MAX_BYTES = 256 * 1024

    def __init__(self, capacity: int = 512,
                 slow_query_ms: Optional[float] = None,
                 long_lock_wait_ms: Optional[float] = None):
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._dropped = itertools.count()
        self.slow_query_ms = (self.SLOW_QUERY_MS if slow_query_ms is None
                              else slow_query_ms)
        self.long_lock_wait_ms = (self.LONG_LOCK_WAIT_MS
                                  if long_lock_wait_ms is None
                                  else long_lock_wait_ms)

    # ns-denominated views of the thresholds, for hot paths that compare
    # perf_counter_ns deltas directly.
    @property
    def slow_query_ns(self) -> float:
        return self.slow_query_ms * 1e6

    @property
    def long_lock_wait_ns(self) -> float:
        return self.long_lock_wait_ms * 1e6

    def emit(self, kind: str, **data) -> Dict:
        """Record an event. *data* values must be JSON-serializable."""
        event = {
            "seq": next(self._seq),
            "ts": time.time(),
            "kind": kind,
            "data": data,
        }
        # A full ring means the append below evicts its oldest event.
        # The length probe and the append are separate C calls, so two
        # racing emitters can undercount by one — the counter is a storm
        # indicator, not an audit ledger, and stays lock-free for it.
        if len(self._ring) >= self.capacity:
            next(self._dropped)
        self._ring.append(event)     # atomic: deque.append is one C call
        return event

    @property
    def dropped(self) -> int:
        """Events evicted from the ring before anyone read them
        (metric ``events.dropped``)."""
        return self._dropped.__reduce__()[1][0]

    def snapshot(self, kind: Optional[str] = None,
                 limit: Optional[int] = None) -> List[Dict]:
        """Events oldest-first, optionally filtered by *kind* / truncated."""
        events = list(self._ring)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if limit is not None:
            events = events[-limit:]
        return events

    def clear(self) -> None:
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    # -- sidecar persistence ---------------------------------------------
    def save(self, path: str, max_bytes: Optional[int] = None) -> None:
        """Merge this ring into the JSONL sidecar at *path*.

        Existing events are kept (oldest first) and the file is truncated
        to the ring capacity, so the sidecar behaves like a durable
        continuation of the in-memory ring. The line-count cap does not
        bound the *bytes* (an event storm can carry large payloads), so
        the merged payload is additionally capped at *max_bytes*
        (default :attr:`SIDECAR_MAX_BYTES`): when it would overflow, the
        current sidecar rotates to ``<path>.1`` — one generation kept
        for post-mortems — and only the newest events that fit are
        written.
        """
        limit = self.SIDECAR_MAX_BYTES if max_bytes is None else max_bytes
        merged = load_events(path) + list(self._ring)
        merged = merged[-self.capacity:]
        lines = [json.dumps(event, sort_keys=True) + "\n"
                 for event in merged]
        total = sum(len(line) for line in lines)
        if total > limit and os.path.exists(path):
            os.replace(path, path + ".1")
        while len(lines) > 1 and total > limit:
            total -= len(lines.pop(0))
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.writelines(lines)
        os.replace(tmp, path)


def load_events(path: str) -> List[Dict]:
    """Read a JSONL event sidecar; missing or torn lines are skipped."""
    if not os.path.exists(path):
        return []
    events: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                continue            # torn tail line from a crash
    return events
