"""Observability primitives: metrics registry, event ring, query tracing.

This package is deliberately dependency-free within the engine — storage
and query layers import *it*, never the other way around. Three pieces:

- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  under a dotted namespace, plus Prometheus text exposition and a tiny
  validating parser for it.
- :mod:`repro.obs.events` — a bounded ring buffer of notable engine
  events (slow queries, long lock waits, deadlocks, group-commit
  flushes, vacuum runs) with a JSONL sidecar for post-mortem reads.
- :mod:`repro.obs.trace` — per-operator spans recorded onto a plan tree
  during a traced query and rendered as an ``explain analyze`` block.
"""

from .events import EventLog, load_events
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      PromParseError, parse_prometheus, render_prometheus)
from .trace import QueryTracer, Span, render_trace

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "PromParseError",
    "parse_prometheus", "render_prometheus",
    "EventLog", "load_events", "QueryTracer", "Span", "render_trace",
]
