"""Time-series sampler: periodic registry deltas as a JSONL timeline.

A background thread snapshots the metrics registry every ``interval_ms``
and turns counter deltas into per-second rates. Each tick appends one
flat JSON object to the timeline file (and an in-memory ring), which is
what ``repro top`` tails — in-process or from another process entirely.

Percentiles per tick are **windowed**: computed from the histogram
bucket deltas since the previous tick, not the cumulative counts, so a
latency spike shows up in the tick where it happened instead of being
averaged into the whole run.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional


def _window_quantile(bounds: List[float], deltas: List[int],
                     q: float) -> Optional[float]:
    """Interpolated quantile over one tick's bucket deltas."""
    total = sum(deltas)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    lower = 0.0
    for bound, count in zip(bounds, deltas):
        if count and cumulative + count >= rank:
            fraction = (rank - cumulative) / count
            return lower + (bound - lower) * fraction
        cumulative += count
        lower = bound
    return bounds[-1] if bounds else None


class TimeSeriesSampler:
    """Sample *registry* every ``interval_ms`` into rows + JSONL file.

    Rows are flat dicts; ``None`` marks "no data this tick" (e.g. no
    operations completed, so there is no windowed percentile).
    """

    RING_SIZE = 600

    def __init__(self, registry, interval_ms: float = 100.0,
                 path: Optional[str] = None):
        self.registry = registry
        self.interval_s = interval_ms / 1000.0
        self.path = path
        self.rows: deque = deque(maxlen=self.RING_SIZE)
        self._file = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.perf_counter()
        self._prev_t = self._t0
        self._prev: Dict[str, Any] = {}
        self._tick = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "TimeSeriesSampler":
        if self.path:
            self._file = open(self.path, "a", encoding="utf-8")
        self._prev = self.registry.snapshot()
        self._prev_t = self._t0 = time.perf_counter()
        self._thread = threading.Thread(target=self._loop,
                                        name="ts-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.sample_now()            # final partial tick
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TimeSeriesSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_now()

    # -- sampling ---------------------------------------------------------

    def _delta(self, snap: Dict[str, Any], prefix: str) -> float:
        """Summed counter delta for keys equal to or labeled *prefix*."""
        total = 0.0
        for key, value in snap.items():
            if key == prefix or key.startswith(prefix + "{"):
                if isinstance(value, (int, float)):
                    prev = self._prev.get(key, 0)
                    total += value - (prev if isinstance(prev, (int, float))
                                      else 0)
        return total

    def _labeled_deltas(self, snap: Dict[str, Any],
                        prefix: str) -> Dict[str, float]:
        """Per-label-set counter deltas: ``{label_suffix: delta}``."""
        out: Dict[str, float] = {}
        marker = prefix + "{"
        for key, value in snap.items():
            if key.startswith(marker) and isinstance(value, (int, float)):
                prev = self._prev.get(key, 0)
                label = key[len(marker):-1]
                out[label] = value - (prev if isinstance(prev, (int, float))
                                      else 0)
        return out

    def _hist_window(self, snap: Dict[str, Any], prefix: str):
        """Aggregate bucket deltas across every histogram named *prefix*."""
        merged: Dict[float, int] = {}
        ops = 0
        for key, value in snap.items():
            if not (key == prefix or key.startswith(prefix + "{")):
                continue
            if not isinstance(value, dict):
                continue
            prev = self._prev.get(key)
            prev_buckets = prev.get("buckets", {}) if isinstance(
                prev, dict) else {}
            ops += value.get("count", 0) - (prev.get("count", 0)
                                            if isinstance(prev, dict) else 0)
            for bound, count in value.get("buckets", {}).items():
                b = float(bound)
                merged[b] = merged.get(b, 0) + count - prev_buckets.get(
                    bound, 0)
        bounds = sorted(merged)
        return ops, bounds, [merged[b] for b in bounds]

    def sample_now(self) -> Dict[str, Any]:
        """Take one sample immediately; returns the row."""
        snap = self.registry.snapshot()
        now = time.perf_counter()
        dt = max(now - self._prev_t, 1e-9)
        ops, bounds, deltas = self._hist_window(snap, "workload.op_ns")
        p50 = _window_quantile(bounds, deltas, 0.50)
        p99 = _window_quantile(bounds, deltas, 0.99)
        abort_rates = {k: round(v / dt, 2) for k, v in
                       self._labeled_deltas(snap, "txn.aborts").items() if v}
        hit_d = self._delta(snap, "buffer.hits")
        miss_d = self._delta(snap, "buffer.misses")
        row: Dict[str, Any] = {
            "tick": self._tick,
            "t": round(now - self._t0, 3),
            "dt": round(dt, 4),
            "ops_s": round(ops / dt, 1),
            "errors_s": round(self._delta(snap, "workload.errors") / dt, 2),
            "commit_s": round(self._delta(snap, "txn.commits") / dt, 1),
            "abort_s": round(self._delta(snap, "txn.aborts") / dt, 2),
            "aborts": abort_rates,
            "in_flight": snap.get("txn.active", 0),
            "buffer_hit_pct": (round(100.0 * hit_d / (hit_d + miss_d), 1)
                               if hit_d + miss_d else None),
            "wal_syncs_s": round(self._delta(snap, "wal.syncs") / dt, 1),
            "conflicts_s": round(self._delta(snap, "mvcc.conflicts") / dt, 2),
            "shard_scans": {k: v for k, v in self._labeled_deltas(
                snap, "shard.scans").items() if v},
            "events_dropped": snap.get("events.dropped", 0),
            "p50_ms": round(p50 / 1e6, 3) if p50 is not None else None,
            "p99_ms": round(p99 / 1e6, 3) if p99 is not None else None,
        }
        self.rows.append(row)
        if self._file is not None:
            self._file.write(json.dumps(row) + "\n")
            self._file.flush()
        self._prev = snap
        self._prev_t = now
        self._tick += 1
        return row


def load_timeline(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL timeline file; skips blank/truncated trailing lines."""
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                continue            # torn final line from a live writer
    return rows
