"""Macro regression gate: diff two simulation reports.

``repro bench-diff old.json new.json`` compares per-op p99 latency and
overall throughput between two ``repro simulate --report`` outputs and
flags anything that regressed past the thresholds. Ops present in only
one report are listed but never flagged — a scenario change is not a
regression.
"""

from __future__ import annotations

from typing import Any, Dict, List


def compare_reports(old: Dict[str, Any], new: Dict[str, Any],
                    max_p99_regression_pct: float = 25.0,
                    max_throughput_drop_pct: float = 20.0) -> Dict[str, Any]:
    """Compare two simulator reports; ``result["ok"]`` is the gate."""
    regressions: List[Dict[str, Any]] = []
    rows: List[Dict[str, Any]] = []
    old_lat = old.get("latency_ms", {})
    new_lat = new.get("latency_ms", {})
    for op in sorted(set(old_lat) | set(new_lat)):
        o = old_lat.get(op, {}).get("p99")
        n = new_lat.get(op, {}).get("p99")
        row = {"op": op, "old_p99_ms": o, "new_p99_ms": n, "delta_pct": None}
        if o and n:
            row["delta_pct"] = round(100.0 * (n - o) / o, 1)
            if row["delta_pct"] > max_p99_regression_pct:
                row["flag"] = "p99 +%.1f%% > +%.1f%% limit" % (
                    row["delta_pct"], max_p99_regression_pct)
                regressions.append(row)
        rows.append(row)
    o_tput = old.get("ops_per_s") or 0
    n_tput = new.get("ops_per_s") or 0
    tput = {"old_ops_s": o_tput, "new_ops_s": n_tput, "delta_pct": None}
    if o_tput and n_tput:
        tput["delta_pct"] = round(100.0 * (n_tput - o_tput) / o_tput, 1)
        if -tput["delta_pct"] > max_throughput_drop_pct:
            tput["flag"] = "throughput %.1f%% < -%.1f%% limit" % (
                tput["delta_pct"], max_throughput_drop_pct)
            regressions.append(tput)
    return {
        "ok": not regressions,
        "ops": rows,
        "throughput": tput,
        "regressions": regressions,
        "limits": {"p99_pct": max_p99_regression_pct,
                   "throughput_pct": max_throughput_drop_pct},
    }


def format_comparison(result: Dict[str, Any]) -> str:
    """Human-readable table for a :func:`compare_reports` result."""
    lines = ["%-12s %12s %12s %9s" % ("op", "old p99 ms", "new p99 ms",
                                      "delta")]
    for row in result["ops"]:
        delta = ("%+.1f%%" % row["delta_pct"]
                 if row["delta_pct"] is not None else "-")
        flag = "  <-- REGRESSION" if row.get("flag") else ""
        lines.append("%-12s %12s %12s %9s%s" % (
            row["op"],
            row["old_p99_ms"] if row["old_p99_ms"] is not None else "-",
            row["new_p99_ms"] if row["new_p99_ms"] is not None else "-",
            delta, flag))
    tput = result["throughput"]
    delta = ("%+.1f%%" % tput["delta_pct"]
             if tput["delta_pct"] is not None else "-")
    flag = "  <-- REGRESSION" if tput.get("flag") else ""
    lines.append("%-12s %12s %12s %9s%s" % (
        "ops/s", tput["old_ops_s"], tput["new_ops_s"], delta, flag))
    lines.append("gate: %s (p99 +%.0f%%, throughput -%.0f%%)" % (
        "OK" if result["ok"] else "FAIL",
        result["limits"]["p99_pct"], result["limits"]["throughput_pct"]))
    return "\n".join(lines)
