"""Command-line entry points: ``repro simulate``, ``repro top``,
``repro bench-diff``.

These are dispatched from :mod:`repro.__main__` before its normal
argument parsing; each takes its own argv tail and returns an exit
status.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
from typing import Optional

from .compare import compare_reports, format_comparison
from .dashboard import run_dashboard, tail_rows
from .driver import WorkloadDriver
from .sampler import TimeSeriesSampler
from .spec import (BUILTIN_SCENARIOS, ScenarioError, get_scenario,
                   load_scenario)


def _resolve_scenario(name: str):
    if os.path.sep in name or name.endswith((".json", ".toml")):
        return load_scenario(name)
    return get_scenario(name)


def cmd_simulate(argv) -> int:
    """``python -m repro simulate SCENARIO [options]``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro simulate",
        description="Run a macro workload scenario against a database.")
    parser.add_argument("scenario",
                        help="builtin scenario name (%s) or a spec file "
                             "(.json/.toml)"
                             % ", ".join(sorted(BUILTIN_SCENARIOS)))
    parser.add_argument("--db", default=None,
                        help="database path (default: a fresh temp file)")
    parser.add_argument("--remote", default=None, metavar="HOST:PORT",
                        help="drive a running `repro serve` instance over "
                             "TCP instead of an embedded database "
                             "(latencies are then client-observed)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="multiply dataset sizes and client counts")
    parser.add_argument("--duration", type=float, default=None,
                        help="override every phase's duration (seconds)")
    parser.add_argument("--seed", default=None,
                        help="override the scenario seed")
    parser.add_argument("--report", default=None, metavar="OUT.json",
                        help="write the full report as JSON")
    parser.add_argument("--timeline", default=None, metavar="OUT.jsonl",
                        help="write the sampler time series as JSONL")
    parser.add_argument("--sample-ms", type=float, default=None,
                        help="sampler interval override (milliseconds)")
    parser.add_argument("--top", action="store_true",
                        help="show the live dashboard while running")
    parser.add_argument("--uninstrumented", action="store_true",
                        help="run without latency instrumentation "
                             "(overhead baseline; no percentiles)")
    parser.add_argument("--pool-pages", type=int, default=256,
                        help="buffer pool size in pages (small values "
                             "force cold reads: cache-pressure and "
                             "fault-injection experiments)")
    args = parser.parse_args(argv)
    try:
        spec = _resolve_scenario(args.scenario)
    except ScenarioError as exc:
        print("simulate: %s" % exc, file=sys.stderr)
        return 2
    if args.scale != 1.0:
        spec = spec.scaled(args.scale)
    if args.duration is not None:
        spec = spec.with_duration(args.duration)
    if args.seed is not None:
        spec.seed = args.seed
    if args.remote is not None:
        return _simulate_remote(args, spec)

    from ...core.database import Database
    tmpdir: Optional[str] = None
    db_path = args.db
    if db_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-sim-")
        db_path = os.path.join(tmpdir, "sim.odb")
    timeline = args.timeline
    if timeline is None and args.top:
        timeline = os.path.join(tmpdir or tempfile.gettempdir(),
                                "sim-timeline.jsonl")
    db = Database(db_path, pool_size=args.pool_pages)
    try:
        driver = WorkloadDriver(db, spec,
                                instrument=not args.uninstrumented)
        print("setup: %s (%s)" % (spec.name, ", ".join(
            "%s=%d" % kv for kv in sorted(spec.dataset.items()))),
            file=sys.stderr)
        driver.setup()
        interval = args.sample_ms or spec.sample_interval_ms
        sampler = None
        if not args.uninstrumented:
            sampler = TimeSeriesSampler(db.metrics, interval,
                                        path=timeline).start()
        if args.top and sampler is not None:
            report_box = {}

            def _run():
                report_box["report"] = driver.run()
            worker = threading.Thread(target=_run, daemon=True)
            worker.start()
            stop = threading.Event()

            def _watch():
                worker.join()
                stop.set()
            threading.Thread(target=_watch, daemon=True).start()
            run_dashboard(tail_rows(timeline, stop=stop))
            worker.join()
            report = report_box.get("report", {})
        else:
            report = driver.run()
        if sampler is not None:
            sampler.stop()
        _print_summary(report)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
            print("report written to %s" % args.report, file=sys.stderr)
        if timeline and sampler is not None:
            print("timeline written to %s" % timeline, file=sys.stderr)
        return 0
    finally:
        try:
            db.close()
        except Exception as exc:
            # A fault-injection run can leave a transaction poisoned
            # mid-commit; the report already captured what happened.
            print("simulate: close failed: %s" % exc, file=sys.stderr)


def _simulate_remote(args, spec) -> int:
    """``simulate SCENARIO --remote HOST:PORT`` — network-driver path."""
    from ...errors import OdeError
    from .remote import RemoteWorkloadDriver
    try:
        host, _, port_s = args.remote.rpartition(":")
        port = int(port_s)
    except ValueError:
        print("simulate: --remote expects HOST:PORT, got %r" % args.remote,
              file=sys.stderr)
        return 2
    try:
        driver = RemoteWorkloadDriver(host or "127.0.0.1", port, spec,
                                      instrument=not args.uninstrumented)
    except OdeError as exc:
        print("simulate: %s" % exc, file=sys.stderr)
        return 2
    try:
        print("setup (remote %s): %s (%s)" % (args.remote, spec.name,
              ", ".join("%s=%d" % kv for kv in sorted(spec.dataset.items()))),
              file=sys.stderr)
        driver.setup()
        sampler = None
        if not args.uninstrumented and args.timeline:
            interval = args.sample_ms or spec.sample_interval_ms
            sampler = TimeSeriesSampler(driver.db.metrics, interval,
                                        path=args.timeline).start()
        report = driver.run()
        if sampler is not None:
            sampler.stop()
            print("timeline written to %s" % args.timeline, file=sys.stderr)
        report["remote"] = args.remote
        _print_summary(report)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
            print("report written to %s" % args.report, file=sys.stderr)
        return 0
    except OdeError as exc:
        print("simulate: remote run failed: %s" % exc, file=sys.stderr)
        return 1
    finally:
        driver.close()


def _print_summary(report) -> None:
    print("%s: %d ops in %.2fs (%.1f ops/s), %d errors"
          % (report["scenario"]["name"], report["ops"],
             report["elapsed_s"], report["ops_per_s"], report["errors"]))
    latency = report.get("latency_ms") or {}
    if latency:
        print("%-12s %8s %9s %9s %9s %9s %7s"
              % ("op", "count", "p50 ms", "p90 ms", "p99 ms",
                 "p99.9 ms", "mean"))
        for op, row in sorted(latency.items()):
            print("%-12s %8d %9.3f %9.3f %9.3f %9.3f %7.3f"
                  % (op, row["count"], row.get("p50", 0),
                     row.get("p90", 0), row.get("p99", 0),
                     row.get("p99.9", 0), row.get("mean", 0)))


def cmd_top(argv) -> int:
    """``python -m repro top TIMELINE.jsonl [options]``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over a simulate timeline file.")
    parser.add_argument("timeline", help="JSONL timeline file (written by "
                                         "simulate --timeline; may still "
                                         "be growing)")
    parser.add_argument("--refresh", type=float, default=0.25,
                        help="redraw interval in seconds")
    parser.add_argument("--width", type=int, default=78)
    parser.add_argument("--frames", type=int, default=None,
                        help="stop after N frames (default: until Ctrl-C)")
    parser.add_argument("--once", action="store_true",
                        help="render the current state once and exit")
    args = parser.parse_args(argv)
    if args.once:
        from .dashboard import render_frame
        from .sampler import load_timeline
        rows = load_timeline(args.timeline)
        print(render_frame(rows[-120:], args.width))
        return 0
    frames = run_dashboard(tail_rows(args.timeline),
                           refresh_s=args.refresh, width=args.width,
                           max_frames=args.frames)
    return 0 if frames else 1


def cmd_bench_diff(argv) -> int:
    """``python -m repro bench-diff OLD.json NEW.json [options]``"""
    parser = argparse.ArgumentParser(
        prog="python -m repro bench-diff",
        description="Compare two simulate reports; exit 1 on regression.")
    parser.add_argument("old", help="baseline report JSON")
    parser.add_argument("new", help="candidate report JSON")
    parser.add_argument("--max-p99-pct", type=float, default=25.0,
                        help="flag ops whose p99 regressed more than this")
    parser.add_argument("--max-tput-pct", type=float, default=20.0,
                        help="flag throughput drops larger than this")
    args = parser.parse_args(argv)
    with open(args.old, "r", encoding="utf-8") as fh:
        old = json.load(fh)
    with open(args.new, "r", encoding="utf-8") as fh:
        new = json.load(fh)
    result = compare_reports(old, new,
                             max_p99_regression_pct=args.max_p99_pct,
                             max_throughput_drop_pct=args.max_tput_pct)
    print(format_comparison(result))
    return 0 if result["ok"] else 1
