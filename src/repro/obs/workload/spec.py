"""Declarative scenario specifications for the macro workload simulator.

A scenario is data, not code (the VOODB position: workloads you can
publish, re-run, and diff). It names a dataset scale, one or more
*phases*, and per-phase *client groups*; each group is a population of
identical clients with an operation mix and an arrival process:

- ``closed``  — each client issues the next operation when the previous
  one finishes, after an optional think time (a connection pool);
- ``fixed``   — each client issues operations at a fixed rate,
  regardless of completions (an open-loop load generator);
- ``poisson`` — open loop with exponentially distributed inter-arrival
  times (independent user traffic).

Open-loop latencies are measured from the operation's *scheduled*
arrival, so queueing delay under overload is part of the number — the
property that makes open-loop percentiles honest (coordinated-omission
safe).

Specs parse from plain dicts (JSON files, TOML files on Python >= 3.11,
or the built-in table below); :func:`parse_scenario` validates
everything and raises :class:`ScenarioError` with a path-qualified
message on the first problem.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ...errors import OdeError

#: Operation classes the driver implements (see driver.py for semantics).
VALID_OPS = frozenset((
    "pnew", "update", "deref", "scan", "explode", "trigger",
    "version", "timetravel", "ingest", "analyze",
))

ARRIVALS = ("closed", "fixed", "poisson")

#: Dataset population knobs accepted under ``dataset``.
DATASET_KEYS = frozenset(("items", "parts", "designs", "events"))

#: Tunables accepted under ``params`` (merged over these defaults).
DEFAULT_PARAMS: Dict[str, float] = {
    "ingest_batch": 250,     # SimEvents per ingest transaction
    "trigger_items": 200,    # items armed with the restock trigger
    "scan_categories": 10,   # selectivity of the analytical scan
    "think_jitter": 0.5,     # +/- fraction applied to think times
}


class ScenarioError(OdeError):
    """A scenario spec failed validation."""


@dataclass
class ClientGroup:
    """A population of identical clients."""

    count: int
    mix: Dict[str, float]
    arrival: str = "closed"
    think_time_ms: float = 0.0
    rate: float = 0.0            # per-client ops/s (open loops only)


@dataclass
class PhaseSpec:
    """One timed stage of a scenario (e.g. ingest, then analyze)."""

    name: str
    duration_s: float
    clients: List[ClientGroup]


@dataclass
class ScenarioSpec:
    """A complete, validated scenario."""

    name: str
    description: str = ""
    dataset: Dict[str, int] = field(default_factory=dict)
    phases: List[PhaseSpec] = field(default_factory=list)
    seed: int = 0
    sample_interval_ms: float = 100.0
    durability: str = "group"
    shards: Optional[int] = None
    params: Dict[str, float] = field(default_factory=dict)

    def scaled(self, factor: float) -> "ScenarioSpec":
        """A copy with dataset sizes multiplied by *factor* (>= 0)."""
        if factor <= 0:
            raise ScenarioError("scale factor must be positive, got %r"
                                % (factor,))
        dataset = {k: int(math.ceil(v * factor))
                   for k, v in self.dataset.items()}
        return replace(self, dataset=dataset)

    def with_duration(self, duration_s: float) -> "ScenarioSpec":
        """A copy with every phase's duration set to *duration_s*."""
        phases = [replace(p, duration_s=duration_s) for p in self.phases]
        return replace(self, phases=phases)

    @property
    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    def to_dict(self) -> Dict:
        """Plain-dict form (round-trips through parse_scenario)."""
        return {
            "name": self.name,
            "description": self.description,
            "dataset": dict(self.dataset),
            "seed": self.seed,
            "sample_interval_ms": self.sample_interval_ms,
            "durability": self.durability,
            "shards": self.shards,
            "params": dict(self.params),
            "phases": [
                {"name": p.name, "duration_s": p.duration_s,
                 "clients": [
                     {"count": g.count, "mix": dict(g.mix),
                      "arrival": g.arrival,
                      "think_time_ms": g.think_time_ms, "rate": g.rate}
                     for g in p.clients]}
                for p in self.phases],
        }


# ---------------------------------------------------------------------------
# Parsing / validation
# ---------------------------------------------------------------------------

def _require(cond: bool, where: str, message: str) -> None:
    if not cond:
        raise ScenarioError("%s: %s" % (where, message))


def _parse_group(d: Dict, where: str) -> ClientGroup:
    _require(isinstance(d, dict), where, "client group must be a table")
    unknown = set(d) - {"count", "mix", "arrival", "think_time_ms", "rate"}
    _require(not unknown, where, "unknown keys %s" % sorted(unknown))
    count = d.get("count", 1)
    _require(isinstance(count, int) and count >= 1, where,
             "count must be an integer >= 1, got %r" % (count,))
    mix = d.get("mix")
    _require(isinstance(mix, dict) and mix, where,
             "mix must be a non-empty {op: weight} table")
    for op, weight in mix.items():
        _require(op in VALID_OPS, where,
                 "unknown operation %r (valid: %s)"
                 % (op, ", ".join(sorted(VALID_OPS))))
        _require(isinstance(weight, (int, float)) and weight > 0, where,
                 "weight for %r must be > 0, got %r" % (op, weight))
    arrival = d.get("arrival", "closed")
    _require(arrival in ARRIVALS, where,
             "arrival must be one of %s, got %r" % (ARRIVALS, arrival))
    think = d.get("think_time_ms", 0.0)
    _require(isinstance(think, (int, float)) and think >= 0, where,
             "think_time_ms must be >= 0")
    rate = d.get("rate", 0.0)
    if arrival == "closed":
        _require(not rate, where,
                 "rate only applies to open-loop arrivals "
                 "(fixed / poisson)")
    else:
        _require(isinstance(rate, (int, float)) and rate > 0, where,
                 "open-loop arrival %r needs rate > 0 (ops/s per client)"
                 % arrival)
        _require(not think, where,
                 "think_time_ms only applies to closed-loop arrivals")
    return ClientGroup(count=count, mix={k: float(v) for k, v in mix.items()},
                       arrival=arrival, think_time_ms=float(think),
                       rate=float(rate))


def _parse_phase(d: Dict, index: int) -> PhaseSpec:
    where = "phases[%d]" % index
    _require(isinstance(d, dict), where, "phase must be a table")
    unknown = set(d) - {"name", "duration_s", "clients"}
    _require(not unknown, where, "unknown keys %s" % sorted(unknown))
    name = d.get("name", "phase%d" % index)
    _require(isinstance(name, str) and name, where, "name must be a string")
    duration = d.get("duration_s")
    _require(isinstance(duration, (int, float)) and duration > 0, where,
             "duration_s must be > 0")
    clients = d.get("clients")
    _require(isinstance(clients, list) and clients, where,
             "clients must be a non-empty list")
    groups = [_parse_group(g, "%s.clients[%d]" % (where, i))
              for i, g in enumerate(clients)]
    return PhaseSpec(name=name, duration_s=float(duration), clients=groups)


def parse_scenario(d: Dict) -> ScenarioSpec:
    """Validate a plain-dict spec into a :class:`ScenarioSpec`.

    Raises :class:`ScenarioError` naming the offending key on the first
    problem — a typo in a scenario file should fail loudly, not silently
    drive the wrong workload.
    """
    _require(isinstance(d, dict), "scenario", "spec must be a table")
    known = {"name", "description", "dataset", "seed", "sample_interval_ms",
             "durability", "shards", "params", "phases",
             "duration_s", "clients"}
    unknown = set(d) - known
    _require(not unknown, "scenario", "unknown keys %s" % sorted(unknown))
    name = d.get("name")
    _require(isinstance(name, str) and bool(name), "scenario",
             "name is required")
    dataset = d.get("dataset", {})
    _require(isinstance(dataset, dict), "dataset", "must be a table")
    for key, value in dataset.items():
        _require(key in DATASET_KEYS, "dataset",
                 "unknown key %r (valid: %s)"
                 % (key, ", ".join(sorted(DATASET_KEYS))))
        _require(isinstance(value, int) and value >= 0, "dataset",
                 "%s must be an integer >= 0" % key)
    # Single-phase shorthand: top-level duration_s + clients.
    if "phases" in d:
        _require("clients" not in d and "duration_s" not in d, "scenario",
                 "give either phases or top-level duration_s/clients, "
                 "not both")
        raw_phases = d["phases"]
        _require(isinstance(raw_phases, list) and bool(raw_phases),
                 "phases", "must be a non-empty list")
        phases = [_parse_phase(p, i) for i, p in enumerate(raw_phases)]
    else:
        _require("clients" in d and "duration_s" in d, "scenario",
                 "needs phases, or duration_s plus clients")
        phases = [_parse_phase({"name": "main",
                                "duration_s": d["duration_s"],
                                "clients": d["clients"]}, 0)]
    durability = d.get("durability", "group")
    _require(durability in ("full", "group", "none"), "durability",
             "must be full, group, or none; got %r" % (durability,))
    shards = d.get("shards")
    _require(shards is None or (isinstance(shards, int) and shards >= 1),
             "shards", "must be an integer >= 1")
    seed = d.get("seed", 0)
    _require(isinstance(seed, int), "seed", "must be an integer")
    interval = d.get("sample_interval_ms", 100.0)
    _require(isinstance(interval, (int, float)) and interval > 0,
             "sample_interval_ms", "must be > 0")
    params = dict(DEFAULT_PARAMS)
    raw_params = d.get("params", {})
    _require(isinstance(raw_params, dict), "params", "must be a table")
    for key, value in raw_params.items():
        _require(key in DEFAULT_PARAMS, "params",
                 "unknown key %r (valid: %s)"
                 % (key, ", ".join(sorted(DEFAULT_PARAMS))))
        _require(isinstance(value, (int, float)) and value >= 0, "params",
                 "%s must be a number >= 0" % key)
        params[key] = value
    return ScenarioSpec(
        name=name, description=d.get("description", ""),
        dataset={k: int(v) for k, v in dataset.items()},
        phases=phases, seed=seed, sample_interval_ms=float(interval),
        durability=durability, shards=shards, params=params)


def load_scenario(path: str) -> ScenarioSpec:
    """Load a scenario spec from a ``.json`` or ``.toml`` file."""
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            raise ScenarioError(
                "TOML scenario files need Python >= 3.11 (tomllib); "
                "use the JSON form of %r instead" % path)
        with open(path, "rb") as fh:
            try:
                data = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                raise ScenarioError("%s: %s" % (path, exc))
    else:
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except ValueError as exc:
                raise ScenarioError("%s: %s" % (path, exc))
    return parse_scenario(data)


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
# Sizes here are the smoke tier (seconds-scale on one core); `--scale`
# multiplies the dataset and `--duration` stretches the phases for the
# full tier. The committed BENCH_ runs record which tier produced them.

BUILTIN_SCENARIOS: Dict[str, Dict] = {
    # OLTP mix over the inventory schema: point reads dominate, with
    # read-modify-write updates, inserts, and the occasional short scan.
    "oltp": {
        "name": "oltp",
        "description": "OLTP mix: derefs, read-modify-write updates, "
                       "inserts, short analytical scans",
        "dataset": {"items": 2000},
        "duration_s": 4.0,
        "clients": [
            {"count": 4,
             "mix": {"deref": 8, "update": 4, "pnew": 2, "scan": 1}},
            # One open-loop group keeps pressure constant even when the
            # closed-loop clients stall on locks: queueing delay then
            # shows up in the percentiles instead of disappearing.
            {"count": 2, "mix": {"deref": 3, "update": 1},
             "arrival": "poisson", "rate": 40.0},
        ],
    },
    # ALEPH-style bulk scientific ingest, then scan-heavy analysis:
    # append event batches, then aggregate over the accumulated extent.
    "ingest_scan": {
        "name": "ingest_scan",
        "description": "Bulk event ingest, then scan-heavy analysis "
                       "(ALEPH ingest-then-analyze shape)",
        "dataset": {"events": 2000},
        "phases": [
            {"name": "ingest", "duration_s": 3.0,
             "clients": [{"count": 3, "mix": {"ingest": 1}}]},
            {"name": "analyze", "duration_s": 3.0,
             "clients": [{"count": 3,
                          "mix": {"analyze": 3, "scan": 1}}]},
        ],
    },
    # Active-database churn: trigger cascades, version creation, and
    # time-travel reads against the version chains, with fixpoint
    # part explosions mixed in.
    "churn": {
        "name": "churn",
        "description": "Trigger cascades, version churn, time-travel "
                       "reads, recursive part explosions",
        "dataset": {"items": 600, "parts": 300, "designs": 200},
        "duration_s": 4.0,
        "clients": [
            {"count": 3,
             "mix": {"trigger": 2, "version": 3, "timetravel": 2,
                     "update": 2, "explode": 1}},
        ],
    },
}


def get_scenario(name: str) -> ScenarioSpec:
    """A built-in scenario by name (see :data:`BUILTIN_SCENARIOS`)."""
    try:
        raw = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            "unknown scenario %r (built-ins: %s; or pass a spec file)"
            % (name, ", ".join(sorted(BUILTIN_SCENARIOS))))
    return parse_scenario(raw)
