"""Macro workload simulator: scenario specs, driver, sampler, dashboard.

The micro benchmarks under ``benchmarks/`` time one operation shape at a
time; this package answers the VOODB-style question instead — *how does
the whole engine behave under a realistic mixed workload at scale?* It
is built as an observability layer: everything it measures flows through
the :mod:`repro.obs` metrics registry, so the same percentile histograms
and counters serve the simulator report, the Prometheus exposition, and
the live ``repro top`` dashboard.

Pieces:

- :mod:`repro.obs.workload.spec` — declarative scenario specs (client
  populations, open/closed-loop arrival processes, operation mixes,
  dataset scales) with validation, plus three built-in scenarios.
- :mod:`repro.obs.workload.driver` — executes a scenario over threads
  against an embedded :class:`~repro.core.database.Database`, timing
  every operation into per-class latency histograms.
- :mod:`repro.obs.workload.sampler` — a background thread snapshotting
  registry deltas every N ms into a JSONL timeline (ops/s, abort rates,
  cache hits, WAL flushes, per-shard scans, conflicts).
- :mod:`repro.obs.workload.dashboard` — renders the sampler feed as a
  live ANSI console dashboard (``repro top``).
- :mod:`repro.obs.workload.compare` — diffs two simulation reports and
  flags p99/throughput regressions (the macro regression gate).
"""

from .compare import compare_reports, format_comparison
from .dashboard import render_frame, run_dashboard, tail_rows
from .driver import WorkloadDriver
from .sampler import TimeSeriesSampler, load_timeline
from .spec import (BUILTIN_SCENARIOS, ClientGroup, PhaseSpec, ScenarioError,
                   ScenarioSpec, get_scenario, load_scenario, parse_scenario)

__all__ = [
    "BUILTIN_SCENARIOS", "ClientGroup", "PhaseSpec", "ScenarioError",
    "ScenarioSpec", "get_scenario", "load_scenario", "parse_scenario",
    "WorkloadDriver", "TimeSeriesSampler", "load_timeline",
    "render_frame", "run_dashboard", "tail_rows",
    "compare_reports", "format_comparison",
]
