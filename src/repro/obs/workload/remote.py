"""Remote workload mode: drive a ``repro serve`` instance over TCP.

The same scenario machinery (phases, client groups, closed/open-loop
arrivals, coordinated-omission-safe latency) runs against a *network*
server instead of an embedded Database: every operation becomes O++
source shipped over the wire, executed server-side, its output streamed
back. Each client thread owns one connection — mirroring the server's
connection-per-session model — and latencies land in a **client-side**
metrics registry, so the report measures what a remote application
would actually observe (protocol + scheduling + engine), not just the
engine.

Only operations expressible as self-contained O++ are supported
(``pnew``, ``update``, ``deref``, ``scan``, ``ingest``, ``analyze`` —
the ``oltp`` and ``ingest_scan`` scenarios); the churn ops need
embedded-only APIs (``newversion`` handles, snapshot-token reuse across
clients) and are rejected up front with a clear error.
"""

from __future__ import annotations

import random
import threading
from typing import Dict

from ...errors import OdeError
from ...server.client import Client
from ..metrics import MetricsRegistry
from .driver import WorkloadDriver
from .spec import ScenarioSpec

#: Ops with an O++-over-the-wire implementation.
REMOTE_OPS = frozenset(
    {"pnew", "update", "deref", "scan", "ingest", "analyze"})

_SCHEMA = """
class ritem {
  public:
    char* name;
    int id;
    int qty;
    int category;
    double price;
};
create ritem;
class revent {
  public:
    int run;
    int seq;
    int detector;
    double energy;
};
create revent;
"""


class _RemoteHost:
    """The ``db``-shaped sliver the base driver needs: a metrics registry
    for client-side histograms and a snapshot-token source (served by
    whatever connection the calling thread owns)."""

    def __init__(self, driver: "RemoteWorkloadDriver"):
        self.metrics = MetricsRegistry()
        self._driver = driver

    def snapshot_token(self):
        return self._driver._conn().snapshot_token()


class RemoteWorkloadDriver(WorkloadDriver):
    """Run a scenario against ``repro serve`` at *host*:*port*."""

    def __init__(self, host: str, port: int, spec: ScenarioSpec,
                 instrument: bool = True):
        used = set(op for ph in spec.phases
                   for g in ph.clients for op in g.mix)
        unsupported = sorted(used - REMOTE_OPS)
        if unsupported:
            raise OdeError(
                "ops not supported in --remote mode: %s (remote scenarios "
                "may use: %s)" % (", ".join(unsupported),
                                  ", ".join(sorted(REMOTE_OPS))))
        super().__init__(_RemoteHost(self), spec, instrument)
        self.host = host
        self.port = port
        self._local = threading.local()
        self._n_items = 0
        self._id_lock = threading.Lock()
        self._next_id = 0

    def _conn(self) -> Client:
        client = getattr(self._local, "client", None)
        if client is None:
            client = Client(self.host, self.port)
            self._local.client = client
        return client

    def _claim_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    # -- setup ------------------------------------------------------------

    def setup(self) -> None:
        """Create the remote schema and populate it in batched txns."""
        client = self._conn()
        rng = random.Random("%s:setup" % self.spec.seed)
        client.execute(_SCHEMA)
        n_items = self.spec.dataset.get("items", 0)
        n_cat = max(1, int(self.params["scan_categories"]))
        for start in range(0, n_items, 500):
            lines = []
            for i in range(start, min(start + 500, n_items)):
                lines.append(
                    'pnew ritem("item%06d", %d, %d, %d, %.2f);'
                    % (i, i, rng.randrange(50, 500), i % n_cat,
                       rng.uniform(1, 500)))
            client.run_transaction(
                lambda c, src="\n".join(lines): c.execute(src))
        self._n_items = n_items
        self._next_id = n_items
        n_events = self.spec.dataset.get("events", 0)
        for start in range(0, n_events, 500):
            lines = []
            for i in range(start, min(start + 500, n_events)):
                lines.append('pnew revent(0, %d, %d, %.3f);'
                             % (i, i % 16, rng.uniform(0.1, 99.0)))
            client.run_transaction(
                lambda c, src="\n".join(lines): c.execute(src))
        self._tokens.append(client.snapshot_token())

    # -- operations (O++ over the wire) ------------------------------------

    def _op_pnew(self, rng: random.Random) -> None:
        new_id = self._claim_id()
        self._conn().execute(
            'pnew ritem("new%08d", %d, %d, %d, %.2f);'
            % (new_id, new_id, rng.randrange(50, 500),
               rng.randrange(max(1, int(self.params["scan_categories"]))),
               rng.uniform(1, 500)))

    def _op_update(self, rng: random.Random) -> None:
        if not self._n_items:
            return
        target = rng.randrange(self._n_items)
        delta = rng.randrange(-20, 21)
        src = ("forall t in ritem suchthat (t->id == %d) "
               "t->qty = t->qty + %d;" % (target, delta))
        # Parity with the embedded driver: hot-row conflicts (deadlock,
        # snapshot conflict) retry instead of counting as errors.
        self._conn().run_transaction(lambda c: c.execute(src))

    def _op_deref(self, rng: random.Random) -> None:
        if not self._n_items:
            return
        target = rng.randrange(self._n_items)
        self._conn().execute(
            "forall t in ritem suchthat (t->id == %d) "
            'printf("%%d\\n", t->qty);' % target)

    def _op_scan(self, rng: random.Random) -> None:
        cat = rng.randrange(max(1, int(self.params["scan_categories"])))
        out = self._conn().execute(
            "forall t in ritem suchthat (t->category == %d) "
            'printf("%%d\\n", t->qty);' % cat)
        sum(int(line) for line in out if line.strip())

    def _op_ingest(self, rng: random.Random) -> None:
        batch = int(self.params["ingest_batch"])
        run = self._ingest_run = self._ingest_run + 1
        lines = ['pnew revent(%d, %d, %d, %.3f);'
                 % (run, i, i % 16, rng.uniform(0.1, 99.0))
                 for i in range(batch)]
        self._conn().run_transaction(
            lambda c, src="\n".join(lines): c.execute(src))

    def _op_analyze(self, rng: random.Random) -> None:
        det = rng.randrange(16)
        out = self._conn().execute(
            "forall e in revent suchthat (e->detector == %d) "
            'printf("%%g\\n", e->energy);' % det)
        sum(float(line) for line in out if line.strip())

    OPS: Dict = {
        "pnew": _op_pnew, "update": _op_update, "deref": _op_deref,
        "scan": _op_scan, "ingest": _op_ingest, "analyze": _op_analyze,
    }

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        """Close the calling thread's connection (worker connections are
        torn down by their threads exiting or the server's idle reaper)."""
        client = getattr(self._local, "client", None)
        if client is not None:
            client.close()
            self._local.client = None
