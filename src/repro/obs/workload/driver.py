"""Workload driver: executes a scenario spec against an embedded Database.

The driver owns a small synthetic schema (items with a restock trigger,
a parts BOM DAG, versioned designs, append-only events) sized by the
scenario's ``dataset`` section, then runs each phase's client groups as
threads. Every operation is timed into a per-class latency histogram in
the database's own metrics registry, so the simulator, the Prometheus
exposition, and the ``repro top`` dashboard all read one source.

Latency semantics follow the coordinated-omission rule: closed-loop
clients measure from operation start (the client *waited* by design),
open-loop clients measure from the operation's **scheduled arrival**, so
a stalled engine shows up as growing latency rather than silently
reduced throughput.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ...core import (FloatField, IntField, OdeObject, RefField, SetField,
                     StringField, Trigger, newversion)
from ...errors import OdeError, SnapshotTooOldError
from ...query import A, forall, semi_naive
from .spec import DEFAULT_PARAMS, ScenarioSpec

#: Latency buckets in nanoseconds: ~10us .. 10s, quarter-decade spacing.
#: Wide enough that a stalled open-loop client still lands in a finite
#: bucket, fine enough for p99.9 interpolation to be meaningful.
LATENCY_BUCKETS_NS = tuple(
    int(base * 10 ** exp)
    for exp in range(4, 10)
    for base in (1.0, 1.8, 3.2, 5.6)
) + (10 ** 10,)

#: Quantiles reported per op class.
REPORT_QUANTILES = (0.50, 0.90, 0.99, 0.999)


# ---------------------------------------------------------------------------
# Synthetic schema
# ---------------------------------------------------------------------------

class SimSupplier(OdeObject):
    """Supplier side of the paper's running inventory example."""

    name = StringField(default="")
    region = StringField(default="")


class SimItem(OdeObject):
    """Stock item with the paper's perpetual restock trigger."""

    name = StringField(default="")
    price = FloatField(default=0.0)
    qty = IntField(default=100)
    category = IntField(default=0)
    reorder_level = IntField(default=0)
    supplier = RefField("SimSupplier")

    restock = Trigger(
        condition=lambda self: self.qty <= self.reorder_level,
        action=lambda self: setattr(self, "qty", self.qty + 100),
        perpetual=True)


class SimPart(OdeObject):
    """BOM node for recursive part-explosion queries."""

    name = StringField(default="")
    cost = FloatField(default=1.0)
    uses = SetField("SimPart")


class SimDesign(OdeObject):
    """Versioned document for newversion / time-travel churn."""

    name = StringField(default="")
    revision = IntField(default=0)
    notes = StringField(default="")


class SimEvent(OdeObject):
    """Append-only measurement row for ingest/analyze scenarios."""

    run = IntField(default=0)
    seq = IntField(default=0)
    energy = FloatField(default=0.0)
    detector = IntField(default=0)


DATASET_CLASSES = {
    "items": SimItem,
    "parts": SimPart,
    "designs": SimDesign,
    "events": SimEvent,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

class _ClientStats:
    """Per-thread tally; summed at join so it works uninstrumented too."""

    __slots__ = ("ops", "errors", "by_op")

    def __init__(self):
        self.ops = 0
        self.errors = 0
        self.by_op: Dict[str, int] = {}


class WorkloadDriver:
    """Run a :class:`~repro.obs.workload.spec.ScenarioSpec` against *db*.

    With ``instrument=False`` the driver performs identical work but
    records no histogram observations or counters — the pair is how
    ``bench_macro`` measures observability overhead.
    """

    def __init__(self, db, spec: ScenarioSpec, instrument: bool = True):
        self.db = db
        self.spec = spec
        self.instrument = instrument
        self.params = dict(DEFAULT_PARAMS)
        self.params.update(spec.params)
        self._refs: Dict[str, List[Any]] = {k: [] for k in DATASET_CLASSES}
        self._trigger_refs: List[Any] = []
        self._roots: List[Any] = []       # BOM roots for explode
        self._tokens: List[int] = []      # recent snapshot tokens
        self._tokens_lock = threading.Lock()
        self._stop = threading.Event()
        self._stats: List[_ClientStats] = []
        self._ingest_run = 0
        self._hists: Dict[str, Any] = {}
        if instrument:
            for op in sorted(set(op for ph in spec.phases
                                 for g in ph.clients for op in g.mix)):
                self._hists[op] = db.metrics.histogram(
                    "workload.op_ns", list(LATENCY_BUCKETS_NS), op=op)

    # -- setup ------------------------------------------------------------

    def setup(self) -> None:
        """Create clusters and populate the dataset inside batch txns."""
        db = self.db
        rng = random.Random("%s:setup" % self.spec.seed)
        for cls in (SimSupplier,) + tuple(DATASET_CLASSES.values()):
            db.create(cls, exist_ok=True)
        suppliers = []
        with db.transaction():
            for i in range(8):
                suppliers.append(db.pnew(
                    SimSupplier, name="sup%d" % i,
                    region=("east", "west", "north", "south")[i % 4]))
        n_items = self.spec.dataset.get("items", 0)
        n_cat = max(1, int(self.params["scan_categories"]))

        def load_batch(lo, hi, make):
            # run_transaction so a transient injected fault retries the
            # whole batch; refs are only published after commit, so a
            # rolled-back attempt leaves no dangling oids behind.
            def body():
                return [make(i).oid for i in range(lo, hi)]
            return db.run_transaction(body, retries=4)

        def make_item(i):
            return db.pnew(
                SimItem, name="item%06d" % i,
                price=round(rng.uniform(1, 500), 2),
                qty=rng.randrange(50, 500), category=i % n_cat,
                reorder_level=10,
                supplier=suppliers[i % len(suppliers)].oid)

        for start in range(0, n_items, 1000):
            self._refs["items"].extend(
                load_batch(start, min(start + 1000, n_items), make_item))
        n_trig = min(int(self.params["trigger_items"]),
                     len(self._refs["items"]))
        for ref in self._refs["items"][:n_trig]:
            db.run_transaction(lambda r=ref: db.deref(r).restock(),
                               retries=4)
            self._trigger_refs.append(ref)
        self._populate_parts(rng)
        def make_design(i):
            return db.pnew(SimDesign, name="design%05d" % i,
                           revision=0, notes="r0")

        def make_event(i):
            return db.pnew(SimEvent, run=0, seq=i,
                           energy=rng.uniform(0.1, 99.0), detector=i % 16)

        n_designs = self.spec.dataset.get("designs", 0)
        for start in range(0, n_designs, 1000):
            self._refs["designs"].extend(
                load_batch(start, min(start + 1000, n_designs), make_design))
        n_events = self.spec.dataset.get("events", 0)
        for start in range(0, n_events, 1000):
            self._refs["events"].extend(
                load_batch(start, min(start + 1000, n_events), make_event))
        self._tokens.append(db.snapshot_token())

    def _populate_parts(self, rng: random.Random) -> None:
        """Build a layered BOM DAG: each part uses 2-3 from layers below."""
        db = self.db
        n_parts = self.spec.dataset.get("parts", 0)
        if not n_parts:
            return
        made: List[Any] = []
        for start in range(0, n_parts, 500):
            def body(lo=start, hi=min(start + 500, n_parts)):
                batch: List[Any] = []
                for i in range(lo, hi):
                    part = db.pnew(SimPart, name="part%05d" % i,
                                   cost=round(rng.uniform(0.5, 20.0), 2))
                    pool = made + batch
                    if len(pool) >= 4:
                        for _ in range(rng.randrange(2, 4)):
                            child = pool[rng.randrange(
                                max(0, len(pool) - 200), len(pool))]
                            part.uses.insert(child)
                        part.uses = part.uses   # mark dirty
                    batch.append(part.oid)
                return batch
            made.extend(db.run_transaction(body, retries=4))
        self._refs["parts"].extend(made)
        self._roots = made[-max(1, n_parts // 10):]

    # -- operations -------------------------------------------------------

    def _pick(self, rng: random.Random, kind: str):
        refs = self._refs[kind]
        return refs[rng.randrange(len(refs))] if refs else None

    def _op_pnew(self, rng: random.Random) -> None:
        db = self.db
        with db.transaction():
            obj = db.pnew(SimItem, name="new%08d" % rng.getrandbits(30),
                          price=round(rng.uniform(1, 500), 2),
                          qty=rng.randrange(50, 500),
                          category=rng.randrange(
                              max(1, int(self.params["scan_categories"]))),
                          reorder_level=10)
        self._refs["items"].append(obj.oid)

    def _op_update(self, rng: random.Random) -> None:
        ref = self._pick(rng, "items")
        if ref is None:
            return
        db = self.db

        def body():
            obj = db.deref(ref)
            obj.qty = max(0, obj.qty + rng.randrange(-20, 21))
            obj.price = round(obj.price * rng.uniform(0.98, 1.02), 2)
        db.run_transaction(body, retries=2)

    def _op_deref(self, rng: random.Random) -> None:
        ref = self._pick(rng, "items")
        if ref is not None:
            obj = self.db.deref(ref)
            _ = obj.qty

    def _op_scan(self, rng: random.Random) -> None:
        cat = rng.randrange(max(1, int(self.params["scan_categories"])))
        total = 0
        for obj in forall(self.db.cluster(SimItem)).suchthat(
                A.category == cat):
            total += obj.qty

    def _op_explode(self, rng: random.Random) -> None:
        if not self._roots:
            return
        root = self._roots[rng.randrange(len(self._roots))]
        db = self.db
        semi_naive([root], lambda ref: list(db.deref(ref).uses))

    def _op_trigger(self, rng: random.Random) -> None:
        if not self._trigger_refs:
            return
        ref = self._trigger_refs[rng.randrange(len(self._trigger_refs))]
        db = self.db

        def body():
            obj = db.deref(ref)
            # Drain to the reorder level so the perpetual restock
            # trigger's condition flips and its action cascades.
            obj.qty = max(0, obj.reorder_level - rng.randrange(0, 5))
        db.run_transaction(body, retries=2)

    def _op_version(self, rng: random.Random) -> None:
        ref = self._pick(rng, "designs")
        if ref is None:
            return
        db = self.db

        def body():
            vref = newversion(db.deref(ref))
            obj = db.deref(vref)
            obj.revision += 1
            obj.notes = "r%d" % obj.revision
        db.run_transaction(body, retries=2)

    def _op_timetravel(self, rng: random.Random) -> None:
        with self._tokens_lock:
            if not self._tokens:
                return
            token = self._tokens[rng.randrange(len(self._tokens))]
        try:
            handle = self.db.cluster(SimItem).as_of(token)
            for i, obj in enumerate(handle):
                if i >= 50:
                    break
        except SnapshotTooOldError:
            with self._tokens_lock:
                if token in self._tokens:
                    self._tokens.remove(token)
            raise

    def _op_ingest(self, rng: random.Random) -> None:
        db = self.db
        batch = int(self.params["ingest_batch"])
        run = self._ingest_run = self._ingest_run + 1
        with db.transaction():
            for i in range(batch):
                obj = db.pnew(SimEvent, run=run, seq=i,
                              energy=rng.uniform(0.1, 99.0),
                              detector=i % 16)
                self._refs["events"].append(obj.oid)

    def _op_analyze(self, rng: random.Random) -> None:
        det = rng.randrange(16)
        total = n = 0
        for obj in forall(self.db.cluster(SimEvent)).suchthat(
                A.detector == det):
            total += obj.energy
            n += 1

    OPS: Dict[str, Callable] = {
        "pnew": _op_pnew, "update": _op_update, "deref": _op_deref,
        "scan": _op_scan, "explode": _op_explode, "trigger": _op_trigger,
        "version": _op_version, "timetravel": _op_timetravel,
        "ingest": _op_ingest, "analyze": _op_analyze,
    }

    # -- run --------------------------------------------------------------

    def _record(self, op: str, start_ns: int, stats: _ClientStats,
                error: bool) -> None:
        elapsed = time.perf_counter_ns() - start_ns
        stats.ops += 1
        stats.by_op[op] = stats.by_op.get(op, 0) + 1
        if error:
            stats.errors += 1
        if self.instrument:
            self._hists[op].observe(elapsed)
            if error:
                self.db.metrics.counter("workload.errors", op=op).inc()

    def _client_loop(self, phase, group, idx: int,
                     stats: _ClientStats) -> None:
        rng = random.Random("%s:%s:%s:%d" % (self.spec.seed, phase.name,
                                             group.arrival, idx))
        ops = list(group.mix)
        weights = [group.mix[o] for o in ops]
        deadline = time.perf_counter() + phase.duration_s
        token_every = 25
        since_token = 0
        next_arrival = time.perf_counter()
        while not self._stop.is_set() and time.perf_counter() < deadline:
            if group.arrival == "closed":
                start_ns = time.perf_counter_ns()
            else:
                # Open loop: wait for the scheduled arrival, then
                # measure from the *schedule*, not from now — latency
                # while the client was queued behind a slow engine
                # counts (no coordinated omission).
                gap = (1.0 / group.rate if group.arrival == "fixed"
                       else rng.expovariate(group.rate))
                wait = next_arrival - time.perf_counter()
                if wait > 0:
                    if self._stop.wait(min(wait, 0.25)):
                        return
                    if time.perf_counter() < next_arrival:
                        continue
                start_ns = int(next_arrival * 1e9)
                next_arrival += gap
            op = rng.choices(ops, weights)[0]
            error = False
            try:
                self.OPS[op](self, rng)
            except OdeError:
                error = True
            self._record(op, start_ns, stats, error)
            since_token += 1
            if since_token >= token_every:
                since_token = 0
                with self._tokens_lock:
                    self._tokens.append(self.db.snapshot_token())
                    if len(self._tokens) > 32:
                        self._tokens.pop(0)
            if group.arrival == "closed" and group.think_time_ms:
                jitter = float(self.params["think_jitter"])
                pause = group.think_time_ms / 1000.0 * rng.uniform(
                    1.0 - jitter, 1.0 + jitter)
                if self._stop.wait(pause):
                    return

    def run(self) -> Dict[str, Any]:
        """Execute every phase; returns the report dict."""
        t0 = time.perf_counter()
        for phase in self.spec.phases:
            threads = []
            for group in phase.clients:
                for idx in range(group.count):
                    stats = _ClientStats()
                    self._stats.append(stats)
                    t = threading.Thread(
                        target=self._client_loop,
                        args=(phase, group, idx, stats),
                        name="wl-%s-%d" % (phase.name, idx), daemon=True)
                    threads.append(t)
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            if self._stop.is_set():
                break
        return self.report(time.perf_counter() - t0)

    def stop(self) -> None:
        self._stop.set()

    # -- report -----------------------------------------------------------

    def report(self, elapsed_s: float) -> Dict[str, Any]:
        """BENCH-style report: per-op percentiles, throughput, errors."""
        total_ops = sum(s.ops for s in self._stats)
        total_errors = sum(s.errors for s in self._stats)
        by_op: Dict[str, int] = {}
        for s in self._stats:
            for op, n in s.by_op.items():
                by_op[op] = by_op.get(op, 0) + n
        out: Dict[str, Any] = {
            "scenario": self.spec.to_dict(),
            "elapsed_s": round(elapsed_s, 3),
            "ops": total_ops,
            "errors": total_errors,
            "ops_per_s": round(total_ops / elapsed_s, 1) if elapsed_s else 0,
            "by_op": by_op,
            "latency_ms": {},
            "instrumented": self.instrument,
        }
        if self.instrument:
            for op, hist in sorted(self._hists.items()):
                if hist.count == 0:
                    continue
                pcts = hist.percentiles(REPORT_QUANTILES)
                out["latency_ms"][op] = {
                    k: round(v / 1e6, 3) for k, v in pcts.items()
                    if v is not None}
                out["latency_ms"][op]["count"] = hist.count
                out["latency_ms"][op]["mean"] = round(
                    hist.sum / hist.count / 1e6, 3)
            out["metrics"] = {
                k: v for k, v in sorted(self.db.metrics.snapshot().items())
                if not isinstance(v, dict)}
        return out
