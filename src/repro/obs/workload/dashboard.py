"""Live console dashboard for the workload sampler feed (``repro top``).

Split so the interesting part is testable: :func:`render_frame` is a
pure function from sampler rows to a text frame (golden-tested), and
:func:`run_dashboard` is the thin ANSI loop that clears the screen and
redraws it. :func:`tail_rows` follows a JSONL timeline file the way
``tail -f`` does, so the dashboard works against a simulator running in
a different process.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"     # min..max; gaps (None) render as spaces


def _spark(values: Sequence[Optional[float]], width: int) -> str:
    """Render the last *width* values as a unicode sparkline."""
    tail = [v for v in values][-width:]
    numeric = [v for v in tail if v is not None]
    if not numeric:
        return "(no data)"
    lo, hi = min(numeric), max(numeric)
    span = (hi - lo) or 1.0
    out = []
    for v in tail:
        if v is None:
            out.append(" ")
        else:
            idx = int((v - lo) / span * (len(SPARK_CHARS) - 1))
            out.append(SPARK_CHARS[idx])
    return "".join(out)


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        text = "%.1f" % value if abs(value) >= 100 else "%.2f" % value
    else:
        text = str(value)
    return text + suffix


def render_frame(rows: Sequence[Dict[str, Any]], width: int = 78,
                 title: str = "repro top") -> str:
    """Render sampler *rows* (oldest→newest) as one dashboard frame."""
    lines: List[str] = []
    rule = "─" * width
    if not rows:
        header = " %s" % title
        lines.append(header + "waiting for samples".rjust(
            max(0, width - len(header))))
        lines.append(rule)
        return "\n".join(lines)
    last = rows[-1]
    status = "t=%ss  tick %s" % (_fmt(last.get("t")), last.get("tick", "?"))
    header = " %s" % title
    lines.append(header + status.rjust(max(0, width - len(header))))
    lines.append(rule)

    def stat_line(pairs):
        cell = max(10, (width - 2) // len(pairs))
        parts = []
        for label, value in pairs:
            parts.append(("%s %s" % (label, value)).ljust(cell))
        return " " + "".join(parts).rstrip()

    lines.append(stat_line([
        ("ops/s", _fmt(last.get("ops_s"))),
        ("commit/s", _fmt(last.get("commit_s"))),
        ("abort/s", _fmt(last.get("abort_s"))),
        ("in-flight", _fmt(last.get("in_flight"))),
    ]))
    lines.append(stat_line([
        ("p50", _fmt(last.get("p50_ms"), "ms")),
        ("p99", _fmt(last.get("p99_ms"), "ms")),
        ("err/s", _fmt(last.get("errors_s"))),
        ("buf hit", _fmt(last.get("buffer_hit_pct"), "%")),
    ]))
    lines.append(stat_line([
        ("wal sync/s", _fmt(last.get("wal_syncs_s"))),
        ("conflict/s", _fmt(last.get("conflicts_s"))),
        ("evt drop", _fmt(last.get("events_dropped"))),
    ]))
    aborts = last.get("aborts") or {}
    if aborts:
        text = " ".join("%s=%s" % (k, _fmt(v))
                        for k, v in sorted(aborts.items()))
        lines.append(" aborts by reason: %s" % text[:width - 20])
    scans = last.get("shard_scans") or {}
    if scans:
        text = " ".join("%s:%s" % (k.replace('shard="', "").rstrip('"'),
                                   _fmt(v))
                        for k, v in sorted(scans.items()))
        lines.append(" shard scans: %s" % text[:width - 14])
    lines.append(rule)
    spark_w = width - 2
    lines.append(" ops/s")
    lines.append(" " + _spark([r.get("ops_s") for r in rows], spark_w))
    lines.append(" p99 ms")
    lines.append(" " + _spark([r.get("p99_ms") for r in rows], spark_w))
    return "\n".join(lines)


def tail_rows(path: str, poll_s: float = 0.25,
              stop=None) -> Iterator[Dict[str, Any]]:
    """Yield rows appended to a JSONL timeline file, ``tail -f`` style."""
    import json
    pos = 0
    buf = ""
    while stop is None or not stop.is_set():
        if not os.path.exists(path):
            time.sleep(poll_s)
            continue
        with open(path, "r", encoding="utf-8") as fh:
            fh.seek(pos)
            chunk = fh.read()
            pos = fh.tell()
        if chunk:
            buf += chunk
            while "\n" in buf:
                line, buf = buf.split("\n", 1)
                line = line.strip()
                if line:
                    try:
                        yield json.loads(line)
                    except ValueError:
                        pass
        else:
            time.sleep(poll_s)


def run_dashboard(rows_iter: Iterable[Dict[str, Any]],
                  refresh_s: float = 0.25, width: int = 78,
                  out=None, history: int = 120,
                  max_frames: Optional[int] = None) -> int:
    """Consume *rows_iter*, redrawing an ANSI frame per refresh window.

    Returns the number of frames drawn. ``max_frames`` bounds the loop
    for tests and ``repro top --once``.
    """
    out = out or sys.stdout
    window: List[Dict[str, Any]] = []
    frames = 0
    last_draw = 0.0
    try:
        for row in rows_iter:
            window.append(row)
            if len(window) > history:
                window.pop(0)
            now = time.monotonic()
            if now - last_draw < refresh_s and (
                    max_frames is None or frames > 0):
                continue
            last_draw = now
            out.write("\x1b[H\x1b[2J" + render_frame(window, width) + "\n")
            out.flush()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                break
    except KeyboardInterrupt:
        pass
    return frames
