"""Central metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (ISSUE 4): instrumentation must be safe under the
concurrent-transaction paths from PR 2 without adding locks to hot
paths. Two techniques make that work:

- **Owned counters** use :func:`itertools.count` internally. ``next()``
  on a count object is a single C call, so a bump is atomic under the
  GIL — N threads incrementing concurrently never lose an update, and
  there is no lock to contend on. The current value is read without
  consuming a tick via the count's pickle protocol.
- **Sampled metrics** (:meth:`MetricsRegistry.counter_fn` /
  :meth:`MetricsRegistry.gauge_fn`) wrap the *existing* plain-int
  counters that storage components already bump under their own locks
  (buffer pool latch, lock-manager condition, WAL append path). The
  registry reads them lazily at snapshot time, so absorbing those stats
  costs zero extra work on the hot path.

Histograms keep per-bucket plain-int counts guarded by a per-histogram
lock: the updates are read-modify-write (not GIL-atomic), and since the
sharded parallel scan path observations can arrive from worker threads
that hold no component lock, so exactness needs the lock. It is
uncontended on single-threaded paths.
"""

from __future__ import annotations

import itertools
import re
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def _count_value(it) -> int:
    """Current value of an :func:`itertools.count` without consuming it."""
    return it.__reduce__()[1][0]


class Counter:
    """Monotonic counter with GIL-atomic increments."""

    __slots__ = ("name", "labels", "_it")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._it = itertools.count()

    def inc(self, n: int = 1) -> None:
        if n == 1:
            next(self._it)          # one C call: atomic under the GIL
        else:
            for _ in range(n):
                next(self._it)

    @property
    def value(self) -> int:
        return _count_value(self._it)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self._value = 0.0

    def set(self, value) -> None:
        self._value = value

    @property
    def value(self):
        return self._value


class Histogram:
    """Fixed-bucket histogram (upper bounds + implicit +Inf overflow).

    ``observe()`` takes a small per-histogram lock. The bucket/count/sum
    updates are read-modify-write on plain ints and floats — *not*
    GIL-atomic like ``Counter.inc`` — and since the sharded parallel
    scan path (ISSUE 8) observations arrive from pool worker threads
    that hold no component lock, so the old "call sites already hold a
    lock" contract no longer holds. The lock is uncontended on every
    single-threaded path and costs a few hundred ns when it is not.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "_lock")

    def __init__(self, name: str, buckets: Sequence[float],
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)   # last = +Inf
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value) -> None:
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.count += 1
            self.sum += value

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile by linear interpolation in-bucket.

        Observations are assumed uniformly distributed inside each
        bucket ``(lower, upper]``; the first bucket's lower edge is 0.
        Follows the ``histogram_quantile`` conventions: an empty
        histogram has no quantiles (``None``), and a target rank that
        lands in the +Inf overflow bucket reports the highest finite
        bound (the estimate cannot exceed what the buckets resolve).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        with self._lock:
            counts = list(self.counts)
            total = self.count
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.buckets, counts):
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        return self.buckets[-1] if self.buckets else None

    def percentiles(self, quantiles: Sequence[float] = (0.50, 0.90,
                                                        0.99, 0.999)):
        """``{"p50": ..., "p90": ...}`` for the given quantiles."""
        return {"p%g" % (100 * q): self.quantile(q) for q in quantiles}


class _Sampled:
    """A metric whose value is read from a callable at snapshot time."""

    __slots__ = ("name", "labels", "kind", "fn")

    def __init__(self, name: str, fn: Callable[[], float], kind: str,
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels or {})
        self.kind = kind            # "counter" or "gauge"
        self.fn = fn

    @property
    def value(self):
        return self.fn()


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Registry of named metrics under a dotted namespace.

    Creation (``counter("txn.aborts", reason="deadlock")``) is guarded by
    a small lock so two threads racing to create the same metric share
    one instance; bumping the returned object takes no lock at all.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    # -- creation / lookup ------------------------------------------------
    def _get_or_create(self, name, labels, factory):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory()
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(name, labels,
                                   lambda: Counter(name, labels))

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, labels,
                                   lambda: Gauge(name, labels))

    def histogram(self, name: str, buckets: Sequence[float],
                  **labels) -> Histogram:
        return self._get_or_create(name, labels,
                                   lambda: Histogram(name, buckets, labels))

    def counter_fn(self, name: str, fn: Callable[[], float],
                   **labels) -> None:
        """Register a counter whose value is sampled from *fn* lazily."""
        self._get_or_create(name, labels,
                            lambda: _Sampled(name, fn, "counter", labels))

    def gauge_fn(self, name: str, fn: Callable[[], float],
                 **labels) -> None:
        """Register a gauge whose value is sampled from *fn* lazily."""
        self._get_or_create(name, labels,
                            lambda: _Sampled(name, fn, "gauge", labels))

    # -- reads ------------------------------------------------------------
    def get(self, name: str):
        """Total value of *name* summed across all label sets."""
        total = 0
        found = False
        for (metric_name, _), metric in list(self._metrics.items()):
            if metric_name == name and not isinstance(metric, Histogram):
                total += metric.value
                found = True
        return total if found else None

    def snapshot(self) -> Dict[str, object]:
        """Flat ``{name or name{k="v"}: value}`` dict for tests/benchmarks.

        Histograms appear as ``{"count", "sum", "buckets"}`` sub-dicts.
        """
        out: Dict[str, object] = {}
        for (name, label_key), metric in sorted(self._metrics.items()):
            key = name
            if label_key:
                key += "{%s}" % ",".join('%s="%s"' % kv for kv in label_key)
            if isinstance(metric, Histogram):
                out[key] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": {str(b): c for b, c in
                                zip(metric.buckets, metric.counts)},
                    "p50": metric.quantile(0.50),
                    "p95": metric.quantile(0.95),
                    "p99": metric.quantile(0.99),
                }
            else:
                out[key] = metric.value
        return out

    def render_prometheus(self, prefix: str = "ode") -> str:
        return render_prometheus(self, prefix=prefix)

    def _by_name(self):
        grouped: Dict[str, List[object]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            grouped.setdefault(name, []).append(metric)
        return grouped


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(prefix: str, dotted: str) -> str:
    return (prefix + "_" + dotted).replace(".", "_")


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, str(v).replace('"', '\\"'))
                             for k, v in sorted(labels.items()))


def _prom_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    # Non-numeric gauges (e.g. durability mode) become an info-style
    # labeled constant handled by the caller; plain fallback here.
    return "0"


def render_prometheus(registry: MetricsRegistry, prefix: str = "ode") -> str:
    """Render the registry in Prometheus text exposition format v0.0.4."""
    lines: List[str] = []
    for name, metrics in registry._by_name().items():
        first = metrics[0]
        if isinstance(first, Histogram):
            base = _prom_name(prefix, name)
            lines.append("# HELP %s %s" % (base, name))
            lines.append("# TYPE %s histogram" % base)
            for hist in metrics:
                cumulative = 0
                for bound, count in zip(hist.buckets, hist.counts):
                    cumulative += count
                    labels = dict(hist.labels)
                    labels["le"] = ("%g" % bound)
                    lines.append("%s_bucket%s %d" % (base,
                                                     _prom_labels(labels),
                                                     cumulative))
                labels = dict(hist.labels)
                labels["le"] = "+Inf"
                lines.append("%s_bucket%s %d" % (base, _prom_labels(labels),
                                                 hist.count))
                lines.append("%s_sum%s %s" % (base, _prom_labels(hist.labels),
                                              _prom_value(hist.sum)))
                lines.append("%s_count%s %d" % (base,
                                                _prom_labels(hist.labels),
                                                hist.count))
            # Quantile estimates as a sibling gauge family (a histogram
            # family may only carry _bucket/_sum/_count samples).
            qlines: List[str] = []
            for hist in metrics:
                if hist.count == 0:
                    continue
                for q in (0.50, 0.95, 0.99):
                    labels = dict(hist.labels)
                    labels["q"] = "%g" % q
                    qlines.append("%s_quantile%s %s"
                                  % (base, _prom_labels(labels),
                                     _prom_value(float(hist.quantile(q)))))
            if qlines:
                lines.append("# HELP %s_quantile estimated quantiles of %s"
                             % (base, name))
                lines.append("# TYPE %s_quantile gauge" % base)
                lines.extend(qlines)
            continue
        is_counter = (isinstance(first, Counter)
                      or (isinstance(first, _Sampled)
                          and first.kind == "counter"))
        kind = "counter" if is_counter else "gauge"
        base = _prom_name(prefix, name)
        if is_counter and not base.endswith("_total"):
            base += "_total"
        lines.append("# HELP %s %s" % (base, name))
        lines.append("# TYPE %s %s" % (base, kind))
        for metric in metrics:
            value = metric.value
            if isinstance(value, str):
                # String-valued gauge → info-style constant with the
                # value carried in a label (e.g. WAL durability mode).
                labels = dict(metric.labels)
                labels["value"] = value
                lines.append("%s%s 1" % (base, _prom_labels(labels)))
            else:
                lines.append("%s%s %s" % (base, _prom_labels(metric.labels),
                                          _prom_value(value)))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# A tiny validating parser for the exposition format (used by tests and
# `python -m repro promlint`).
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<ts>-?\d+))?$")
_LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"')


class PromParseError(ValueError):
    """Raised by :func:`parse_prometheus` on malformed exposition text."""


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text format → ``{name: [(labels, value), ...]}``.

    Validates name syntax, label syntax, float values, and that TYPE
    lines precede their samples. Raises :class:`PromParseError` with a
    line number on the first problem.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if not _NAME_RE.match(parts[2]):
                    raise PromParseError(
                        "line %d: bad metric name %r in %s line"
                        % (lineno, parts[2], parts[1]))
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped"):
                        raise PromParseError(
                            "line %d: bad TYPE %r" % (lineno, line))
                    typed[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise PromParseError("line %d: unparseable sample %r"
                                 % (lineno, line))
        name = m.group("name")
        labels: Dict[str, str] = {}
        body = m.group("labels")
        if body:
            inner = body[1:-1].strip()
            if inner:
                pos = 0
                while pos < len(inner):
                    lm = _LABEL_RE.match(inner, pos)
                    if not lm:
                        raise PromParseError(
                            "line %d: bad label syntax %r"
                            % (lineno, inner[pos:]))
                    labels[lm.group("key")] = lm.group("val")
                    pos = lm.end()
                    if pos < len(inner):
                        if inner[pos] != ",":
                            raise PromParseError(
                                "line %d: expected ',' in labels %r"
                                % (lineno, inner))
                        pos += 1
        try:
            value = float(m.group("value"))
        except ValueError:
            raise PromParseError("line %d: bad value %r"
                                 % (lineno, m.group("value")))
        samples.setdefault(name, []).append((labels, value))
    # histogram families must have _bucket/_sum/_count samples
    for name, kind in typed.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if name + suffix not in samples:
                    raise PromParseError(
                        "histogram %s missing %s samples" % (name, suffix))
    return samples
