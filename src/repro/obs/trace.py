"""Per-operator spans for query tracing (``explain analyze``).

A :class:`Span` records what one plan operator did during a traced
execution: rows in/out, pages touched, cache hits, and wall time. The
query layer builds a small span tree per traced query (scan → join →
sort → limit) and :func:`render_trace` pretty-prints it.

Tracing is strictly opt-in: untraced queries never allocate a span, and
plan ``execute(span=None)`` paths keep their original bytecode when the
span is ``None``. The cost of tracing is paid only when asked for.
"""

from __future__ import annotations

import time
from typing import List, Optional


class Span:
    """One operator's measurements during a traced query."""

    __slots__ = ("op", "detail", "rows_in", "rows_out", "ns", "pages",
                 "cache_hits", "children")

    def __init__(self, op: str, detail: str = ""):
        self.op = op
        self.detail = detail
        self.rows_in = 0
        self.rows_out = 0
        self.ns = 0
        self.pages = 0
        self.cache_hits = 0
        self.children: List["Span"] = []

    def child(self, op: str, detail: str = "") -> "Span":
        span = Span(op, detail)
        self.children.append(span)
        return span

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "detail": self.detail,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "ns": self.ns,
            "pages": self.pages,
            "cache_hits": self.cache_hits,
            "children": [c.to_dict() for c in self.children],
        }


class _Measure:
    """Context manager charging wall time + IO deltas to a span."""

    __slots__ = ("tracer", "span", "_t0", "_pages0", "_hits0")

    def __init__(self, tracer: "QueryTracer", span: Span):
        self.tracer = tracer
        self.span = span

    def __enter__(self):
        self._pages0, self._hits0 = self.tracer._io_counters()
        self._t0 = time.perf_counter_ns()
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.span.ns += time.perf_counter_ns() - self._t0
        pages, hits = self.tracer._io_counters()
        self.span.pages += pages - self._pages0
        self.span.cache_hits += hits - self._hits0
        return False


class QueryTracer:
    """Builds the span tree for one traced query against a database.

    IO attribution samples the engine's existing counters (buffer pool
    pin hits/misses, page-cache hits, decoded-cache hits) before and
    after each measured stage; the deltas are charged to that stage's
    span. Stages must be materialized (not lazily interleaved) for the
    attribution to be meaningful — the query layer's traced paths do so.
    """

    __slots__ = ("db", "root")

    def __init__(self, db, op: str = "query", detail: str = ""):
        self.db = db
        self.root = Span(op, detail)

    def _io_counters(self):
        if self.db is None:  # tracing plain in-memory sources: no IO
            return 0, 0
        pool = self.db.store._pool
        pages = pool.hits + pool.misses
        hits = (pool.hits + self.db.store.page_cache_hits
                + self.db._decoded.hits)
        return pages, hits

    def measure(self, span: Span) -> _Measure:
        return _Measure(self, span)


def render_trace(root: Span, indent: str = "") -> List[str]:
    """Render a span tree as ``explain analyze`` text lines.

    Per-row averages guard against empty operators (an empty cluster
    yields ``rows=0``) — no division by zero, the average simply reads 0.
    """
    rows = root.rows_out
    avg_ns = (root.ns / rows) if rows else 0.0
    line = ("%s%s" % (indent, root.op))
    if root.detail:
        line += " [%s]" % root.detail
    line += (": rows=%d (in=%d) time=%.3fms pages=%d cache_hits=%d"
             % (rows, root.rows_in, root.ns / 1e6, root.pages,
                root.cache_hits))
    if rows:
        line += " avg=%.1fus/row" % (avg_ns / 1e3)
    lines = [line]
    for child in root.children:
        lines.extend(render_trace(child, indent + "  "))
    return lines
