"""Macro workload simulator: specs, driver, sampler, regression gate."""

import json
import threading

import pytest

from repro import Database
from repro.obs.workload import (BUILTIN_SCENARIOS, TimeSeriesSampler,
                                WorkloadDriver, compare_reports,
                                format_comparison, get_scenario,
                                load_scenario, load_timeline,
                                parse_scenario)
from repro.obs.workload.spec import ScenarioError
from repro.obs.metrics import MetricsRegistry


def tiny_spec(**overrides):
    base = {
        "name": "tiny",
        "dataset": {"items": 60},
        "duration_s": 0.4,
        "seed": 3,
        "clients": [
            {"count": 2, "mix": {"deref": 4, "update": 1, "pnew": 1}},
        ],
    }
    base.update(overrides)
    return parse_scenario(base)


class TestSpecParsing:
    def test_builtins_all_parse(self):
        for name in BUILTIN_SCENARIOS:
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.phases and spec.total_duration_s > 0

    def test_unknown_scenario_name(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("nope")

    def test_roundtrip_through_to_dict(self):
        spec = get_scenario("ingest_scan")
        again = parse_scenario(spec.to_dict())
        assert again.to_dict() == spec.to_dict()

    def test_scaled_and_with_duration(self):
        spec = get_scenario("oltp").scaled(0.5).with_duration(1.0)
        assert spec.dataset["items"] == 1000
        assert all(p.duration_s == 1.0 for p in spec.phases)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ScenarioError, match="scale factor"):
            get_scenario("oltp").scaled(0)

    def test_unknown_top_level_key(self):
        with pytest.raises(ScenarioError, match="unknown keys.*typo"):
            tiny_spec(typo=1)

    def test_unknown_operation(self):
        with pytest.raises(ScenarioError, match="unknown operation"):
            tiny_spec(clients=[{"count": 1, "mix": {"frobnicate": 1}}])

    def test_nonpositive_mix_weight(self):
        with pytest.raises(ScenarioError, match="weight"):
            tiny_spec(clients=[{"count": 1, "mix": {"deref": 0}}])

    def test_open_loop_requires_rate(self):
        with pytest.raises(ScenarioError, match="rate"):
            tiny_spec(clients=[{"count": 1, "mix": {"deref": 1},
                                "arrival": "poisson"}])

    def test_closed_loop_forbids_rate(self):
        with pytest.raises(ScenarioError, match="rate only applies"):
            tiny_spec(clients=[{"count": 1, "mix": {"deref": 1},
                                "rate": 10.0}])

    def test_phases_exclusive_with_shorthand(self):
        with pytest.raises(ScenarioError, match="not both"):
            parse_scenario({
                "name": "x", "duration_s": 1.0,
                "clients": [{"count": 1, "mix": {"deref": 1}}],
                "phases": [{"duration_s": 1.0,
                            "clients": [{"count": 1,
                                         "mix": {"deref": 1}}]}],
            })

    def test_unknown_dataset_key(self):
        with pytest.raises(ScenarioError, match="dataset"):
            tiny_spec(dataset={"widgets": 5})

    def test_unknown_param(self):
        with pytest.raises(ScenarioError, match="params"):
            tiny_spec(params={"nope": 1})

    def test_load_scenario_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(get_scenario("oltp").to_dict()))
        spec = load_scenario(str(path))
        assert spec.name == "oltp"

    def test_load_scenario_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ScenarioError):
            load_scenario(str(path))


class TestDriver:
    def test_end_to_end_report(self, db):
        spec = tiny_spec()
        driver = WorkloadDriver(db, spec)
        driver.setup()
        report = driver.run()
        assert report["ops"] > 0
        assert report["instrumented"] is True
        assert set(report["by_op"]) <= {"deref", "update", "pnew"}
        for op, row in report["latency_ms"].items():
            assert row["count"] > 0
            for key in ("p50", "p90", "p99", "p99.9", "mean"):
                assert key in row
            # Interpolated percentiles are monotone in q.
            assert row["p50"] <= row["p90"] <= row["p99"] <= row["p99.9"]
        assert report["metrics"]["txn.commits"] > 0

    def test_uninstrumented_runs_without_metrics(self, db):
        spec = tiny_spec()
        driver = WorkloadDriver(db, spec, instrument=False)
        driver.setup()
        report = driver.run()
        assert report["ops"] > 0
        assert report["instrumented"] is False
        assert report["latency_ms"] == {}
        snap = db.metrics.snapshot()
        assert not any(k.startswith("workload.") for k in snap)

    def test_setup_populates_dataset(self, db):
        spec = tiny_spec()
        driver = WorkloadDriver(db, spec)
        driver.setup()
        assert len(driver._refs["items"]) == 60
        assert driver._tokens          # initial snapshot token captured

    def test_open_loop_group_runs(self, db):
        spec = tiny_spec(clients=[
            {"count": 1, "mix": {"deref": 1}, "arrival": "fixed",
             "rate": 200.0}])
        driver = WorkloadDriver(db, spec)
        driver.setup()
        report = driver.run()
        # 0.4s at 200 ops/s scheduled: the client must have kept pace
        # within a loose bound (scheduling jitter, CI boxes).
        assert 20 <= report["ops"] <= 120


class TestSampler:
    def test_rates_from_counter_deltas(self, tmp_path):
        reg = MetricsRegistry()
        commits = reg.counter("txn.commits")
        path = str(tmp_path / "timeline.jsonl")
        sampler = TimeSeriesSampler(reg, interval_ms=10_000, path=path)
        sampler.start()         # interval huge: we drive ticks by hand
        commits.inc(30)
        row = sampler.sample_now()
        assert row["commit_s"] > 0
        assert row["ops_s"] == 0
        sampler.stop()
        rows = load_timeline(path)
        assert rows and rows[0]["tick"] == 0
        assert [r["tick"] for r in rows] == list(range(len(rows)))

    def test_windowed_percentiles_reflect_current_tick(self):
        reg = MetricsRegistry()
        hist = reg.histogram("workload.op_ns", [1e6, 1e9], op="deref")
        sampler = TimeSeriesSampler(reg, interval_ms=10_000)
        sampler._prev = reg.snapshot()
        hist.observe(5e5)       # fast op in tick 0
        row = sampler.sample_now()
        assert row["p50_ms"] is not None and row["p50_ms"] < 1.0
        hist.observe(5e8)       # slow op in tick 1
        row = sampler.sample_now()
        # Windowed: tick 1 sees only the slow observation.
        assert row["p50_ms"] > 1.0

    def test_abort_reasons_labeled(self):
        reg = MetricsRegistry()
        reg.counter("txn.aborts", reason="deadlock").inc(4)
        sampler = TimeSeriesSampler(reg, interval_ms=10_000)
        sampler._prev = {}
        row = sampler.sample_now()
        assert row["abort_s"] > 0
        assert any("deadlock" in k for k in row["aborts"])

    def test_no_ops_means_no_percentile(self):
        reg = MetricsRegistry()
        sampler = TimeSeriesSampler(reg, interval_ms=10_000)
        row = sampler.sample_now()
        assert row["p50_ms"] is None
        assert row["ops_s"] == 0


class TestCompare:
    def _report(self, p99s, ops_per_s=100.0):
        return {"ops_per_s": ops_per_s,
                "latency_ms": {op: {"p99": v} for op, v in p99s.items()}}

    def test_ok_within_limits(self):
        result = compare_reports(self._report({"deref": 1.0}),
                                 self._report({"deref": 1.1}))
        assert result["ok"]
        assert "OK" in format_comparison(result)

    def test_p99_regression_flagged(self):
        result = compare_reports(self._report({"deref": 1.0}),
                                 self._report({"deref": 2.0}),
                                 max_p99_regression_pct=25.0)
        assert not result["ok"]
        assert result["regressions"][0]["op"] == "deref"
        assert "REGRESSION" in format_comparison(result)

    def test_throughput_drop_flagged(self):
        result = compare_reports(self._report({}, ops_per_s=100.0),
                                 self._report({}, ops_per_s=50.0))
        assert not result["ok"]
        assert "throughput" in result["regressions"][0]["flag"]

    def test_new_op_not_flagged(self):
        result = compare_reports(self._report({}),
                                 self._report({"scan": 9.0}))
        assert result["ok"]
