"""Per-shard scan counters stay exact under concurrent scans (ISSUE 9).

The counters used to be plain-int list elements (`scans[sid] += 1`), a
read-modify-write that loses updates when parallel scan workers and
application threads bump the same shard concurrently. They are
itertools.count objects now (GIL-atomic bumps, same idiom as
obs.metrics.Counter); these tests pin the exactness.
"""

import threading

import pytest

from repro import Database, IntField, OdeObject, StringField
from repro.obs.metrics import _count_value


class ShardItem(OdeObject):
    name = StringField(default="")
    n = IntField(default=0)


@pytest.fixture
def sharded_db(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RECLUSTER", "0")   # no background moves
    db = Database(str(tmp_path / "sharded.odb"), shards=4)
    db.create(ShardItem, exist_ok=True)
    with db.transaction():
        for i in range(120):
            db.pnew(ShardItem, name="it%d" % i, n=i)
    yield db
    db.close()


def _scan_totals(db):
    return [_count_value(c) for c in db.store._shard_scans]


class TestShardScanCounters:
    def test_serial_scan_bumps_every_shard_once(self, sharded_db):
        before = _scan_totals(sharded_db)
        # Store-level scans yield raw records (version rows included),
        # so consume without asserting a logical object count.
        rows = sum(1 for _ in sharded_db.store.scan("ShardItem"))
        assert rows >= 120
        after = _scan_totals(sharded_db)
        assert [a - b for a, b in zip(after, before)] == [1, 1, 1, 1]

    def test_concurrent_scans_count_exactly(self, sharded_db):
        n_threads, n_scans = 8, 12
        before = _scan_totals(sharded_db)
        errors = []

        def worker():
            try:
                for _ in range(n_scans):
                    rows = sum(
                        1 for _ in sharded_db.store.scan("ShardItem"))
                    assert rows >= 120
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        after = _scan_totals(sharded_db)
        expected = n_threads * n_scans
        assert [a - b for a, b in zip(after, before)] == [expected] * 4

    def test_parallel_batch_scans_count_exactly(self, sharded_db):
        """The shard-parallel executor bumps from pool worker threads."""
        n_threads, n_scans = 4, 8
        before = _scan_totals(sharded_db)

        def worker():
            for _ in range(n_scans):
                total = sum(len(batch) for batch in
                            sharded_db.store.scan_batches("ShardItem"))
                assert total >= 120

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = _scan_totals(sharded_db)
        expected = n_threads * n_scans
        assert [a - b for a, b in zip(after, before)] == [expected] * 4

    def test_stats_and_metric_agree(self, sharded_db):
        list(sharded_db.store.scan("ShardItem"))
        per_shard = sharded_db.stats()["shards"]["scans"]
        assert per_shard == _scan_totals(sharded_db)
        assert sharded_db.metrics.get("shard.scans") == sum(per_shard)
