"""Dashboard rendering: golden frame, sparkline, tailing, ANSI loop."""

import io
import json
import threading

from repro.obs.workload.dashboard import (render_frame, run_dashboard,
                                          tail_rows)

ROWS = [
    {"tick": 0, "t": 0.1, "ops_s": 100.0, "commit_s": 40.0, "abort_s": 0.0,
     "aborts": {}, "in_flight": 1, "buffer_hit_pct": 99.0,
     "wal_syncs_s": 12.0, "conflicts_s": 0.0, "shard_scans": {},
     "events_dropped": 0, "errors_s": 0.0, "p50_ms": 1.0, "p99_ms": 4.0},
    {"tick": 1, "t": 0.2, "ops_s": 200.0, "commit_s": 80.0, "abort_s": 2.0,
     "aborts": {'reason="conflict"': 2.0}, "in_flight": 3,
     "buffer_hit_pct": 97.5, "wal_syncs_s": 20.0, "conflicts_s": 1.5,
     "shard_scans": {'shard="0"': 4, 'shard="1"': 5},
     "events_dropped": 7, "errors_s": 0.5, "p50_ms": 2.0, "p99_ms": 16.0},
]

GOLDEN = """\
 repro top                                                     t=0.20s  tick 1
──────────────────────────────────────────────────────────────────────────────
 ops/s 200.0        commit/s 80.00     abort/s 2.00       in-flight 3
 p50 2.00ms         p99 16.00ms        err/s 0.50         buf hit 97.50%
 wal sync/s 20.00         conflict/s 1.50          evt drop 7
 aborts by reason: reason="conflict"=2.00
 shard scans: 0:4 1:5
──────────────────────────────────────────────────────────────────────────────
 ops/s
 ▁█
 p99 ms
 ▁█"""


class TestRenderFrame:
    def test_golden_frame(self):
        assert render_frame(ROWS, width=78) == GOLDEN

    def test_empty_rows(self):
        frame = render_frame([], width=78)
        assert "waiting for samples" in frame

    def test_none_values_render_as_dash(self):
        rows = [dict(ROWS[0], p50_ms=None, p99_ms=None,
                     buffer_hit_pct=None)]
        frame = render_frame(rows, width=78)
        assert "p50 -" in frame
        assert "(no data)" in frame          # p99 sparkline has no points

    def test_sparkline_scales_to_range(self):
        rows = [dict(ROWS[0], ops_s=v) for v in (0, 50, 100)]
        frame = render_frame(rows, width=78)
        ops_line = frame.splitlines()[frame.splitlines().index(" ops/s") + 1]
        assert ops_line.strip() == "▁▄█"


class TestTailRows:
    def test_follows_appended_lines(self, tmp_path):
        path = str(tmp_path / "timeline.jsonl")
        with open(path, "w") as fh:
            for row in ROWS:
                fh.write(json.dumps(row) + "\n")
        stop = threading.Event()
        out = []
        for row in tail_rows(path, poll_s=0.01, stop=stop):
            out.append(row)
            if len(out) == len(ROWS):
                stop.set()
        assert [r["tick"] for r in out] == [0, 1]

    def test_skips_torn_line(self, tmp_path):
        path = str(tmp_path / "timeline.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps(ROWS[0]) + "\n")
            fh.write('{"torn": \n')
            fh.write(json.dumps(ROWS[1]) + "\n")
        stop = threading.Event()
        out = []
        for row in tail_rows(path, poll_s=0.01, stop=stop):
            out.append(row)
            if len(out) == 2:
                stop.set()
        assert [r["tick"] for r in out] == [0, 1]


class TestRunDashboard:
    def test_draws_ansi_frames(self):
        out = io.StringIO()
        frames = run_dashboard(iter(ROWS), refresh_s=0.0, out=out,
                               max_frames=2)
        assert frames == 2
        text = out.getvalue()
        assert text.count("\x1b[H\x1b[2J") == 2
        assert "repro top" in text
