"""CLI exposition: stats --format=json|prom, events, promlint."""

import json

import pytest

from repro.__main__ import main
from repro.core.database import Database
from repro.obs import parse_prometheus


@pytest.fixture
def seeded_path(db_path):
    db = Database(db_path)
    interp_source = """
    class gizmo { public: char* name; int qty; };
    create gizmo;
    pnew gizmo("a", 1);
    pnew gizmo("b", 2);
    """
    from repro.opp.interp import Interpreter
    Interpreter(db).run(interp_source)
    db.events.emit("slow_query", query="forall", detail="seed", ms=123.0,
                   rows=2)
    db.close()
    return db_path


class TestStatsFormats:
    def test_text_default(self, seeded_path, capsys):
        assert main(["stats", seeded_path]) == 0
        out = capsys.readouterr().out
        assert "buffer pool:" in out
        assert "WAL:" in out

    def test_json(self, seeded_path, capsys):
        assert main(["stats", seeded_path, "--format=json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        # canonical namespaces plus the compat alias
        for key in ("buffer", "buffer_pool", "wal", "plan_cache",
                    "locks", "txn", "clusters"):
            assert key in stats
        assert stats["buffer"] == stats["buffer_pool"]
        assert "hit_ratio" in stats["buffer"]

    def test_prom(self, seeded_path, capsys):
        assert main(["stats", seeded_path, "--format=prom"]) == 0
        text = capsys.readouterr().out
        families = parse_prometheus(text)
        # the acceptance criterion: buffer, WAL, lock, txn and plan-cache
        # metrics all present in valid exposition format
        for family in ("ode_buffer_hits_total", "ode_wal_appends_total",
                       "ode_lock_grants_total", "ode_txn_commits_total",
                       "ode_plan_cache_hits_total"):
            assert family in families, family


class TestEventsCommand:
    def test_events_lists_sidecar(self, seeded_path, capsys):
        assert main(["events", seeded_path]) == 0
        out = capsys.readouterr().out
        assert "slow_query" in out
        assert "ms=123.0" in out

    def test_events_limit(self, seeded_path, capsys):
        assert main(["events", seeded_path, "--limit", "1"]) == 0
        out = capsys.readouterr().out.strip()
        assert len(out.splitlines()) == 1

    def test_events_empty(self, db_path, capsys):
        Database(db_path).close()
        assert main(["events", db_path]) == 0
        assert "(no events)" in capsys.readouterr().out


class TestPromlint:
    def test_valid_file(self, tmp_path, seeded_path, capsys):
        assert main(["stats", seeded_path, "--format=prom"]) == 0
        text = capsys.readouterr().out
        prom = tmp_path / "metrics.prom"
        prom.write_text(text)
        assert main(["promlint", str(prom)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_invalid_file(self, tmp_path, capsys):
        prom = tmp_path / "bad.prom"
        prom.write_text("ode_x{le=} garbage\n")
        assert main(["promlint", str(prom)]) == 1
        assert "promlint:" in capsys.readouterr().err
