"""Remote workload mode: the scenario driver over a live TCP server."""

import pytest

from repro.core.database import Database
from repro.errors import OdeError
from repro.obs.workload.remote import REMOTE_OPS, RemoteWorkloadDriver
from repro.obs.workload.spec import get_scenario


@pytest.fixture
def served_db(tmp_path):
    from repro.server import OdeServer, ServerConfig
    db = Database(str(tmp_path / "wl.odb"))
    srv = OdeServer(db, ServerConfig(port=0)).start()
    yield db, srv
    srv.shutdown()
    db.close()


def small(name, duration=1.0, scale=0.05):
    spec = get_scenario(name).scaled(scale)
    return spec.with_duration(duration)


class TestRemoteDriver:
    def test_oltp_runs_and_reports(self, served_db):
        db, srv = served_db
        host, port = srv.address
        driver = RemoteWorkloadDriver(host, port, small("oltp"))
        try:
            driver.setup()
            report = driver.run()
        finally:
            driver.close()
        assert report["ops"] > 0
        assert report["ops_per_s"] > 0
        # Latencies are client-observed: histograms live in the driver's
        # own registry, not the server database's.
        assert report["latency_ms"]
        assert any("workload.op_ns" in k
                   for k in driver.db.metrics.snapshot())
        # The work really happened server-side.
        server_reqs = sum(v for k, v in db.metrics.snapshot().items()
                          if "server.requests" in k)
        assert server_reqs > report["ops"] / 2

    def test_ingest_scan_runs(self, served_db):
        db, srv = served_db
        host, port = srv.address
        driver = RemoteWorkloadDriver(host, port, small("ingest_scan"))
        try:
            driver.setup()
            report = driver.run()
        finally:
            driver.close()
        assert report["ops"] > 0
        assert report["errors"] <= report["ops"] * 0.1

    def test_churn_ops_rejected_up_front(self, served_db):
        _, srv = served_db
        host, port = srv.address
        with pytest.raises(OdeError, match="not supported in --remote"):
            RemoteWorkloadDriver(host, port, small("churn"))

    def test_remote_ops_catalogue(self):
        assert REMOTE_OPS == {"pnew", "update", "deref", "scan",
                              "ingest", "analyze"}
