"""MetricsRegistry: counters, gauges, histograms, Prometheus round-trip."""

import threading

import pytest

from repro.obs import (Counter, Histogram, MetricsRegistry, PromParseError,
                       parse_prometheus, render_prometheus)


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("txn.commits")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_labels_distinguish_instances(self):
        reg = MetricsRegistry()
        dead = reg.counter("txn.aborts", reason="deadlock")
        err = reg.counter("txn.aborts", reason="error")
        assert dead is not err
        dead.inc(2)
        err.inc()
        assert reg.get("txn.aborts") == 3
        assert reg.counter("txn.aborts", reason="deadlock").value == 2

    def test_get_missing_is_none(self):
        assert MetricsRegistry().get("no.such") is None

    def test_concurrent_increments_exact(self):
        """GIL-atomic bumps: no lost updates across threads."""
        reg = MetricsRegistry()
        c = reg.counter("hot")
        n_threads, n_incs = 8, 10_000

        def worker():
            for _ in range(n_incs):
                c.inc()

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * n_incs


class TestGaugesAndSampling:
    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("buffer.cached")
        g.set(42)
        assert g.value == 42

    def test_sampled_counter_reads_live_value(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.counter_fn("component.ticks", lambda: state["n"])
        assert reg.snapshot()["component.ticks"] == 0
        state["n"] = 7
        assert reg.snapshot()["component.ticks"] == 7


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", buckets=(10, 100, 1000))
        for v in (5, 10, 50, 500, 5000):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 5565
        assert h.counts == [2, 1, 1, 1]  # <=10, <=100, <=1000, +Inf

    def test_registry_histogram_in_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("wal.flush_batch_size", (1, 4, 16))
        h.observe(2)
        snap = reg.snapshot()["wal.flush_batch_size"]
        assert snap["count"] == 1
        assert snap["buckets"]["4"] == 1


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("buffer.hits").inc(10)
        reg.counter("txn.aborts", reason="deadlock").inc(2)
        reg.gauge("buffer.cached").set(5)
        reg.gauge_fn("wal.durability", lambda: "group")
        h = reg.histogram("lock.wait_ns", (100, 1000))
        h.observe(50)
        h.observe(5000)
        return reg

    def test_render_counter_total_suffix(self):
        text = render_prometheus(self._registry())
        assert "# TYPE ode_buffer_hits_total counter" in text
        assert "ode_buffer_hits_total 10" in text

    def test_render_labels(self):
        text = render_prometheus(self._registry())
        assert 'ode_txn_aborts_total{reason="deadlock"} 2' in text

    def test_render_string_gauge_as_labeled_constant(self):
        text = render_prometheus(self._registry())
        assert 'ode_wal_durability{value="group"} 1' in text

    def test_render_histogram_cumulative(self):
        text = render_prometheus(self._registry())
        assert 'ode_lock_wait_ns_bucket{le="100"} 1' in text
        assert 'ode_lock_wait_ns_bucket{le="1000"} 1' in text
        assert 'ode_lock_wait_ns_bucket{le="+Inf"} 2' in text
        assert "ode_lock_wait_ns_count 2" in text

    def test_roundtrip_through_parser(self):
        text = render_prometheus(self._registry())
        families = parse_prometheus(text)
        assert families["ode_buffer_hits_total"] == [({}, 10.0)]
        assert ({"reason": "deadlock"}, 2.0) in families["ode_txn_aborts_total"]
        assert "ode_lock_wait_ns_bucket" in families

    def test_parser_rejects_bad_sample(self):
        with pytest.raises(PromParseError):
            parse_prometheus("this is } not a metric line\n")

    def test_parser_rejects_bad_value(self):
        with pytest.raises(PromParseError):
            parse_prometheus("ode_x{a=\"b\"} notanumber\n")

    def test_parser_rejects_incomplete_histogram(self):
        with pytest.raises(PromParseError):
            parse_prometheus("# TYPE ode_h histogram\n"
                             "ode_h_bucket{le=\"+Inf\"} 1\n")


class TestQuantiles:
    """Histogram.quantile: in-bucket linear interpolation (ISSUE 9)."""

    def test_empty_histogram_has_no_quantile(self):
        h = Histogram("h", buckets=(10, 100))
        assert h.quantile(0.5) is None
        assert h.percentiles() == {"p50": None, "p90": None,
                                   "p99": None, "p99.9": None}

    def test_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(0, 100))
        for _ in range(100):
            h.observe(50)        # all in the (0, 100] bucket
        # rank 50 of 100 falls halfway through the bucket: 0 + 0.5*100.
        assert h.quantile(0.5) == 50.0
        assert h.quantile(0.25) == 25.0

    def test_single_bucket_all_mass(self):
        h = Histogram("h", buckets=(8,))
        h.observe(1)
        assert h.quantile(1.0) == 8.0          # top of the only bucket
        assert 0 < h.quantile(0.5) < 8.0

    def test_overflow_reports_highest_finite_bound(self):
        h = Histogram("h", buckets=(10, 100))
        h.observe(5000)          # +Inf overflow bucket
        assert h.quantile(0.99) == 100

    def test_monotone_in_q(self):
        h = Histogram("h", buckets=(10, 100, 1000, 10000))
        for v in (3, 9, 42, 850, 970, 4000, 9000, 20000):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)

    def test_rejects_out_of_range_q(self):
        h = Histogram("h", buckets=(10,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_snapshot_includes_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lock.wait_ns", (100, 1000))
        for _ in range(10):
            h.observe(500)
        snap = reg.snapshot()["lock.wait_ns"]
        assert 100 < snap["p50"] <= 1000
        assert snap["p99"] <= 1000

    def test_prom_quantile_family_renders_and_lints(self):
        reg = MetricsRegistry()
        h = reg.histogram("lock.wait_ns", (100, 1000))
        for _ in range(10):
            h.observe(500)
        reg.histogram("op.empty_ns", (100,))    # no samples: no quantiles
        text = render_prometheus(reg)
        assert 'ode_lock_wait_ns_quantile{q="0.5"}' in text
        assert 'ode_lock_wait_ns_quantile{q="0.99"}' in text
        assert "ode_op_empty_ns_quantile" not in text
        parse_prometheus(text)                  # promlint clean
