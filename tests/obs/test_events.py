"""EventLog: ring bounds, thresholds, sidecar persistence, engine events."""

import json

from repro.core.database import Database
from repro.obs import EventLog, load_events


class TestRing:
    def test_emit_and_snapshot(self):
        log = EventLog()
        log.emit("slow_query", detail="scan", ms=120.0)
        events = log.snapshot()
        assert len(events) == 1
        assert events[0]["kind"] == "slow_query"
        assert events[0]["data"]["ms"] == 120.0
        assert events[0]["seq"] == 1

    def test_capacity_bound(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        events = log.snapshot()
        assert len(events) == 4
        assert [e["data"]["i"] for e in events] == [6, 7, 8, 9]

    def test_kind_filter_and_limit(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b", n=2)
        log.emit("a", n=3)
        assert [e["data"]["n"] for e in log.snapshot(kind="a")] == [1, 3]
        assert [e["data"]["n"] for e in log.snapshot(limit=1)] == [3]

    def test_threshold_properties(self):
        log = EventLog(slow_query_ms=50.0, long_lock_wait_ms=10.0)
        assert log.slow_query_ns == 50e6
        assert log.long_lock_wait_ns == 10e6


class TestSidecar:
    def test_save_and_load(self, tmp_path):
        path = str(tmp_path / "db.odb.events")
        log = EventLog(capacity=8)
        log.emit("deadlock", victim=3)
        log.save(path)
        events = load_events(path)
        assert len(events) == 1
        assert events[0]["data"]["victim"] == 3

    def test_save_merges_and_truncates(self, tmp_path):
        path = str(tmp_path / "db.odb.events")
        first = EventLog(capacity=4)
        for i in range(3):
            first.emit("tick", i=i)
        first.save(path)
        second = EventLog(capacity=4)
        for i in range(3, 6):
            second.emit("tick", i=i)
        second.save(path)
        events = load_events(path)
        assert [e["data"]["i"] for e in events] == [2, 3, 4, 5]

    def test_load_skips_torn_lines(self, tmp_path):
        path = str(tmp_path / "torn.events")
        with open(path, "w") as fh:
            fh.write(json.dumps({"seq": 1, "ts": 0, "kind": "a",
                                 "data": {}}) + "\n")
            fh.write('{"seq": 2, "ts": 0, "kind"')  # crash mid-write
        assert len(load_events(path)) == 1


class TestEngineEvents:
    def test_slow_query_event_recorded(self, db):
        db.events.slow_query_ms = 0.0  # everything is "slow" now
        db._record_query("forall", "test scan", 5_000_000, 10)
        events = db.events.snapshot(kind="slow_query")
        assert len(events) == 1
        assert events[0]["data"]["ms"] == 5.0
        assert events[0]["data"]["rows"] == 10

    def test_fast_query_not_recorded(self, db):
        db.events.slow_query_ms = 1000.0
        db._record_query("forall", "test scan", 1_000, 10)
        assert db.events.snapshot(kind="slow_query") == []

    def test_close_persists_sidecar(self, db_path):
        db = Database(db_path)
        db.events.emit("vacuum", cluster="c", objects=1, pages_freed=0,
                       ms=1.0)
        db.close()
        events = load_events(db_path + ".events")
        assert any(e["kind"] == "vacuum" for e in events)

    def test_close_without_events_writes_no_sidecar(self, db_path):
        import os
        db = Database(db_path)
        db.close()
        assert not os.path.exists(db_path + ".events")


class TestDroppedCounter:
    def test_no_drops_below_capacity(self):
        log = EventLog(capacity=4)
        for i in range(4):
            log.emit("tick", i=i)
        assert log.dropped == 0

    def test_counts_ring_evictions(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert log.dropped == 6

    def test_database_exposes_dropped_metric(self, db):
        for i in range(db.events.capacity + 5):
            db.events.emit("tick", i=i)
        assert db.metrics.snapshot()["events.dropped"] == 5
        assert db.stats()["events"]["dropped"] == 5


class TestSidecarRotation:
    def _fat_log(self, n=16, payload=900):
        log = EventLog(capacity=64)
        for i in range(n):
            log.emit("storm", i=i, blob="x" * payload)
        return log

    def test_under_cap_no_rotation(self, tmp_path):
        path = str(tmp_path / "db.odb.events")
        log = self._fat_log(n=4)
        log.save(path)
        assert not (tmp_path / "db.odb.events.1").exists()
        assert len(load_events(path)) == 4

    def test_overflow_rotates_and_keeps_newest(self, tmp_path):
        path = str(tmp_path / "db.odb.events")
        log = self._fat_log(n=8)
        log.save(path, max_bytes=100_000)      # all 8 fit
        log2 = self._fat_log(n=8)
        log2.save(path, max_bytes=4000)        # ~4 events fit
        # Previous generation rotated aside for post-mortems.
        rotated = load_events(path + ".1")
        assert [e["data"]["i"] for e in rotated] == list(range(8))
        # New sidecar holds only the newest events that fit the cap.
        kept = load_events(path)
        assert kept
        assert sum(len(json.dumps(e)) for e in kept) <= 4200
        assert kept[-1]["data"]["i"] == 7
        assert all(e["data"]["i"] >= 4 for e in kept)

    def test_rotation_keeps_single_generation(self, tmp_path):
        path = str(tmp_path / "db.odb.events")
        for round_ in range(3):
            log = self._fat_log(n=8)
            log.save(path, max_bytes=4000)
        assert (tmp_path / "db.odb.events.1").exists()
        assert not (tmp_path / "db.odb.events.1.1").exists()
