"""Query tracing: spans, explain analyze, and the trace-off contract."""

import pytest

from repro import A, IntField, OdeObject, StringField, V, forall
from repro.obs import Span, render_trace


class Widget(OdeObject):
    name = StringField(default="")
    grade = IntField(default=0)


class Order(OdeObject):
    widget = StringField(default="")
    qty = IntField(default=0)


@pytest.fixture
def widget_db(db):
    db.create(Widget)
    db.create(Order)
    with db.transaction():
        for i in range(60):
            db.pnew(Widget, name="w%02d" % (i % 20), grade=i % 6)
        for i in range(30):
            db.pnew(Order, widget="w%02d" % (i % 10), qty=i)
    return db


class TestSpans:
    def test_child_nesting_and_to_dict(self):
        root = Span("forall", "1 source")
        scan = root.child("scan", "full scan")
        scan.rows_out = 5
        d = root.to_dict()
        assert d["op"] == "forall"
        assert d["children"][0]["rows_out"] == 5

    def test_render_empty_no_division(self):
        root = Span("forall")
        lines = render_trace(root)
        assert "rows=0" in lines[0]
        assert "avg=" not in lines[0]


class TestSingleSourceTrace:
    def test_trace_records_rows_pages_time(self, widget_db):
        q = widget_db.forall(Widget, trace=True).suchthat(A.grade < 3)
        rows = list(q)
        assert len(rows) == 30
        root = q.last_trace
        assert root is not None
        assert root.rows_out == 30
        assert root.rows_in == 60
        assert root.ns > 0
        scan = root.children[0]
        assert scan.op == "scan"
        assert scan.rows_in == 60 and scan.rows_out == 30

    def test_untraced_has_no_trace(self, widget_db):
        q = forall(widget_db.cluster(Widget)).suchthat(A.grade < 3)
        assert len(list(q)) == 30
        assert q.last_trace is None

    def test_explain_analyze_text(self, widget_db):
        q = widget_db.forall(Widget, trace=True).suchthat(
            A.grade < 3).by(A.name)
        text = q.explain(analyze=True)
        assert "analyze:" in text
        assert "rows=30" in text
        assert "time=" in text
        assert "pages=" in text
        assert "sort" in text

    def test_traced_results_match_untraced(self, widget_db):
        pred = A.grade == 2
        traced = [o.oid for o in
                  widget_db.forall(Widget, trace=True).suchthat(pred)]
        plain = [o.oid for o in
                 forall(widget_db.cluster(Widget)).suchthat(pred)]
        assert traced == plain

    def test_empty_cluster_no_div_zero(self, db):
        db.create(Widget)
        q = db.forall(Widget, trace=True).suchthat(A.grade < 3)
        assert list(q) == []
        text = q.explain(analyze=True)
        assert "rows=0" in text


class TestJoinTrace:
    def test_fused_join_spans(self, widget_db):
        q = widget_db.forall(Widget, Order, trace=True).suchthat(
            (V[0].name == V[1].widget) & (V[0].grade < 3))
        rows = list(q)
        assert rows
        root = q.last_trace
        ops = [c.op for c in root.children]
        assert any(op.startswith("scan") for op in ops)
        assert any("join" in op for op in ops)
        join = [c for c in root.children if "join" in c.op][0]
        assert join.rows_out == len(rows)

    def test_multi_join_explain_analyze(self, widget_db):
        q = widget_db.forall(Widget, Order, trace=True).suchthat(
            V[0].name == V[1].widget)
        text = q.explain(analyze=True)
        assert "analyze:" in text
        assert "hash join" in text
        assert "scan V[0]" in text and "scan V[1]" in text
        assert "time=" in text and "pages=" in text

    def test_nested_loop_trace(self, widget_db):
        q = widget_db.forall(Widget, Order, trace=True).suchthat(
            lambda w, o: w.name == o.widget)
        rows = list(q)
        assert q.last_trace.rows_out == len(rows)


class TestQueryMetrics:
    def test_traced_query_counted(self, widget_db):
        before = widget_db.metrics.get("query.count") or 0
        list(widget_db.forall(Widget, trace=True).suchthat(A.grade < 3))
        assert widget_db.metrics.get("query.count") == before + 1

    def test_plain_list_source_traces_without_db(self):
        q = forall([1, 2, 3, 4]).suchthat(lambda x: x > 2).trace()
        assert list(q) == [3, 4]
        assert q.last_trace.rows_out == 2
