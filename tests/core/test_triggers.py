"""Tests for triggers (paper section 6): once-only/perpetual, weak
coupling, timed triggers, deactivation, abort cascades."""

import pytest

from repro.core import (Database, IntField, OdeObject, StringField, Trigger)
from repro.errors import TriggerError

#: Trigger actions append here; module-level so the lambdas can reach it.
log = []


class Tank(OdeObject):
    name = StringField(default="")
    level = IntField(default=100)
    low_mark = IntField(default=20)

    def drain(self, n):
        self.level -= n

    def fill(self, n):
        self.level += n

    refill = Trigger(
        condition=lambda self, amount: self.level <= self.low_mark,
        action=lambda self, amount: log.append(("refill", self.name, amount)))

    watchdog = Trigger(
        condition=lambda self: self.level <= 0,
        action=lambda self: log.append(("empty", self.name)),
        perpetual=True)

    deadline_check = Trigger(
        condition=lambda self: self.level >= 1000,
        action=lambda self: log.append(("full", self.name)),
        within=lambda self: 10.0,
        timeout_action=lambda self: log.append(("timeout", self.name)))


@pytest.fixture(autouse=True)
def clear_log():
    log.clear()


@pytest.fixture
def tank_db(db):
    db.create(Tank)
    return db


class TestActivation:
    def test_activation_returns_id(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.refill(500)
        assert tid.is_active

    def test_volatile_object_rejected(self, tank_db):
        with pytest.raises(TriggerError):
            Tank().refill(1)

    def test_multiple_activations_same_trigger(self, tank_db):
        """The paper: several activations with different arguments."""
        t = tank_db.pnew(Tank, name="a")
        t.refill(100)
        t.refill(200)
        with tank_db.transaction():
            t.drain(90)  # level 10 <= 20: both fire
        assert sorted(log) == [("refill", "a", 100), ("refill", "a", 200)]

    def test_deactivate_before_firing(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.refill(100)
        assert tid.deactivate() is True
        assert tid.deactivate() is False  # already inactive
        with tank_db.transaction():
            t.drain(90)
        assert log == []


class TestFiring:
    def test_fires_at_end_of_transaction(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        t.refill(55)
        with tank_db.transaction():
            t.drain(90)
            assert log == []  # conceptually evaluated at txn end
        assert log == [("refill", "a", 55)]

    def test_condition_false_no_fire(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        t.refill(55)
        with tank_db.transaction():
            t.drain(10)
        assert log == []

    def test_once_only_deactivates(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.refill(55)
        with tank_db.transaction():
            t.drain(90)
        assert not tid.is_active
        log.clear()
        with tank_db.transaction():
            t.drain(5)  # still below the mark
        assert log == []  # did not re-fire

    def test_reactivation_after_firing(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        t.refill(55)
        with tank_db.transaction():
            t.drain(90)
        with tank_db.transaction():
            t.fill(50)  # back above the mark
        t.refill(77)  # explicit reactivation, as the paper requires
        log.clear()
        with tank_db.transaction():
            t.drain(50)
        assert log == [("refill", "a", 77)]

    def test_activation_fires_if_condition_already_true(self, tank_db):
        """'Conceptually, trigger conditions are evaluated at the end of
        each transaction' — including the activating one."""
        t = tank_db.pnew(Tank, name="a")
        with tank_db.transaction():
            t.drain(95)  # already below the mark
        t.refill(33)
        assert log == [("refill", "a", 33)]

    def test_perpetual_refires(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.watchdog()
        with tank_db.transaction():
            t.drain(150)
        with tank_db.transaction():
            t.drain(10)
        assert log == [("empty", "a"), ("empty", "a")]
        assert tid.is_active

    def test_trigger_on_deleted_object_dies(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.refill(5)
        tank_db.pdelete(t)
        with tank_db.transaction():
            pass
        assert not tid.is_active
        assert log == []


class TestWeakCoupling:
    def test_action_runs_as_independent_transaction(self, tank_db):
        """The action's effects are a separate transaction: aborting the
        action must not abort the (already committed) trigger."""
        db = tank_db

        class Pump(OdeObject):
            level = IntField(default=0)
            topup = Trigger(
                condition=lambda self: self.level < 10,
                action=lambda self: self.fill(1000))

            def fill(self, n):
                self.level += n

        db.create(Pump)
        p = db.pnew(Pump, level=5)
        p.topup()
        with db.transaction():
            p.fill(0)  # any txn: condition already true
        # Trigger action ran afterwards, in its own transaction:
        db._cache.clear()
        assert db.deref(p.oid).level == 1005

    def test_aborted_txn_discards_fired_actions(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.refill(55)
        with pytest.raises(RuntimeError):
            with tank_db.transaction():
                t.drain(90)   # condition would be true at commit
                raise RuntimeError("abort!")
        assert log == []          # action never ran
        assert tid.is_active      # deactivation rolled back too
        assert t.level == 100

    def test_cascading_triggers(self, tank_db):
        db = tank_db

        class Chain(OdeObject):
            n = IntField(default=0)
            step = Trigger(
                condition=lambda self: self.n < 3,
                action=lambda self: self.bump(),
                perpetual=True)

            def bump(self):
                self.n += 1

        db.create(Chain)
        c = db.pnew(Chain, n=0)
        c.step()
        with db.transaction():
            c.bump()  # n=1; trigger fires repeatedly until n == 3
        assert db.deref(c.oid).n >= 3


class TestTimedTriggers:
    def test_timeout_fires_after_deadline(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        tid = t.deadline_check()
        tank_db.advance_time(5.0)
        assert log == [] and tid.is_active
        tank_db.advance_time(6.0)  # past the 10s window
        assert log == [("timeout", "a")]
        assert not tid.is_active

    def test_condition_met_before_deadline(self, tank_db):
        t = tank_db.pnew(Tank, name="a")
        t.deadline_check()
        with tank_db.transaction():
            t.fill(2000)
        assert log == [("full", "a")]
        tank_db.advance_time(100.0)
        assert log == [("full", "a")]  # no timeout after success


class TestPersistence:
    def test_activations_survive_reopen(self, db_path):
        db = Database(db_path)
        db.create(Tank)
        t = db.pnew(Tank, name="a")
        t.refill(42)
        oid = t.oid
        db.close()

        db2 = Database(db_path)
        t2 = db2.deref(oid)
        with db2.transaction():
            t2.drain(90)
        assert log == [("refill", "a", 42)]
        db2.close()

    def test_clock_survives_reopen(self, db_path):
        db = Database(db_path)
        db.advance_time(123.0)
        db.close()
        db2 = Database(db_path)
        assert db2.now() == 123.0
        db2.close()
