"""Failure injection: errors at awkward moments must abort cleanly."""

import pytest

from repro.core import (IntField, OdeObject, SetField, StringField, Trigger,
                        constraint)
from repro.errors import SchemaError, TransactionError, TriggerActionError


class FragileItem(OdeObject):
    name = StringField(default="")
    n = IntField(default=0)
    links = SetField()


class TestFlushFailures:
    def test_unencodable_field_aborts_whole_txn(self, db):
        """A volatile object inside a persisted set cannot be stored; the
        flush fails and the entire transaction must roll back."""
        db.create(FragileItem)
        good = db.pnew(FragileItem, name="good", n=1)
        bad = db.pnew(FragileItem, name="bad")
        with pytest.raises(SchemaError):
            with db.transaction():
                good.n = 99               # valid change, same txn
                bad.links.insert(FragileItem(name="volatile"))
        # both changes rolled back
        db._cache.clear()
        assert db.deref(good.oid).n == 1
        assert len(db.deref(bad.oid).links) == 0
        assert db.verify() == []

    def test_partial_flush_rolls_back_flushed_objects(self, db):
        """If object A flushed before object B's flush raised, A's pages
        must still be undone by the abort."""
        db.create(FragileItem)
        objs = [db.pnew(FragileItem, name="o%d" % i, n=i) for i in range(5)]
        with pytest.raises(SchemaError):
            with db.transaction():
                for obj in objs:
                    obj.n += 100
                objs[-1].links.insert(FragileItem())  # poison the last
        db._cache.clear()
        for i, obj in enumerate(objs):
            assert db.deref(obj.oid).n == i

    def test_database_usable_after_failed_txn(self, db):
        db.create(FragileItem)
        obj = db.pnew(FragileItem, n=1)
        with pytest.raises(RuntimeError):
            with db.transaction():
                obj.n = 2
                raise RuntimeError("boom")
        # next transaction works normally
        with db.transaction():
            obj2 = db.deref(obj.oid)
            obj2.n = 3
        db._cache.clear()
        assert db.deref(obj.oid).n == 3


class TestTriggerFailures:
    def test_condition_error_aborts_triggering_txn(self, db):
        class Twitchy(OdeObject):
            n = IntField(default=0)
            # The condition divides by (n - 5): evaluates fine while the
            # object is healthy, raises exactly when n becomes 5.
            bad = Trigger(
                condition=lambda self: self.n / (self.n - 5) > 0,
                action=lambda self: None)

        db.create(Twitchy)
        obj = db.pnew(Twitchy)
        obj.bad()
        with pytest.raises(ZeroDivisionError):
            with db.transaction():
                obj.n = 5
        db._cache.clear()
        assert db.deref(obj.oid).n == 0  # the write was rolled back

    def test_action_error_propagates_but_triggering_txn_stays(self, db):
        class Jumpy(OdeObject):
            n = IntField(default=0)
            explode = Trigger(
                condition=lambda self: self.n > 0,
                action=lambda self: (_ for _ in ()).throw(
                    RuntimeError("action failed")))

        db.create(Jumpy)
        obj = db.pnew(Jumpy)
        obj.explode()
        with pytest.raises(TriggerActionError) as excinfo:
            with db.transaction():
                obj.n = 1
        # The per-action outcome carries the original error.
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert isinstance(failures[0][1], RuntimeError)
        # Weak coupling: the triggering transaction committed before the
        # action ran; the action's own transaction aborted.
        db._cache.clear()
        assert db.deref(obj.oid).n == 1
        assert db.verify() == []

    def test_constraint_error_treated_as_violation_path(self, db):
        class Crashy(OdeObject):
            n = IntField(default=0)

            def bump(self):
                self.n += 1

            @constraint
            def broken(self):
                raise ValueError("constraint code is buggy")

        db.create(Crashy)
        with pytest.raises(ValueError):
            db.pnew(Crashy)
        assert db.cluster(Crashy).count() == 0


class TestTransactionMisuse:
    def test_commit_after_close_rejected(self, db_path):
        from repro.core import Database
        db = Database(db_path)
        db.close()
        with pytest.raises(Exception):
            with db.transaction():
                pass

    def test_nested_implicit_inside_explicit_is_fine(self, db):
        db.create(FragileItem)
        with db.transaction():
            # pnew uses an implicit txn, which must join, not nest.
            obj = db.pnew(FragileItem, n=7)
        db._cache.clear()
        assert db.deref(obj.oid).n == 7
