"""Unit tests for the typed field descriptors."""

import pytest

from repro.core import (BoolField, CharField, DictField, FloatField,
                        IntField, ListField, OdeObject, OdeSet, RefField,
                        SetField, StringField)
from repro.core.oid import Oid
from repro.errors import SchemaError


class FieldWidget(OdeObject):
    name = StringField(default="unnamed", max_length=20)
    qty = IntField(default=0)
    price = FloatField(default=0.0)
    flag = BoolField(default=False)
    grade = CharField(default="a")
    tags = ListField()
    meta = DictField()
    parts = SetField()
    positive = IntField(default=1, check=lambda v: v > 0)


class FieldHolder(OdeObject):
    widget = RefField("FieldWidget")
    anything = RefField()


class TestDefaults:
    def test_declared_defaults(self):
        w = FieldWidget()
        assert w.name == "unnamed"
        assert w.qty == 0
        assert w.price == 0.0
        assert w.flag is False

    def test_container_defaults_fresh_per_instance(self):
        a, b = FieldWidget(), FieldWidget()
        a.tags.append("x")
        a.meta["k"] = 1
        a.parts.insert(1)
        assert b.tags == [] and b.meta == {} and len(b.parts) == 0

    def test_callable_default(self):
        class T(OdeObject):
            serial_no = IntField(default=lambda: 99)
        assert T().serial_no == 99


class TestValidation:
    def test_int_rejects_strings_and_bools(self):
        w = FieldWidget()
        with pytest.raises(SchemaError):
            w.qty = "ten"
        with pytest.raises(SchemaError):
            w.qty = True

    def test_float_widens_int(self):
        w = FieldWidget()
        w.price = 5
        assert w.price == 5.0 and isinstance(w.price, float)

    def test_string_max_length(self):
        w = FieldWidget()
        with pytest.raises(SchemaError):
            w.name = "x" * 21

    def test_char_single_character(self):
        w = FieldWidget()
        w.grade = "b"
        with pytest.raises(SchemaError):
            w.grade = "ab"

    def test_custom_check(self):
        w = FieldWidget()
        with pytest.raises(SchemaError):
            w.positive = -3

    def test_unknown_ctor_field(self):
        with pytest.raises(SchemaError):
            FieldWidget(nonexistent=1)

    def test_nullable(self):
        class T(OdeObject):
            required = StringField(nullable=False, default="x")
        t = T()
        with pytest.raises(SchemaError):
            t.required = None


class TestRefField:
    def test_accepts_oid(self):
        h = FieldHolder()
        h.widget = Oid("FieldWidget", 1)
        assert h.widget == Oid("FieldWidget", 1)

    def test_accepts_volatile_object(self):
        h = FieldHolder()
        w = FieldWidget()
        h.widget = w
        assert h.widget is w

    def test_rejects_wrong_target_class(self):
        h = FieldHolder()
        with pytest.raises(SchemaError):
            h.widget = FieldHolder()

    def test_rejects_wrong_cluster_oid(self):
        h = FieldHolder()
        with pytest.raises(SchemaError):
            h.widget = Oid("FieldHolder", 1)

    def test_subclass_satisfies_target(self):
        class FancyWidget(FieldWidget):
            pass
        h = FieldHolder()
        h.widget = FancyWidget()

    def test_untargeted_accepts_any(self):
        h = FieldHolder()
        h.anything = FieldWidget()
        h.anything = Oid("FieldHolder", 5)

    def test_rejects_non_object(self):
        h = FieldHolder()
        with pytest.raises(SchemaError):
            h.widget = 42

    def test_volatile_target_blocks_persist(self, db):
        db.create(FieldWidget)
        db.create(FieldHolder)
        h = FieldHolder()
        h.widget = FieldWidget()  # volatile target
        with pytest.raises(SchemaError):
            db.pnew_from(h)


class TestSetField:
    def test_coerces_iterables(self):
        w = FieldWidget()
        w.parts = [1, 2, 2, 3]
        assert isinstance(w.parts, OdeSet)
        assert len(w.parts) == 3

    def test_rejects_non_iterable(self):
        w = FieldWidget()
        with pytest.raises(SchemaError):
            w.parts = 42

    def test_rejects_none(self):
        w = FieldWidget()
        with pytest.raises(SchemaError):
            w.parts = None


class TestDirtyTracking:
    def test_assignment_marks_persistent_dirty(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w")
        with db.transaction():
            w.qty = 5
        assert db.deref(w.oid).qty == 5


class TestContainerDirtyTracking:
    """In-place container mutations persist without reassignment."""

    def test_set_insert_persists(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w")
        with db.transaction():
            w.parts.insert("gear")
            w.parts << "bolt"
        db._cache.clear()
        assert db.deref(w.oid).parts == {"gear", "bolt"}

    def test_set_remove_persists(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w", parts=["a", "b"])
        with db.transaction():
            w.parts.remove("a")
        db._cache.clear()
        assert db.deref(w.oid).parts == {"b"}

    def test_list_append_persists(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w")
        with db.transaction():
            w.tags.append("new")
            w.tags += ["more"]
        db._cache.clear()
        assert list(db.deref(w.oid).tags) == ["new", "more"]

    def test_list_setitem_and_sort_persist(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w", tags=["c", "a", "b"])
        with db.transaction():
            w.tags.sort()
        db._cache.clear()
        assert list(db.deref(w.oid).tags) == ["a", "b", "c"]

    def test_dict_mutations_persist(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w")
        with db.transaction():
            w.meta["k"] = 1
            w.meta.update(j=2)
        db._cache.clear()
        assert dict(db.deref(w.oid).meta) == {"k": 1, "j": 2}

    def test_reloaded_containers_still_tracked(self, db):
        db.create(FieldWidget)
        w = db.pnew(FieldWidget, name="w")
        with db.transaction():
            w.tags.append("first")
        db._cache.clear()
        reloaded = db.deref(w.oid)
        with db.transaction():
            reloaded.tags.append("second")
        db._cache.clear()
        assert list(db.deref(w.oid).tags) == ["first", "second"]

    def test_volatile_container_mutation_harmless(self):
        w = FieldWidget()
        w.tags.append("x")  # no database: must not raise
        w.parts.insert(1)
        w.meta["k"] = "v"
