"""Unit tests for OdeSet (the paper's set<type>, section 2.6/3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sets import OdeSet


class TestBasics:
    def test_insert_remove_contains(self):
        s = OdeSet()
        assert s.insert(1) is True
        assert s.insert(1) is False  # duplicate
        assert 1 in s
        assert s.remove(1) is True
        assert s.remove(1) is False
        assert 1 not in s

    def test_shift_operators(self):
        s = OdeSet()
        s << "a" << "b" << "a"
        assert len(s) == 2
        s >> "a"
        assert len(s) == 1 and "b" in s

    def test_init_from_iterable(self):
        s = OdeSet([3, 1, 2, 1])
        assert len(s) == 3

    def test_bool_and_len(self):
        assert not OdeSet()
        assert OdeSet([1])
        assert len(OdeSet(range(5))) == 5

    def test_clear(self):
        s = OdeSet([1, 2])
        s.clear()
        assert len(s) == 0

    def test_equality(self):
        assert OdeSet([1, 2]) == OdeSet([2, 1])
        assert OdeSet([1]) == {1}
        assert OdeSet([1]) != OdeSet([2])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(OdeSet())


class TestIteration:
    def test_insertion_order(self):
        s = OdeSet(["c", "a", "b"])
        assert list(s) == ["c", "a", "b"]

    def test_growth_during_iteration(self):
        """Section 3.2: iteration visits elements added during iteration."""
        s = OdeSet([0])
        seen = []
        for x in s:
            seen.append(x)
            if x < 10:
                s.insert(x + 1)
        assert seen == list(range(11))

    def test_removal_during_iteration(self):
        s = OdeSet([1, 2, 3, 4])
        seen = []
        for x in s:
            seen.append(x)
            s.remove(4)
        assert 4 not in seen

    def test_remove_reinsert_yields_once(self):
        s = OdeSet([1, 2, 3])
        seen = []
        for x in s:
            seen.append(x)
            if x == 1:
                s.remove(2)
                s.insert(2)
        assert seen.count(2) == 1

    def test_nested_iterations_independent(self):
        s = OdeSet([1, 2])
        pairs = [(a, b) for a in s for b in s]
        assert len(pairs) == 4


class TestAlgebra:
    def test_union(self):
        assert OdeSet([1, 2]) | OdeSet([2, 3]) == {1, 2, 3}

    def test_intersection(self):
        assert OdeSet([1, 2, 3]) & [2, 3, 4] == {2, 3}

    def test_difference(self):
        assert OdeSet([1, 2, 3]) - {2} == {1, 3}

    def test_snapshot_frozen(self):
        s = OdeSet([1, 2])
        snap = s.snapshot()
        s.insert(3)
        assert snap == {1, 2}


class TestProperties:
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=30))))
    @settings(max_examples=200)
    def test_matches_python_set(self, ops):
        ode, model = OdeSet(), set()
        for is_insert, x in ops:
            if is_insert:
                ode.insert(x)
                model.add(x)
            else:
                ode.remove(x)
                model.discard(x)
        assert ode == model
        assert sorted(ode) == sorted(model)
        assert len(ode) == len(model)
