"""Tests for the persistence model: pnew/pdelete/deref (paper section 2)."""

import pytest

from repro.core import (Database, IntField, OdeObject, Oid, RefField,
                        SetField, StringField)
from repro.errors import (ClusterExistsError, ClusterNotFoundError,
                          DanglingReferenceError, NotPersistentError,
                          SchemaError)


class StockPart(OdeObject):
    name = StringField(default="")
    qty = IntField(default=0)


class StockAssembly(OdeObject):
    name = StringField(default="")
    main_part = RefField("StockPart")
    parts = SetField("StockPart")


class TestCreateCluster:
    def test_pnew_requires_cluster(self, db):
        """Paper 2.5: the cluster must exist before pnew."""
        with pytest.raises(ClusterNotFoundError):
            db.pnew(StockPart, name="x")

    def test_create_twice_rejected(self, db):
        db.create(StockPart)
        with pytest.raises(ClusterExistsError):
            db.create(StockPart)

    def test_create_exist_ok(self, db):
        db.create(StockPart)
        db.create(StockPart, exist_ok=True)

    def test_create_by_name(self, db):
        db.create("StockPart")
        assert db.has_cluster(StockPart)

    def test_create_unknown_name(self, db):
        with pytest.raises(SchemaError):
            db.create("NoSuchClass")


class TestPnew:
    def test_pnew_returns_live_persistent(self, db):
        db.create(StockPart)
        p = db.pnew(StockPart, name="bolt", qty=3)
        assert p.is_persistent
        assert p.oid.cluster == "StockPart"
        assert p.name == "bolt"

    def test_pnew_from_volatile(self, db):
        db.create(StockPart)
        v = StockPart(name="was volatile")
        p = v.persist(db)
        assert p is v and p.is_persistent

    def test_pnew_twice_rejected(self, db):
        db.create(StockPart)
        p = db.pnew(StockPart)
        with pytest.raises(SchemaError):
            db.pnew_from(p)

    def test_serials_distinct(self, db):
        db.create(StockPart)
        oids = {db.pnew(StockPart).oid for _ in range(10)}
        assert len(oids) == 10

    def test_same_code_for_volatile_and_persistent(self, db):
        """Section 2.2's central promise."""
        db.create(StockPart)

        def restock(part, n):
            part.qty += n
            return part.qty

        vol, per = StockPart(qty=1), db.pnew(StockPart, qty=1)
        assert restock(vol, 5) == restock(per, 5) == 6


class TestDeref:
    def test_identity(self, db):
        """Repeated derefs return the same live object."""
        db.create(StockPart)
        p = db.pnew(StockPart, name="x")
        assert db.deref(p.oid) is p

    def test_deref_after_cache_eviction(self, db):
        db.create(StockPart)
        oid = db.pnew(StockPart, name="y", qty=9).oid
        db._cache.clear()  # simulate cache loss
        loaded = db.deref(oid)
        assert loaded.name == "y" and loaded.qty == 9

    def test_dangling(self, db):
        db.create(StockPart)
        with pytest.raises(DanglingReferenceError):
            db.deref(Oid("StockPart", 999))

    def test_deref_live_object_is_identity(self, db):
        db.create(StockPart)
        p = db.pnew(StockPart)
        assert db.deref(p) is p

    def test_follow_reference_field(self, db):
        db.create(StockPart)
        db.create(StockAssembly)
        bolt = db.pnew(StockPart, name="bolt")
        asm = db.pnew(StockAssembly, name="engine", main_part=bolt)
        # stored as an id, follow() dereferences
        reloaded = db.deref(asm.oid)
        assert reloaded.follow("main_part").name == "bolt"

    def test_follow_on_volatile_target(self, db):
        asm = StockAssembly()
        part = StockPart(name="loose")
        asm.main_part = part
        assert asm.follow("main_part") is part


class TestSetsOfReferences:
    def test_set_members_swizzled(self, db):
        db.create(StockPart)
        db.create(StockAssembly)
        parts = [db.pnew(StockPart, name="p%d" % i) for i in range(3)]
        asm = db.pnew(StockAssembly, name="kit")
        for p in parts:
            asm.parts.insert(p.oid)
        with db.transaction():
            asm.parts = asm.parts  # reassign to mark dirty
        reloaded = db.deref(asm.oid)
        names = sorted(db.deref(ref).name for ref in reloaded.parts)
        assert names == ["p0", "p1", "p2"]


class TestPdelete:
    def test_pdelete_object(self, db):
        db.create(StockPart)
        p = db.pnew(StockPart)
        oid = p.oid
        db.pdelete(p)
        assert not p.is_persistent  # live handle unbound
        with pytest.raises(DanglingReferenceError):
            db.deref(oid)

    def test_pdelete_by_oid(self, db):
        db.create(StockPart)
        oid = db.pnew(StockPart).oid
        db.pdelete(oid)
        with pytest.raises(DanglingReferenceError):
            db.deref(oid)

    def test_pdelete_missing(self, db):
        db.create(StockPart)
        with pytest.raises(DanglingReferenceError):
            db.pdelete(Oid("StockPart", 12345))

    def test_dangling_pointer_possible(self, db):
        """The paper acknowledges pdelete can create dangling pointers."""
        db.create(StockPart)
        db.create(StockAssembly)
        bolt = db.pnew(StockPart, name="bolt")
        asm = db.pnew(StockAssembly, main_part=bolt)
        oid = asm.oid
        db.pdelete(bolt)
        db._cache.clear()  # drop live objects; force reload from storage
        reloaded = db.deref(oid)
        with pytest.raises(DanglingReferenceError):
            reloaded.follow("main_part")


class TestDurability:
    def test_reopen_preserves_objects(self, db_path):
        db = Database(db_path)
        db.create(StockPart)
        oid = db.pnew(StockPart, name="durable", qty=7).oid
        db.close()

        db2 = Database(db_path)
        p = db2.deref(oid)
        assert p.name == "durable" and p.qty == 7
        db2.close()

    def test_unflushed_attribute_writes_flushed_on_close(self, db_path):
        db = Database(db_path)
        db.create(StockPart)
        p = db.pnew(StockPart, qty=1)
        oid = p.oid
        p.qty = 42  # outside any transaction
        db.close()  # close() flushes pending changes

        db2 = Database(db_path)
        assert db2.deref(oid).qty == 42
        db2.close()
