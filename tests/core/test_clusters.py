"""Tests for clusters: type extents and hierarchy iteration (2.5, 3.1.1)."""

import pytest

from repro.core import Database, FloatField, IntField, OdeObject, StringField


class UniPerson(OdeObject):
    name = StringField(default="")
    base = FloatField(default=10.0)

    def income(self):
        return self.base


class UniStudent(UniPerson):
    stipend = FloatField(default=5.0)

    def income(self):
        return self.base + self.stipend


class UniFaculty(UniPerson):
    salary = FloatField(default=50.0)

    def income(self):
        return self.base + self.salary


class UniTA(UniStudent):
    """Deeper level: UniTA derives from UniStudent derives from UniPerson."""
    hours = IntField(default=0)


@pytest.fixture
def uni(db):
    db.create(UniPerson)
    db.create(UniStudent)
    db.create(UniFaculty)
    db.create(UniTA)
    for i in range(6):
        db.pnew(UniPerson, name="p%d" % i)
    for i in range(4):
        db.pnew(UniStudent, name="s%d" % i)
    for i in range(3):
        db.pnew(UniFaculty, name="f%d" % i)
    for i in range(2):
        db.pnew(UniTA, name="t%d" % i)
    return db


class TestShallowIteration:
    def test_exact_extent_only(self, uni):
        names = sorted(p.name for p in uni.cluster(UniPerson))
        assert names == ["p0", "p1", "p2", "p3", "p4", "p5"]

    def test_counts(self, uni):
        assert uni.cluster(UniPerson).count() == 6
        assert uni.cluster(UniStudent).count() == 4
        assert uni.cluster(UniTA).count() == 2

    def test_iteration_yields_live_objects(self, uni):
        for p in uni.cluster(UniPerson):
            assert p.is_persistent and isinstance(p, UniPerson)

    def test_empty_cluster(self, db):
        db.create(UniPerson)
        assert list(db.cluster(UniPerson)) == []

    def test_nonexistent_cluster_iterates_empty(self, db):
        assert list(db.cluster(UniPerson)) == []


class TestDeepIteration:
    def test_hierarchy_names(self, uni):
        names = uni.cluster(UniPerson).hierarchy()
        assert names[0] == "UniPerson"
        assert set(names) == {"UniPerson", "UniStudent", "UniFaculty", "UniTA"}

    def test_deep_count(self, uni):
        assert uni.cluster(UniPerson).count(deep=True) == 15
        assert uni.cluster(UniStudent).count(deep=True) == 6

    def test_deep_iteration_virtual_dispatch(self, uni):
        """The paper's 3.1.1 income program: forall p in person*."""
        incomes = {}
        counts = {}
        for p in uni.cluster(UniPerson).deep():
            key = type(p).__name__
            incomes[key] = incomes.get(key, 0.0) + p.income()
            counts[key] = counts.get(key, 0) + 1
        assert counts == {"UniPerson": 6, "UniStudent": 4, "UniFaculty": 3, "UniTA": 2}
        assert incomes["UniFaculty"] == 3 * 60.0

    def test_is_type_narrowing(self, uni):
        """`p is persistent student*` -> isinstance(p, UniStudent)."""
        students = [p for p in uni.cluster(UniPerson).deep()
                    if isinstance(p, UniStudent)]
        assert len(students) == 6  # Students + TAs

    def test_deep_view_reiterable(self, uni):
        view = uni.cluster(UniPerson).deep()
        assert len(list(view)) == len(list(view)) == 15

    def test_oids_without_materialising(self, uni):
        oids = list(uni.cluster(UniPerson).oids(deep=True))
        assert len(oids) == 15
        assert all(o.cluster in ("UniPerson", "UniStudent", "UniFaculty", "UniTA")
                   for o in oids)


class TestGrowthDuringIteration:
    def test_insertions_visible_to_scan(self, db):
        """Section 3.2 applied to clusters."""
        db.create(UniPerson)
        db.pnew(UniPerson, name="seed")
        seen = []
        for p in db.cluster(UniPerson):
            seen.append(p.name)
            if len(seen) < 5:
                db.pnew(UniPerson, name="gen%d" % len(seen))
        assert len(seen) == 5

    def test_in_txn_updates_visible(self, db):
        db.create(UniPerson)
        p = db.pnew(UniPerson, name="old")
        with db.transaction():
            p.name = "new"
            names = [q.name for q in db.cluster(UniPerson)]
            assert names == ["new"]


class TestCatalogHierarchy:
    def test_hierarchy_survives_reopen(self, db_path):
        db = Database(db_path)
        db.create(UniTA)  # creates UniPerson, UniStudent too (ancestors)
        assert db.has_cluster(UniPerson)
        assert db.has_cluster(UniStudent)
        db.pnew(UniTA, name="t")
        db.close()

        db2 = Database(db_path)
        assert db2.cluster(UniPerson).count(deep=True) == 1
        assert db2.cluster(UniPerson).count() == 0
        db2.close()
