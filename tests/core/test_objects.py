"""Unit tests for OdeMeta / OdeObject: schema, inheritance, constraints."""

import pytest

from repro.core import (FloatField, IntField, OdeObject, StringField,
                        constraint)
from repro.core.objects import class_registry
from repro.errors import ConstraintViolation, NotPersistentError


class Human(OdeObject):
    name = StringField(default="")
    age = IntField(default=0)

    def income(self):
        return 0.0

    @constraint
    def age_nonneg(self):
        return self.age >= 0


class StaffMember(Human):
    salary = FloatField(default=0.0)

    def income(self):
        return self.salary

    @constraint
    def salary_nonneg(self):
        return self.salary >= 0


class Boss(StaffMember):
    bonus = FloatField(default=0.0)

    def income(self):
        return self.salary + self.bonus


class Sited(OdeObject):
    office = StringField(default="")


class SitedStaff(StaffMember, Sited):
    """Multiple inheritance: an employee with an office."""


class TestSchemaCollection:
    def test_fields_inherited(self):
        assert set(Boss._ode_fields) == {"name", "age", "salary", "bonus"}

    def test_multiple_inheritance_fields(self):
        assert set(SitedStaff._ode_fields) == {"name", "age", "salary",
                                              "office"}

    def test_registry(self):
        assert class_registry()["Human"] is Human
        assert class_registry()["SitedStaff"] is SitedStaff

    def test_parents_property(self):
        assert type(Boss).parents.fget(Boss) == [StaffMember]
        assert type(SitedStaff).parents.fget(SitedStaff) == [StaffMember, Sited]
        assert type(Human).parents.fget(Human) == []

    def test_virtual_dispatch(self):
        people = [Human(), StaffMember(salary=100.0), Boss(salary=100.0,
                                                            bonus=50.0)]
        assert [p.income() for p in people] == [0.0, 100.0, 150.0]


class TestConstraints:
    def test_constraints_inherited_and_conjoined(self):
        names = [n for n, _ in StaffMember._ode_constraints]
        assert "age_nonneg" in names and "salary_nonneg" in names

    def test_check_constraints_ok(self):
        StaffMember(age=5, salary=10.0).check_constraints()

    def test_violation_raises(self):
        e = StaffMember()
        e.__dict__["_f_age"] = -5  # bypass descriptor; simulate bad state
        with pytest.raises(ConstraintViolation) as info:
            e.check_constraints()
        assert info.value.constraint_name == "age_nonneg"

    def test_base_constraint_enforced_on_derived(self):
        m = Boss()
        m.__dict__["_f_salary"] = -1.0
        with pytest.raises(ConstraintViolation):
            m.check_constraints()

    def test_public_method_checks_constraints(self):
        class SpendBudget(OdeObject):
            total = IntField(default=10)

            def spend(self, n):
                self.total -= n

            @constraint
            def not_overspent(self):
                return self.total >= 0

        b = SpendBudget()
        b.spend(5)
        with pytest.raises(ConstraintViolation):
            b.spend(100)

    def test_constraint_based_specialization(self):
        """The paper's `class female : person { constraint: sex == 'f' }`."""
        from repro.core import CharField

        class Resident(OdeObject):
            sex = CharField(default="f")

        class FemaleResident(Resident):
            @constraint
            def is_female(self):
                return self.sex in ("f", "F")

        FemaleResident(sex="F").check_constraints()
        bad = FemaleResident()
        bad.__dict__["_f_sex"] = "m"
        with pytest.raises(ConstraintViolation):
            bad.check_constraints()


class TestVolatileLifecycle:
    def test_volatile_has_no_oid(self):
        p = Human()
        assert not p.is_persistent
        with pytest.raises(NotPersistentError):
            p.oid

    def test_as_dict(self):
        e = StaffMember(name="x", age=3, salary=9.0)
        assert e.as_dict() == {"name": "x", "age": 3, "salary": 9.0}

    def test_repr_smoke(self):
        assert "Human" in repr(Human(name="bob"))

    def test_isinstance_models_is_operator(self):
        """The paper's `p is persistent student*` maps to isinstance +
        is_persistent."""
        m = Boss()
        assert isinstance(m, Human)
        assert isinstance(m, StaffMember)
        assert not isinstance(Human(), Boss)
