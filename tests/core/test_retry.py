"""The shared retry policy: deterministic backoff, classification."""

import random

import pytest

from repro.errors import (DeadlockError, ServerOverloadedError,
                          SnapshotConflictError, StorageError,
                          TransientError, TransientIOError)
from repro.retry import DEFAULT_POLICY, RetryPolicy


class TestDelays:
    def test_deterministic_with_seeded_rng(self):
        a = RetryPolicy(base_delay=0.01, rng=random.Random(42))
        b = RetryPolicy(base_delay=0.01, rng=random.Random(42))
        assert [a.delay(n) for n in range(1, 8)] == \
               [b.delay(n) for n in range(1, 8)]

    def test_exponential_growth_within_jitter_band(self):
        policy = RetryPolicy(base_delay=0.01, cap=100.0,
                             rng=random.Random(7))
        for attempt in range(1, 6):
            nominal = 0.01 * 2 ** (attempt - 1)
            delay = policy.delay(attempt)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_cap_bounds_the_backoff(self):
        policy = RetryPolicy(base_delay=1.0, cap=2.0,
                             rng=random.Random(3))
        # Far past the cap, the jittered delay never exceeds 1.5 * cap.
        for attempt in (10, 20, 40):
            assert policy.delay(attempt) <= 2.0 * 1.5

    def test_distinct_seeds_diverge(self):
        a = RetryPolicy(rng=random.Random(1))
        b = RetryPolicy(rng=random.Random(2))
        assert [a.delay(n) for n in range(1, 6)] != \
               [b.delay(n) for n in range(1, 6)]


class TestCall:
    def _flaky(self, failures, exc_type):
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise exc_type("transient #%d" % state["calls"])
            return "ok"
        return fn, state

    def test_retries_transient_then_succeeds(self):
        slept = []
        policy = RetryPolicy(retries=3, base_delay=0.01,
                             rng=random.Random(0), sleep=slept.append)
        fn, state = self._flaky(2, DeadlockError)
        assert policy.call(fn) == "ok"
        assert state["calls"] == 3
        assert len(slept) == 2
        assert all(s > 0 for s in slept)

    def test_exhausted_attempts_raise_last_error(self):
        policy = RetryPolicy(retries=2, base_delay=0.001,
                             rng=random.Random(0), sleep=lambda _: None)
        fn, state = self._flaky(99, SnapshotConflictError)
        with pytest.raises(SnapshotConflictError):
            policy.call(fn)
        assert state["calls"] == 3  # 1 try + 2 retries

    def test_non_transient_raises_immediately(self):
        policy = RetryPolicy(retries=5, sleep=lambda _: None)
        fn, state = self._flaky(99, StorageError)
        with pytest.raises(StorageError):
            policy.call(fn)
        assert state["calls"] == 1

    def test_on_retry_hook_sees_each_attempt(self):
        seen = []
        policy = RetryPolicy(retries=3, base_delay=0.001,
                             rng=random.Random(0), sleep=lambda _: None)
        fn, _ = self._flaky(2, TransientIOError)
        policy.call(fn, on_retry=lambda attempt, exc: seen.append(
            (attempt, type(exc).__name__)))
        assert seen == [(1, "TransientIOError"), (2, "TransientIOError")]

    def test_custom_retry_on_filter(self):
        policy = RetryPolicy(retries=3, base_delay=0.001,
                             rng=random.Random(0), sleep=lambda _: None)
        fn, state = self._flaky(99, DeadlockError)
        # Narrow the filter to a class the error is not.
        with pytest.raises(DeadlockError):
            policy.call(fn, retry_on=ServerOverloadedError)
        assert state["calls"] == 1


class TestClassification:
    """The isinstance-based contract run_transaction and the network
    client rely on: transient means retry-worthy."""

    @pytest.mark.parametrize("exc_type", [
        DeadlockError, SnapshotConflictError, TransientIOError,
        ServerOverloadedError])
    def test_transient_types(self, exc_type):
        assert issubclass(exc_type, TransientError)

    def test_hard_errors_are_not_transient(self):
        from repro.errors import (ConnectionClosedError,
                                  DeadlineExceededError, OppSyntaxError)
        for exc_type in (StorageError, OppSyntaxError,
                         ConnectionClosedError, DeadlineExceededError):
            assert not issubclass(exc_type, TransientError)

    def test_default_policy_is_usable(self):
        assert DEFAULT_POLICY.retries >= 1
        assert DEFAULT_POLICY.delay(1) > 0


class TestDatabaseIntegration:
    def test_run_transaction_retries_transients(self, tmp_path):
        from repro.core.database import Database
        db = Database(str(tmp_path / "r.odb"))
        try:
            calls = {"n": 0}

            def body():
                calls["n"] += 1
                if calls["n"] < 3:
                    raise DeadlockError("induced")
                return "done"
            assert db.run_transaction(body, retries=4,
                                      backoff=0.001) == "done"
            assert calls["n"] == 3
        finally:
            db.close()

    def test_run_transaction_accepts_policy(self, tmp_path):
        from repro.core.database import Database
        db = Database(str(tmp_path / "p.odb"))
        try:
            slept = []
            policy = RetryPolicy(retries=5, base_delay=0.001,
                                 rng=random.Random(9),
                                 sleep=slept.append)
            calls = {"n": 0}

            def body():
                calls["n"] += 1
                if calls["n"] < 2:
                    raise SnapshotConflictError("induced")
                return 41 + 1
            assert db.run_transaction(body, policy=policy) == 42
            assert slept and calls["n"] == 2
        finally:
            db.close()
