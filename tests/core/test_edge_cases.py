"""Edge-case coverage across the object layer."""

import pytest

from repro.core import (Database, FloatField, IntField, OdeObject, Oid,
                        RefField, SetField, StringField, Vref, newversion)
from repro.core.objects import OdeMeta, class_registry
from repro.errors import DanglingReferenceError, SchemaError


class EdgeDoc(OdeObject):
    title = StringField(default="")
    rating = IntField(default=0)
    pinned_rev = RefField()  # may hold a Vref: a pinned version reference


class TestVrefFields:
    def test_field_can_pin_a_version(self, db):
        """A RefField holding a Vref dereferences to that exact version —
        the paper's 'specific reference' stored inside another object."""
        db.create(EdgeDoc)
        doc = db.pnew(EdgeDoc, title="spec v1")
        frozen = doc.vref
        newversion(doc)
        doc.title = "spec v2"

        keeper = db.pnew(EdgeDoc, title="audit", pinned_rev=frozen)
        with db.transaction():
            pass
        db._cache.clear()
        db._vcache.clear()
        reloaded = db.deref(keeper.oid)
        pinned = reloaded.follow("pinned_rev")
        assert pinned.title == "spec v1"
        assert isinstance(reloaded.pinned_rev, Vref)

    def test_pinned_version_deleted_dangles(self, db):
        db.create(EdgeDoc)
        doc = db.pnew(EdgeDoc, title="v1")
        frozen = doc.vref
        newversion(doc)
        keeper = db.pnew(EdgeDoc, title="audit", pinned_rev=frozen)
        db.pdelete(frozen)  # prune the pinned revision
        db._cache.clear()
        db._vcache.clear()
        with pytest.raises(DanglingReferenceError):
            db.deref(keeper.oid).follow("pinned_rev")


class TestSchemaEvolutionTolerance:
    """Objects written under an old class definition still load."""

    def _make_class(self, fields):
        namespace = {"__doc__": "generated"}
        namespace.update(fields)
        return OdeMeta("Evolving", (OdeObject,), namespace)

    def test_added_field_gets_default(self, db_path):
        v1 = self._make_class({"a": IntField(default=1)})
        db = Database(db_path)
        db.create(v1)
        oid = db.pnew(v1, a=10).oid
        db.close()

        v2 = self._make_class({"a": IntField(default=1),
                               "b": StringField(default="fresh")})
        db2 = Database(db_path)
        obj = db2.deref(oid)
        assert obj.a == 10
        assert obj.b == "fresh"  # missing in storage: default applies
        db2.close()

    def test_removed_field_ignored(self, db_path):
        v1 = self._make_class({"a": IntField(default=1),
                               "gone": StringField(default="x")})
        db = Database(db_path)
        db.create(v1)
        oid = db.pnew(v1, a=5, gone="stored").oid
        db.close()

        v2 = self._make_class({"a": IntField(default=1)})
        db2 = Database(db_path)
        obj = db2.deref(oid)
        assert obj.a == 5
        assert not hasattr(type(obj), "gone") or "gone" not in \
            type(obj)._ode_fields
        db2.close()


class TestNoneValuedIndexKeys:
    def test_index_handles_none(self, db):
        from repro import A, forall
        db.create(EdgeDoc)
        db.create_index(EdgeDoc, "pinned_rev", kind="btree")
        with_ref = db.pnew(EdgeDoc, title="has")
        with_ref.pinned_rev = Oid("EdgeDoc", with_ref.oid.serial)
        db.pnew(EdgeDoc, title="without")  # pinned_rev is None
        with db.transaction():
            pass
        nones = forall(db.cluster(EdgeDoc)).suchthat(A.pinned_rev == None)  # noqa: E711
        assert {d.title for d in nones} == {"without"}
        assert db.verify() == []


class TestMultiDatabaseIsolation:
    def test_two_databases_one_process(self, tmp_path):
        db1 = Database(str(tmp_path / "one.odb"))
        db2 = Database(str(tmp_path / "two.odb"))
        db1.create(EdgeDoc)
        db2.create(EdgeDoc)
        a = db1.pnew(EdgeDoc, title="in-one")
        b = db2.pnew(EdgeDoc, title="in-two")
        assert db1.cluster(EdgeDoc).count() == 1
        assert db2.cluster(EdgeDoc).count() == 1
        assert db1.deref(a.oid).title == "in-one"
        assert db2.deref(b.oid).title == "in-two"
        # ids are per-database: db2 knows nothing about db1's object state
        assert db2.deref(Oid("EdgeDoc", a.oid.serial)).title == "in-two"
        db1.close()
        db2.close()


class TestReprAndIntrospection:
    def test_database_repr(self, db):
        assert "Database" in repr(db)

    def test_oid_usable_as_dict_key_in_fields(self, db):
        from repro.core import DictField

        class Mapped(OdeObject):
            links = DictField()

        db.create(Mapped)
        target = db.pnew(Mapped)
        holder = db.pnew(Mapped)
        holder.links[target.oid] = "friend"
        with db.transaction():
            pass
        db._cache.clear()
        reloaded = db.deref(holder.oid)
        assert reloaded.links[target.oid] == "friend"

    def test_class_redefinition_latest_wins(self):
        first = OdeMeta("Redefined", (OdeObject,),
                        {"x": IntField(default=1)})
        second = OdeMeta("Redefined", (OdeObject,),
                         {"x": IntField(default=2)})
        assert class_registry()["Redefined"] is second


class TestLargeObjects:
    def test_multi_page_object_state(self, db):
        class Blobby(OdeObject):
            data = StringField(default="")

        db.create(Blobby)
        big = "payload-" * 5000  # ~40 KB, spans overflow pages
        obj = db.pnew(Blobby, data=big)
        db._cache.clear()
        assert db.deref(obj.oid).data == big
        with db.transaction():
            obj2 = db.deref(obj.oid)
            obj2.data = big * 2
        db._cache.clear()
        assert len(db.deref(obj.oid).data) == len(big) * 2
        assert db.verify() == []

    def test_many_fields(self, db):
        namespace = {("f%02d" % i): IntField(default=i) for i in range(64)}
        Wide = OdeMeta("WideRow", (OdeObject,), namespace)
        db.create(Wide)
        obj = db.pnew(Wide)
        db._cache.clear()
        reloaded = db.deref(obj.oid)
        assert reloaded.f63 == 63 and reloaded.f00 == 0
