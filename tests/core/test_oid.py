"""Unit tests for object identity (Oid/Vref)."""

import pytest

from repro.core.oid import Oid, Vref


class TestOid:
    def test_equality_and_hash(self):
        assert Oid("Person", 1) == Oid("Person", 1)
        assert Oid("Person", 1) != Oid("Person", 2)
        assert Oid("Person", 1) != Oid("Student", 1)
        assert hash(Oid("P", 3)) == hash(Oid("P", 3))

    def test_immutable(self):
        oid = Oid("Person", 1)
        with pytest.raises(AttributeError):
            oid.serial = 2

    def test_usable_in_sets_and_dicts(self):
        refs = {Oid("P", 1), Oid("P", 2), Oid("P", 1)}
        assert len(refs) == 2

    def test_repr(self):
        assert "Person" in repr(Oid("Person", 42))


class TestVref:
    def test_distinct_from_oid(self):
        assert Vref("P", 1, 1) != Oid("P", 1)
        assert hash(Vref("P", 1, 1)) != hash(Oid("P", 1))

    def test_version_matters(self):
        assert Vref("P", 1, 1) != Vref("P", 1, 2)

    def test_oid_property(self):
        assert Vref("P", 7, 3).oid == Oid("P", 7)

    def test_immutable(self):
        vref = Vref("P", 1, 1)
        with pytest.raises(AttributeError):
            vref.version = 5
