"""Tests for Database-level maintenance: vacuum, verify, schema."""

import pytest

from repro.core import (Database, IntField, OdeObject, StringField, Trigger,
                        constraint, newversion)


class MArticle(OdeObject):
    title = StringField(default="")
    views = IntField(default=0)

    def bump(self):
        self.views += 1

    @constraint
    def views_nonneg(self):
        return self.views >= 0

    popular = Trigger(condition=lambda self: self.views > 100,
                      action=lambda self: None)


class MComment(MArticle):
    body = StringField(default="")


class TestVacuum:
    def test_vacuum_single_cluster(self, db):
        db.create(MArticle)
        arts = [db.pnew(MArticle, title="a%d" % i) for i in range(60)]
        for art in arts[::2]:
            db.pdelete(art)
        report = db.vacuum(MArticle)
        assert report["MArticle"]["objects"] == 60  # 30 heads + 30 states
        assert db.cluster(MArticle).count() == 30

    def test_vacuum_all(self, db):
        db.create(MComment)
        db.pnew(MArticle, title="x")
        db.pnew(MComment, title="y", body="z")
        reports = db.vacuum()
        assert set(reports) == {"MArticle", "MComment"}

    def test_vacuum_flushes_pending(self, db):
        db.create(MArticle)
        art = db.pnew(MArticle, title="before")
        art.title = "after"  # unflushed
        db.vacuum(MArticle)
        db._cache.clear()
        assert db.deref(art.oid).title == "after"

    def test_vacuum_preserves_versions(self, db):
        db.create(MArticle)
        art = db.pnew(MArticle, title="v1")
        old = art.vref
        newversion(art)
        art.title = "v2"
        db.vacuum(MArticle)
        assert db.deref(old).title == "v1"
        assert db.deref(art.oid).title == "v2"

    def test_queries_work_after_vacuum(self, db):
        from repro import A, forall
        db.create(MArticle)
        db.create_index(MArticle, "views", kind="btree")
        for i in range(40):
            db.pnew(MArticle, title="t%d" % i, views=i)
        db.vacuum(MArticle)
        q = forall(db.cluster(MArticle)).suchthat(A.views >= 35)
        assert q.count() == 5
        assert "range-scan" in q.explain()


class TestVerify:
    def test_clean_database(self, db):
        db.create(MComment)
        art = db.pnew(MArticle, title="x")
        newversion(art)
        db.pnew(MComment, title="y")
        assert db.verify() == []

    def test_after_churn_and_vacuum(self, db):
        db.create(MArticle)
        arts = [db.pnew(MArticle, title="a%d" % i) for i in range(30)]
        for art in arts[::3]:
            db.pdelete(art)
        for art in arts[1::3]:
            newversion(art)
        db.vacuum()
        assert db.verify() == []

    def test_detects_corrupt_head(self, db):
        db.create(MArticle)
        art = db.pnew(MArticle, title="x")
        serial = art.oid.serial
        # Corrupt the head record directly through the store.
        with db._implicit_txn() as txn:
            db.store.put(txn, "MArticle", (serial, 0),
                         {"__key": [serial, 0], "current": 99,
                          "chain": [1]})
        problems = db.verify()
        assert any("current version 99" in p for p in problems)


class TestSchema:
    def test_describes_clusters(self, db):
        db.create(MComment)
        db.create_index(MArticle, "views", kind="btree")
        db.pnew(MArticle, title="x")
        schema = db.schema()
        art = schema["MArticle"]
        assert art["fields"]["title"] == "StringField"
        assert art["constraints"] == ["views_nonneg"]
        assert art["triggers"] == ["popular"]
        assert art["indexes"] == {"views": "btree"}
        assert art["objects"] == 1
        assert schema["MComment"]["parents"] == ["MArticle"]
        assert "body" in schema["MComment"]["fields"]


class TestUniqueIndexes:
    def test_duplicate_pnew_aborts(self, db):
        from repro.errors import DuplicateKeyError
        db.create(MArticle)
        db.create_index(MArticle, "title", kind="hash", unique=True)
        db.pnew(MArticle, title="unique-one")
        with pytest.raises(DuplicateKeyError):
            db.pnew(MArticle, title="unique-one")
        # The failed pnew rolled back: only one object, index consistent.
        assert db.cluster(MArticle).count() == 1
        assert db.verify() == []

    def test_duplicate_update_aborts_txn(self, db):
        from repro.errors import DuplicateKeyError
        db.create(MArticle)
        db.create_index(MArticle, "title", kind="btree", unique=True)
        a = db.pnew(MArticle, title="first")
        b = db.pnew(MArticle, title="second")
        with pytest.raises(DuplicateKeyError):
            with db.transaction():
                b.title = "first"
        assert db.deref(b.oid).title == "second"
        assert db.verify() == []

    def test_update_to_fresh_value_allowed(self, db):
        db.create(MArticle)
        db.create_index(MArticle, "title", kind="hash", unique=True)
        a = db.pnew(MArticle, title="old")
        with db.transaction():
            a.title = "new"
        db.pnew(MArticle, title="old")  # freed by the rename
        assert db.verify() == []
