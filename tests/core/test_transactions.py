"""Tests for transactions: commit, abort, constraint-driven rollback."""

import pytest

from repro.core import Database, IntField, OdeObject, StringField, constraint
from repro.errors import ConstraintViolation, TransactionError


class Account(OdeObject):
    owner = StringField(default="")
    balance = IntField(default=0)

    def withdraw(self, n):
        self.balance -= n

    def deposit(self, n):
        self.balance += n

    @constraint
    def solvent(self):
        return self.balance >= 0


class TestCommit:
    def test_commit_persists(self, db):
        db.create(Account)
        a = db.pnew(Account, owner="ann", balance=100)
        with db.transaction():
            a.deposit(50)
        db._cache.clear()
        assert db.deref(a.oid).balance == 150

    def test_multiple_objects_one_txn(self, db):
        db.create(Account)
        a = db.pnew(Account, owner="a", balance=100)
        b = db.pnew(Account, owner="b", balance=0)
        with db.transaction():
            a.withdraw(30)
            b.deposit(30)
        db._cache.clear()
        assert db.deref(a.oid).balance == 70
        assert db.deref(b.oid).balance == 30

    def test_no_nesting(self, db):
        with pytest.raises(TransactionError):
            with db.transaction():
                with db.transaction():
                    pass


class TestAbort:
    def test_exception_aborts(self, db):
        db.create(Account)
        a = db.pnew(Account, balance=100)
        with pytest.raises(RuntimeError):
            with db.transaction():
                a.deposit(999)
                raise RuntimeError("user error")
        assert a.balance == 100  # live object reverted
        db._cache.clear()
        assert db.deref(a.oid).balance == 100

    def test_abort_restores_pnew(self, db):
        db.create(Account)
        created = []
        with pytest.raises(RuntimeError):
            with db.transaction():
                created.append(db.pnew(Account, owner="ghost"))
                raise RuntimeError()
        ghost = created[0]
        assert not ghost.is_persistent  # unbound back to volatile
        assert db.cluster(Account).count() == 0

    def test_abort_restores_pdelete(self, db):
        db.create(Account)
        a = db.pnew(Account, owner="keep", balance=5)
        oid = a.oid
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.pdelete(a)
                raise RuntimeError()
        restored = db.deref(oid)
        assert restored.owner == "keep" and restored.balance == 5

    def test_constraint_violation_aborts_whole_txn(self, db):
        """Paper section 5 / footnote 17: violation aborts and rolls back."""
        db.create(Account)
        a = db.pnew(Account, balance=100)
        b = db.pnew(Account, balance=100)
        with pytest.raises(ConstraintViolation):
            with db.transaction():
                b.deposit(1000)       # fine, but must also roll back
                a.withdraw(500)       # violates `solvent` at method end
        assert a.balance == 100
        assert b.balance == 100

    def test_violation_at_commit_time(self, db):
        """A plain attribute write is only checked at commit — and the
        commit must abort."""
        db.create(Account)
        a = db.pnew(Account, balance=10)
        with pytest.raises(ConstraintViolation):
            with db.transaction():
                a.balance = -5  # no method call; caught at commit
        assert db.deref(a.oid).balance == 10

    def test_violation_outside_txn_reverts_object(self, db):
        db.create(Account)
        a = db.pnew(Account, balance=10)
        with pytest.raises(ConstraintViolation):
            a.withdraw(100)
        assert a.balance == 10

    def test_pnew_constraint_checked(self, db):
        db.create(Account)
        with pytest.raises(ConstraintViolation):
            db.pnew(Account, balance=-1)
        assert db.cluster(Account).count() == 0


class TestAutocommit:
    def test_operations_outside_txn_autocommit(self, db_path):
        db = Database(db_path)
        db.create(Account)
        a = db.pnew(Account, owner="auto", balance=1)  # implicit txn
        oid = a.oid
        db.close()
        db2 = Database(db_path)
        assert db2.deref(oid).owner == "auto"
        db2.close()

    def test_close_inside_txn_rejected(self, db):
        with db.transaction():
            with pytest.raises(TransactionError):
                db.close()
