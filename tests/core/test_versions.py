"""Tests for object versioning (paper section 4)."""

import pytest

from repro.core import (Database, FloatField, OdeObject, StringField, Vref,
                        newversion, versions, vfirst, vlast, vnext, vprev)
from repro.errors import (DanglingReferenceError, NotPersistentError,
                          VersionError)


class Design(OdeObject):
    name = StringField(default="")
    spec = StringField(default="")
    rev = FloatField(default=0.0)


@pytest.fixture
def design_db(db):
    db.create(Design)
    return db


class TestNewVersion:
    def test_pnew_starts_at_version_one(self, design_db):
        d = design_db.pnew(Design, name="chip")
        assert d.version == 1
        assert design_db.versions(d) == [d.vref]

    def test_newversion_bumps_current(self, design_db):
        d = design_db.pnew(Design, name="chip", rev=1.0)
        v2 = newversion(d)
        assert d.version == 2
        assert v2 == Vref("Design", d.oid.serial, 2)

    def test_old_version_keeps_state(self, design_db):
        db = design_db
        d = db.pnew(Design, name="chip", spec="v1 spec")
        old = d.vref
        newversion(d)
        d.spec = "v2 spec"
        with db.transaction():
            pass
        assert db.deref(old).spec == "v1 spec"
        assert db.deref(d.oid).spec == "v2 spec"

    def test_generic_ref_tracks_current(self, design_db):
        """Section 4: a generic reference follows the current version."""
        db = design_db
        d = db.pnew(Design, spec="a")
        oid = d.oid
        newversion(d)
        d.spec = "b"
        with db.transaction():
            pass
        db._cache.clear()
        assert db.deref(oid).spec == "b"

    def test_pending_changes_flushed_before_copy(self, design_db):
        db = design_db
        d = db.pnew(Design, spec="start")
        d.spec = "modified"      # unflushed
        old = d.vref
        newversion(d)
        assert db.deref(old).spec == "modified"

    def test_volatile_rejected(self, design_db):
        with pytest.raises(NotPersistentError):
            newversion(Design())


class TestNavigation:
    def test_chain_navigation(self, design_db):
        db = design_db
        d = db.pnew(Design, name="x")
        v1 = d.vref
        v2 = newversion(d)
        v3 = newversion(d)
        assert vfirst(d) == v1
        assert vlast(d) == v3
        assert db.vnext(v1) == v2
        assert db.vnext(v2) == v3
        assert db.vnext(v3) is None
        assert db.vprev(v3) == v2
        assert db.vprev(v1) is None

    def test_versions_listing(self, design_db):
        d = design_db.pnew(Design)
        newversion(d)
        newversion(d)
        chain = versions(d)
        assert [v.version for v in chain] == [1, 2, 3]

    def test_old_versions_read_only(self, design_db):
        db = design_db
        d = db.pnew(Design, spec="one")
        old = d.vref
        newversion(d)
        hist = db.deref(old)
        with pytest.raises(NotPersistentError):
            hist.spec = "tamper"

    def test_current_version_writable_via_vref(self, design_db):
        db = design_db
        d = db.pnew(Design)
        newversion(d)
        cur = db.current_version(d.oid)
        live = db.deref(cur)
        live.spec = "ok"  # current: writable
        assert live.spec == "ok"


class TestVersionDeletion:
    def test_delete_middle_version_relinks(self, design_db):
        db = design_db
        d = db.pnew(Design)
        v1 = d.vref
        v2 = newversion(d)
        v3 = newversion(d)
        db.pdelete(v2)
        assert [v.version for v in db.versions(d.oid)] == [1, 3]
        assert db.vnext(v1) == v3
        with pytest.raises(DanglingReferenceError):
            db.deref(v2)

    def test_delete_current_promotes_previous(self, design_db):
        db = design_db
        d = db.pnew(Design, spec="old")
        v1 = d.vref
        v2 = newversion(d)
        live = db.deref(d.oid)
        live.spec = "newest"
        with db.transaction():
            pass
        db.pdelete(v2)
        assert db.current_version(d.oid) == v1
        db._cache.clear()
        assert db.deref(d.oid).spec == "old"

    def test_delete_last_version_deletes_object(self, design_db):
        db = design_db
        d = db.pnew(Design)
        only = d.vref
        db.pdelete(only)
        with pytest.raises(DanglingReferenceError):
            db.deref(d.oid if d.is_persistent else only.oid)

    def test_pdelete_object_removes_all_versions(self, design_db):
        db = design_db
        d = db.pnew(Design)
        v1 = d.vref
        newversion(d)
        db.pdelete(d.oid)
        with pytest.raises(DanglingReferenceError):
            db.deref(v1)

    def test_vref_to_deleted_version_rejected_in_navigation(self, design_db):
        db = design_db
        d = db.pnew(Design)
        v1 = d.vref
        newversion(d)
        db.pdelete(v1)
        with pytest.raises(VersionError):
            db.vnext(v1)


class TestVersionDurability:
    def test_versions_survive_reopen(self, db_path):
        db = Database(db_path)
        db.create(Design)
        d = db.pnew(Design, spec="first")
        oid = d.oid
        old = d.vref
        newversion(d)
        d.spec = "second"
        db.close()

        db2 = Database(db_path)
        assert db2.deref(old).spec == "first"
        assert db2.deref(oid).spec == "second"
        assert len(db2.versions(oid)) == 2
        db2.close()

    def test_unbounded_versions(self, design_db):
        """Paper: 'no pre-defined limit on the number of versions'."""
        d = design_db.pnew(Design)
        for _ in range(40):
            newversion(d)
        assert len(versions(d)) == 41
        assert d.version == 41


class TestModuleFunctions:
    """The module-level macros, including raw-reference forms."""

    def test_docstring_example_runs(self):
        """The module docstring is an executable doctest; run it."""
        import doctest
        import importlib

        # ``repro.core`` re-exports the ``versions`` *function*, shadowing
        # the submodule attribute; resolve the module explicitly.
        versions_module = importlib.import_module("repro.core.versions")
        results = doctest.testmod(versions_module, verbose=False)
        assert results.attempted > 0
        assert results.failed == 0

    def test_vnext_vprev_accept_raw_vref_with_db(self, design_db):
        db = design_db
        d = db.pnew(Design, name="x")
        v1 = d.vref
        v2 = newversion(d)
        assert vnext(v1, db) == v2
        assert vnext(v2, db) is None
        assert vprev(v2, db) == v1
        assert vprev(v1, db) is None

    def test_raw_vref_without_db_rejected(self, design_db):
        d = design_db.pnew(Design)
        with pytest.raises(NotPersistentError):
            vnext(d.vref)
        with pytest.raises(NotPersistentError):
            vprev(d.vref)

    def test_non_reference_rejected(self):
        with pytest.raises(NotPersistentError):
            vnext("not a ref")
