"""Unit tests for the journal (logged page edits, abort, checkpoint)."""

import pytest

from repro.errors import TransactionError
from repro.storage.journal import Journal, _diff_range
from repro.storage.page import PageType
from repro.storage.wal import LogRecordType


class TestDiffRange:
    def test_identical(self):
        assert _diff_range(b"abc", b"abc") == (None, None)

    def test_single_byte(self):
        assert _diff_range(b"abcdef", b"abXdef") == (2, 3)

    def test_prefix_suffix(self):
        lo, hi = _diff_range(b"0123456789", b"01XYZ56789")
        assert (lo, hi) == (2, 5)

    def test_whole_buffer(self):
        lo, hi = _diff_range(b"aaaa", b"bbbb")
        assert (lo, hi) == (0, 4)


class TestTransactions:
    def test_begin_ids_unique(self, stack):
        _, _, journal = stack
        a = journal.begin()
        b = journal.begin()
        assert a != b
        journal.commit(a)
        journal.commit(b)

    def test_commit_unknown_txn(self, stack):
        _, _, journal = stack
        with pytest.raises(TransactionError):
            journal.commit(999)

    def test_edit_logs_and_stamps_lsn(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no) as page:
            page.insert(b"logged")
        with pool.page(page_no) as page:
            assert page.page_lsn > 0
        journal.commit(txn)
        types = [rec["type"] for _, rec in wal.records()]
        assert "update" in types and "commit" in types

    def test_noop_edit_logs_nothing(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no):
            pass  # a fresh page's first edit logs its (unlogged) format
        appends = wal.appends
        with journal.edit(txn, page_no):
            pass  # a true no-op edit logs nothing
        assert wal.appends == appends
        journal.commit(txn)

    def test_fresh_page_format_is_logged(self, stack):
        # The format applied by new_page happens outside any edit; the
        # first logged edit must diff against zeros so redo can rebuild
        # the page on a file that never saw it (crash-harness find).
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        assert page_no in pool.fresh_pages
        appends = wal.appends
        with journal.edit(txn, page_no):
            pass
        assert wal.appends > appends
        assert page_no not in pool.fresh_pages
        # The logged before-image is the zero page: undo restores zeros.
        records = [r for _, r in wal.records()
                   if r["type"] == LogRecordType.UPDATE
                   and r["page_no"] == page_no]
        assert records, "format edit produced no UPDATE records"
        assert all(set(r["before"]) == {0} for r in records)
        journal.commit(txn)

    def test_edit_exception_restores_page(self, stack):
        pool, _, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no) as page:
            page.insert(b"keep")
        with pytest.raises(RuntimeError):
            with journal.edit(txn, page_no) as page:
                page.insert(b"discard")
                raise RuntimeError("boom")
        with pool.page(page_no) as page:
            assert page.live_count() == 1
            assert page.read(0) == b"keep"
        journal.commit(txn)

    def test_abort_undoes_edits(self, stack):
        pool, _, journal = stack
        setup = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(setup, page_no) as page:
            slot = page.insert(b"original")
        journal.commit(setup)

        txn = journal.begin()
        with journal.edit(txn, page_no) as page:
            page.update(slot, b"mutated!")
        with journal.edit(txn, page_no) as page:
            page.insert(b"extra")
        journal.abort(txn)
        with pool.page(page_no) as page:
            assert page.read(slot) == b"original"
            assert page.live_count() == 1

    def test_abort_writes_clrs_and_end(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no) as page:
            page.insert(b"x")
        journal.abort(txn)
        types = [rec["type"] for _, rec in wal.records()]
        assert "clr" in types
        assert types[-1] == "end"
        assert types[-2] == "abort"

    def test_interleaved_transactions(self, stack):
        pool, _, journal = stack
        t1 = journal.begin()
        t2 = journal.begin()
        p1 = pool.new_page(PageType.HEAP)
        p2 = pool.new_page(PageType.HEAP)
        with journal.edit(t1, p1) as page:
            page.insert(b"one")
        with journal.edit(t2, p2) as page:
            page.insert(b"two")
        journal.abort(t1)
        journal.commit(t2)
        with pool.page(p1) as page:
            assert page.live_count() == 0
        with pool.page(p2) as page:
            assert page.read(0) == b"two"


class TestCheckpoint:
    def test_quiescent_checkpoint_truncates(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no) as page:
            page.insert(b"x")
        journal.commit(txn)
        journal.checkpoint()
        assert list(wal.records()) == []
        with pool.page(page_no) as page:
            assert page.read(0) == b"x"

    def test_active_txn_blocks_truncation(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        page_no = pool.new_page(PageType.HEAP)
        with journal.edit(txn, page_no) as page:
            page.insert(b"x")
        journal.checkpoint()
        types = [rec["type"] for _, rec in wal.records()]
        assert types
        assert "checkpoint" in types
        journal.commit(txn)
