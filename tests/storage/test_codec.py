"""Unit tests for the binary value codec and the key encoding."""

import pytest

from repro.errors import CodecError
from repro.storage.codec import (OidTriple, VrefTriple, decode_value,
                                 encode_key, encode_value)


class TestValueRoundTrip:
    @pytest.mark.parametrize("value", [
        None, True, False,
        0, 1, -1, 2 ** 62, -(2 ** 62), 2 ** 63 - 1, -(2 ** 63),
        2 ** 64, 2 ** 200, -(2 ** 200),
        0.0, -0.0, 3.141592653589793, float("inf"), float("-inf"),
        "", "hello", "héllo wörld", "日本語", "a" * 10000,
        b"", b"\x00\xff\x01", b"bytes" * 1000,
    ])
    def test_scalars(self, value):
        assert decode_value(encode_value(value)) == value

    def test_nan_roundtrip(self):
        import math
        result = decode_value(encode_value(float("nan")))
        assert math.isnan(result)

    @pytest.mark.parametrize("value", [
        [], [1, 2, 3], [1, [2, [3, [4]]]],
        (), (1, "two", 3.0), ((1, 2), (3, 4)),
        {}, {"a": 1, "b": [2, 3]}, {1: "one", (2, 3): "pair"},
        set(), {1, 2, 3}, frozenset({"x", "y"}),
        [None, True, {"k": (1, b"b")}],
    ])
    def test_containers(self, value):
        assert decode_value(encode_value(value)) == value

    def test_container_types_preserved(self):
        assert isinstance(decode_value(encode_value((1, 2))), tuple)
        assert isinstance(decode_value(encode_value([1, 2])), list)
        assert isinstance(decode_value(encode_value({1, 2})), set)
        assert isinstance(decode_value(encode_value(frozenset({1}))),
                          frozenset)

    def test_oid_triples(self):
        t = OidTriple(3, 42, 0)
        back = decode_value(encode_value(t))
        assert isinstance(back, OidTriple)
        assert not isinstance(back, VrefTriple)
        assert back == t
        v = VrefTriple(3, 42, 7)
        back = decode_value(encode_value(v))
        assert isinstance(back, VrefTriple)
        assert back.version == 7

    def test_bool_not_confused_with_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert decode_value(encode_value(1)) is not True

    def test_deterministic_set_encoding(self):
        a = encode_value({3, 1, 2})
        b = encode_value({2, 3, 1})
        assert a == b


class TestValueErrors:
    def test_unsupported_type(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_truncated(self):
        raw = encode_value("hello world")
        with pytest.raises(CodecError):
            decode_value(raw[:-3])

    def test_trailing_garbage(self):
        raw = encode_value(5) + b"\x00"
        with pytest.raises(CodecError):
            decode_value(raw)

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_value(b"\xfe")

    def test_empty(self):
        with pytest.raises(CodecError):
            decode_value(b"")


class TestKeyOrdering:
    def test_int_order(self):
        values = [-1000, -1, 0, 1, 2, 999999]
        keys = [encode_key(v) for v in values]
        assert keys == sorted(keys)

    def test_float_int_interleaved(self):
        values = [-5.5, -5, -4.5, 0, 0.5, 1, 1.5]
        keys = [encode_key(v) for v in values]
        assert keys == sorted(keys)

    def test_string_order(self):
        values = ["", "a", "ab", "ab\x00c", "abc", "b"]
        keys = [encode_key(v) for v in values]
        assert keys == sorted(keys)

    def test_tuple_order(self):
        values = [("a",), ("a", 1), ("a", 2), ("b",), ("b", 0)]
        keys = [encode_key(v) for v in values]
        assert keys == sorted(keys)

    def test_cross_kind_order(self):
        # None < bools < numbers < strings < bytes < tuples
        values = [None, False, True, -1, 3.5, "a", b"a", ("a",)]
        keys = [encode_key(v) for v in values]
        assert keys == sorted(keys)

    def test_key_distinct(self):
        assert encode_key(1) != encode_key(1.5)
        assert encode_key("a") != encode_key(b"a")
        assert encode_key(("a",)) != encode_key("a")

    def test_huge_int_key_rejected(self):
        with pytest.raises(CodecError):
            encode_key(2 ** 80)

    def test_unsupported_key_type(self):
        with pytest.raises(CodecError):
            encode_key([1, 2])


class TestExtensions:
    def test_core_oid_registration(self):
        # Importing the core layer registers Oid/Vref with the codec.
        from repro.core.oid import Oid, Vref
        oid = Oid("Person", 7)
        assert decode_value(encode_value(oid)) == oid
        vref = Vref("Person", 7, 3)
        back = decode_value(encode_value(vref))
        assert back == vref and isinstance(back, Vref)

    def test_oid_as_index_key(self):
        from repro.core.oid import Oid
        a = encode_key(Oid("A", 1))
        b = encode_key(Oid("A", 2))
        c = encode_key(Oid("B", 1))
        assert a < b < c

    def test_nested_refs(self):
        from repro.core.oid import Oid
        value = {"refs": [Oid("X", 1), Oid("X", 2)], "n": 3}
        assert decode_value(encode_value(value)) == value

    def test_conflicting_registration_rejected(self):
        from repro.storage.codec import register_extension
        with pytest.raises(CodecError):
            register_extension(0x41, str, str, str)  # 0x41 is taken by Oid
