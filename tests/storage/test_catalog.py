"""Unit tests for the system catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog, ClusterInfo, IndexInfo
from repro.storage.pagefile import PageFile


@pytest.fixture
def catalog(stack, tmp_path):
    pool, wal, journal = stack
    return Catalog(journal, pool._pagefile, journal.begin)


class TestIndexInfo:
    def test_single_field(self):
        info = IndexInfo("age", "btree", 5, False)
        assert info.fields == ["age"]
        assert not info.is_composite

    def test_composite(self):
        info = IndexInfo("a,b", "btree", 5, True, fields=["a", "b"])
        assert info.is_composite
        back = IndexInfo.from_state(info.to_state())
        assert back.fields == ["a", "b"] and back.unique

    def test_legacy_four_element_state(self):
        back = IndexInfo.from_state(["age", "hash", 9, False])
        assert back.fields == ["age"]

    def test_bad_kind(self):
        with pytest.raises(CatalogError):
            IndexInfo("f", "rtree", 1, False)


class TestCatalogRecords:
    def test_cluster_round_trip(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        info = catalog.add_cluster(txn, "person", [], 10, 11)
        journal.commit(txn)
        assert catalog.get_cluster("person").cluster_id == info.cluster_id
        assert catalog.has_cluster("person")
        assert not catalog.has_cluster("ghost")

    def test_cluster_ids_unique(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        a = catalog.add_cluster(txn, "a", [], 10, 11)
        b = catalog.add_cluster(txn, "b", [], 12, 13)
        journal.commit(txn)
        assert a.cluster_id != b.cluster_id

    def test_duplicate_rejected(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        catalog.add_cluster(txn, "dup", [], 1, 2)
        with pytest.raises(CatalogError):
            catalog.add_cluster(txn, "dup", [], 3, 4)

    def test_children_of(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        catalog.add_cluster(txn, "base", [], 1, 2)
        catalog.add_cluster(txn, "kid", ["base"], 3, 4)
        catalog.add_cluster(txn, "grandkid", ["kid"], 5, 6)
        journal.commit(txn)
        assert [c.name for c in catalog.children_of("base")] == ["kid"]
        assert [c.name for c in catalog.children_of("kid")] == ["grandkid"]
        assert catalog.children_of("grandkid") == []

    def test_save_cluster_persists_serial(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        info = catalog.add_cluster(txn, "c", [], 1, 2)
        info.next_serial = 99
        catalog.save_cluster(txn, info)
        journal.commit(txn)
        catalog.invalidate()
        assert catalog.get_cluster("c").next_serial == 99

    def test_meta_round_trip(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        catalog.set_meta(txn, "clock", 12.5)
        catalog.set_meta(txn, "clock", 13.5)  # overwrite in place
        catalog.set_meta(txn, "note", {"nested": [1, 2]})
        journal.commit(txn)
        catalog.invalidate()
        assert catalog.get_meta("clock") == 13.5
        assert catalog.get_meta("note") == {"nested": [1, 2]}
        assert catalog.get_meta("missing", "dflt") == "dflt"

    def test_invalidate_discards_uncommitted_view(self, catalog, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        catalog.add_cluster(txn, "temp", [], 1, 2)
        journal.abort(txn)
        catalog.invalidate()
        assert not catalog.has_cluster("temp")

    def test_bootstrap_root_reused_on_reopen(self, tmp_path):
        from repro.storage.buffer import BufferPool
        from repro.storage.journal import Journal
        from repro.storage.wal import WriteAheadLog
        page_path = str(tmp_path / "cat-pages")
        wal_path = str(tmp_path / "cat-wal")

        pf = PageFile(page_path)
        pool = BufferPool(pf)
        wal = WriteAheadLog(wal_path)
        journal = Journal(pool, wal)
        cat = Catalog(journal, pf, journal.begin)
        txn = journal.begin()
        cat.add_cluster(txn, "persisted", [], 1, 2)
        journal.commit(txn)
        journal.checkpoint()
        pool.flush_all()
        wal.close()
        pf.close()

        pf2 = PageFile(page_path)
        pool2 = BufferPool(pf2)
        wal2 = WriteAheadLog(wal_path)
        journal2 = Journal(pool2, wal2)
        cat2 = Catalog(journal2, pf2, journal2.begin)
        assert cat2.has_cluster("persisted")
        wal2.close()
        pf2.close()
