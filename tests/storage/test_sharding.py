"""Sharded storage (ISSUE 8): gpid routing, per-shard structures,
persistence, sharded vacuum, reclustering and the stats/metrics surface."""

import os

import pytest

from repro.core.database import Database
from repro.errors import StorageError
from repro.storage.catalog import ClusterInfo
from repro.storage.heap import RID
from repro.storage.sharding import (LOCAL_MASK, MAX_SHARDS, SHARD_SHIFT,
                                    global_page, local_page, shard_of,
                                    shard_path)
from repro.storage.store import Store


@pytest.fixture
def sharded(tmp_path):
    s = Store(str(tmp_path / "s.pages"), shards=4)
    yield s
    if not s._closed:
        s.close()


def fill(store, n=120, cluster="c"):
    txn = store.begin()
    if not store.has_cluster(cluster):
        store.create_cluster(txn, cluster)
    serials = []
    for i in range(n):
        serial = store.allocate_serial(txn, cluster)
        store.put(txn, cluster, (serial, 0),
                  {"__key": [serial, 0], "n": i}, new=True)
        serials.append(serial)
    store.commit(txn)
    return serials


class TestGpid:
    def test_roundtrip(self):
        for shard in (0, 1, 5, MAX_SHARDS - 1):
            for local in (1, 17, LOCAL_MASK):
                gpid = global_page(shard, local)
                assert shard_of(gpid) == shard
                assert local_page(gpid) == local

    def test_shard0_is_identity(self):
        # Shard-0 gpids equal their local page numbers, which is what
        # keeps a 1-shard store byte-identical to the pre-sharding format.
        for local in (1, 2, 1000):
            assert global_page(0, local) == local

    def test_shift_fits_wal_u32(self):
        assert global_page(MAX_SHARDS - 1, LOCAL_MASK) < 2 ** 32
        assert MAX_SHARDS - 1 == (2 ** 32 - 1) >> SHARD_SHIFT

    def test_shard_path(self):
        assert shard_path("/x/db.pages", 0) == "/x/db.pages"
        assert shard_path("/x/db.pages", 3) == "/x/db.pages.s3"


class TestCreation:
    def test_shard_files_exist(self, tmp_path, sharded):
        assert sharded.n_shards == 4
        for sid in range(1, 4):
            assert os.path.exists(shard_path(str(tmp_path / "s.pages"),
                                             sid))

    def test_count_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.pages")
        s = Store(path, shards=3)
        fill(s, 30)
        s.close()
        # Neither the parameter nor the env var can change an existing
        # store's count.
        s2 = Store(path, shards=8)
        assert s2.n_shards == 3
        assert s2.count("c") == 30
        s2.close()

    def test_env_var_applies_to_fresh_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "2")
        s = Store(str(tmp_path / "e.pages"))
        assert s.n_shards == 2
        s.close()

    def test_existing_unsharded_store_stays_unsharded(self, tmp_path):
        path = str(tmp_path / "u.pages")
        s = Store(path)
        fill(s, 10)
        s.close()
        s2 = Store(path, shards=4)
        assert s2.n_shards == 1
        assert s2.count("c") == 10
        s2.close()

    def test_too_many_shards_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            Store(str(tmp_path / "t.pages"), shards=MAX_SHARDS + 1)

    def test_single_shard_has_no_router(self, tmp_path):
        s = Store(str(tmp_path / "one.pages"))
        assert s._router is None
        s.close()


class TestOperations:
    def test_put_get_delete_route_by_serial(self, sharded):
        serials = fill(sharded, 100)
        for i, serial in enumerate(serials):
            assert sharded.get("c", (serial, 0))["n"] == i
        assert sharded.exists("c", (serials[0], 0))
        txn = sharded.begin()
        assert sharded.delete(txn, "c", (serials[0], 0))
        sharded.commit(txn)
        assert sharded.get("c", (serials[0], 0)) is None
        assert sharded.count("c") == 99

    def test_objects_spread_across_all_shards(self, sharded):
        fill(sharded, 100)
        per_shard = [sharded._heap("c", sid).count() for sid in range(4)]
        assert sum(per_shard) == 100
        assert all(count > 0 for count in per_shard)

    def test_scan_sees_everything(self, sharded):
        fill(sharded, 100)
        seen = sorted(record["n"] for _rid, record in sharded.scan("c"))
        assert seen == list(range(100))

    def test_scan_batches_parallel_sees_everything(self, tmp_path,
                                                   monkeypatch):
        # Force the executor on: the default worker count is capped at
        # the core count, which would pick the serial path on a 1-core
        # CI box and leave the parallel merge untested.
        monkeypatch.setenv("REPRO_SCAN_WORKERS", "4")
        s = Store(str(tmp_path / "par.pages"), shards=4)
        fill(s, 200)
        assert s._scan_worker_count == 4
        seen = sorted(record["n"]
                      for batch in s.scan_batches("c")
                      for _rid, record in batch)
        assert seen == list(range(200))
        s.close()

    def test_scan_batches_serial_workers_override(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SCAN_WORKERS", "1")
        s = Store(str(tmp_path / "w.pages"), shards=4)
        fill(s, 50)
        assert s._scan_worker_count == 1
        seen = sorted(record["n"] for batch in s.scan_batches("c")
                      for _rid, record in batch)
        assert seen == list(range(50))
        s.close()

    def test_tokens_survive_routing(self, sharded):
        serials = fill(sharded, 20)
        tokens = []
        for serial in serials:
            data, rid, lsn = sharded.get_with_token("c", (serial, 0))
            assert data is not None and lsn > 0
            tokens.append((rid.page_no, lsn))
        assert sharded.tokens_valid(tokens)
        txn = sharded.begin()
        sharded.put(txn, "c", (serials[0], 0),
                    {"__key": [serials[0], 0], "n": -1})
        sharded.commit(txn)
        assert not sharded.tokens_valid(tokens)


class TestVacuumRecluster:
    def test_sharded_vacuum_keeps_objects(self, sharded):
        serials = fill(sharded, 120)
        txn = sharded.begin()
        for serial in serials[:60]:
            sharded.delete(txn, "c", (serial, 0))
        sharded.commit(txn)
        report = sharded.vacuum("c")
        assert report["objects"] == 60
        assert report["pages_freed"] > 0
        assert sharded.count("c") == 60
        assert sharded.verify_integrity() == []
        seen = sorted(record["n"] for _rid, record in sharded.scan("c"))
        assert seen == list(range(60, 120))

    def test_recluster_moves_hot_serials_first(self, sharded):
        serials = fill(sharded, 80)
        hot = [s for s in serials if sharded._shard_of_key((s, 0)) == 1][:3]
        report = sharded.recluster_shard("c", hot, shard=1)
        assert report["moved"] == len(hot)
        assert sharded.count("c") == 80
        assert sharded.verify_integrity() == []
        # The hot serials now occupy the first slots of the shard's heap.
        heap = sharded._heap("c", 1)
        leading = []
        for _rid, raw in heap.scan():
            from repro.storage.codec import decode_value
            leading.append(decode_value(raw)["__key"][0])
            if len(leading) == len(hot):
                break
        assert leading == hot

    def test_recluster_counters_and_event(self, sharded):
        fill(sharded, 40)
        sharded.recluster_shard("c", [], shard=2)
        assert sharded.recluster_runs == 1
        assert any(e["kind"] == "recluster"
                   for e in sharded.events.snapshot())

    def test_recluster_on_single_shard_store(self, tmp_path):
        s = Store(str(tmp_path / "one.pages"))
        serials = fill(s, 30)
        report = s.recluster_shard("c", serials[10:13], shard=0)
        assert report["moved"] == 3
        assert s.count("c") == 30
        assert s.verify_integrity() == []
        s.close()

    def test_vacuum_survives_reopen(self, tmp_path):
        path = str(tmp_path / "v.pages")
        s = Store(path, shards=4)
        serials = fill(s, 100)
        txn = s.begin()
        for serial in serials[::2]:
            s.delete(txn, "c", (serial, 0))
        s.commit(txn)
        s.vacuum("c")
        s.close()
        s2 = Store(path)
        assert s2.count("c") == 50
        assert s2.verify_integrity() == []
        s2.close()


class TestAccessProfile:
    def test_get_records_hits_when_tracking(self, sharded):
        serials = fill(sharded, 10)
        sharded.track_access = True
        for _ in range(5):
            sharded.get("c", (serials[0], 0))
        profile = sharded.take_access_profile()
        assert profile[("c", serials[0])] == 5
        assert sharded.take_access_profile() == {}

    def test_tracking_off_by_default(self, sharded):
        serials = fill(sharded, 5)
        sharded.get("c", (serials[0], 0))
        assert sharded.take_access_profile() == {}


class TestStatsAndMetrics:
    def test_fragmentation_has_shard_breakdown(self, sharded):
        fill(sharded, 60)
        frag = sharded.fragmentation("c")
        assert len(frag["shards"]) == 4
        assert frag["pages"] == sum(e["pages"] for e in frag["shards"])

    def test_single_shard_fragmentation_unchanged(self, tmp_path):
        s = Store(str(tmp_path / "f.pages"))
        fill(s, 30)
        frag = s.fragmentation("c")
        assert "shards" not in frag
        s.close()

    def test_stats_shard_section(self, sharded):
        fill(sharded, 60)
        list(sharded.scan("c"))
        stats = sharded.stats()["shards"]
        assert stats["count"] == 4
        assert len(stats["per_shard"]) == 4
        assert all(e["pages"] > 0 for e in stats["per_shard"])
        assert abs(sum(e["occupancy"] for e in stats["per_shard"])
                   - 1.0) < 1e-9
        assert all(n >= 1 for n in stats["scans"])

    def test_metrics_promlint_clean(self, sharded):
        from repro.obs.metrics import parse_prometheus
        fill(sharded, 30)
        list(sharded.scan("c"))
        text = sharded.metrics.render_prometheus()
        assert "ode_shard_scans" in text
        assert "ode_recluster_moved_objects" in text
        parse_prometheus(text)  # raises on lint violations


class TestCatalogCodec:
    def test_cluster_record_roundtrips_shards(self):
        info = ClusterInfo("c", 1, [], 5, 9,
                           shards=[[5, 9], [global_page(1, 2),
                                            global_page(1, 3)]])
        back = ClusterInfo.from_record(info.to_record(), RID(1, 0))
        assert back.shards == info.shards

    def test_single_shard_record_omits_field(self):
        from repro.storage.codec import decode_value
        info = ClusterInfo("c", 1, [], 5, 9)
        assert "shards" not in decode_value(info.to_record())
        back = ClusterInfo.from_record(info.to_record(), RID(1, 0))
        assert back.shards == [[5, 9]]


class TestDatabaseLevel:
    def test_database_passes_shards_through(self, tmp_path):
        db = Database(str(tmp_path / "d.odb"), shards=4)
        assert db.store.n_shards == 4
        assert db.stats()["shards"]["count"] == 4
        db.close()

    def test_recluster_daemon_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RECLUSTER", "0")
        db = Database(str(tmp_path / "nd.odb"))
        assert db.recluster_daemon is None
        db.close()

    def test_recluster_daemon_stops_on_close(self, tmp_path):
        db = Database(str(tmp_path / "dd.odb"))
        daemon = db.recluster_daemon
        assert daemon is not None and daemon.is_alive()
        db.close()
        assert not daemon.is_alive()
        assert db.recluster_daemon is None
