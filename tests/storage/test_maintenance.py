"""Tests for store maintenance: vacuum and integrity verification."""

import pytest

from repro.storage.store import Store


@pytest.fixture
def churned(store):
    """A cluster that has seen heavy insert/update/delete churn."""
    txn = store.begin()
    store.create_cluster(txn, "c")
    for i in range(300):
        store.put(txn, "c", (i, 0), {"i": i, "pad": "x" * (i % 200)})
    store.commit(txn)
    txn = store.begin()
    for i in range(0, 300, 2):
        store.delete(txn, "c", (i, 0))
    for i in range(1, 300, 4):
        store.put(txn, "c", (i, 0), {"i": i, "pad": "y" * 3000})  # relocate
    store.commit(txn)
    return store


class TestVacuum:
    def test_preserves_contents(self, churned):
        before = {key: churned.get("c", key)
                  for key, _ in churned._directory("c").items()}
        report = churned.vacuum("c")
        assert report["objects"] == len(before) == 150
        assert report["pages_freed"] > 0
        for key, value in before.items():
            assert churned.get("c", key) == value

    def test_frees_pages_for_reuse(self, churned):
        # page_count never shrinks (freed pages join the in-file free
        # list), so the observable benefit is that post-vacuum inserts
        # recycle those pages instead of growing the file.
        report = churned.vacuum("c")
        assert report["pages_freed"] > 50
        pages_after_vacuum = churned.stats()["pages"]
        txn = churned.begin()
        for i in range(1000, 1100):
            churned.put(txn, "c", (i, 0), {"i": i})
        churned.commit(txn)
        assert churned.stats()["pages"] == pages_after_vacuum

    def test_secondary_indexes_stay_valid(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.create_index(txn, "c", "group", kind="btree")
        for i in range(100):
            store.put(txn, "c", (i, 0), {"group": i % 5})
            store.index("c", "group").insert(txn, i % 5, i)
        store.commit(txn)
        store.vacuum("c")
        assert len(store.index("c", "group").search(2)) == 20
        assert store.verify_integrity() == []

    def test_vacuum_empty_cluster(self, store):
        txn = store.begin()
        store.create_cluster(txn, "empty")
        store.commit(txn)
        report = store.vacuum("empty")
        assert report["objects"] == 0

    def test_vacuum_survives_reopen(self, db_path):
        s = Store(db_path)
        txn = s.begin()
        s.create_cluster(txn, "c")
        for i in range(50):
            s.put(txn, "c", (i, 0), {"i": i})
        s.commit(txn)
        s.vacuum("c")
        s.close()
        s2 = Store(db_path)
        assert s2.get("c", (25, 0)) == {"i": 25}
        assert s2.verify_integrity() == []
        s2.close()

    def test_vacuum_with_overflow_records(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"big": "z" * 20000})
        store.put(txn, "c", (2, 0), {"small": 1})
        store.commit(txn)
        store.vacuum("c")
        assert store.get("c", (1, 0)) == {"big": "z" * 20000}
        assert store.verify_integrity() == []


class TestVerifyIntegrity:
    def test_clean_store(self, churned):
        assert churned.verify_integrity() == []

    def test_detects_dangling_index_entry(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.create_index(txn, "c", "f", kind="hash")
        store.put(txn, "c", (1, 0), {"f": "x"})
        store.index("c", "f").insert(txn, "x", 1)
        store.index("c", "f").insert(txn, "ghost", 999)  # no object 999
        store.commit(txn)
        problems = store.verify_integrity()
        assert any("missing serial" in p for p in problems)

    def test_detects_count_mismatch(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"v": 1})
        # Delete from the heap behind the directory's back.
        hit = store._directory("c").search((1, 0))
        from repro.storage.heap import RID
        store._heap("c").delete(txn, RID(*hit[0]))
        store.commit(txn)
        problems = store.verify_integrity()
        assert problems  # unreadable RID and/or count mismatch reported


class TestClusterPlacement:
    def test_interleaved_growth_then_vacuum_reclusters(self, store):
        """Two clusters grown in alternation interleave their pages;
        vacuum rewrites each into (nearly) contiguous runs."""
        txn = store.begin()
        store.create_cluster(txn, "a")
        store.create_cluster(txn, "b")
        for i in range(400):
            store.put(txn, "a", (i, 0), {"i": i, "pad": "a" * 120})
            store.put(txn, "b", (i, 0), {"i": i, "pad": "b" * 120})
        store.commit(txn)
        before = store.fragmentation("a")
        store.vacuum("a")
        after = store.fragmentation("a")
        assert after["pages"] > 1
        # The rewrite packs the cluster into fewer, longer runs.
        assert after["runs"] <= before["runs"]
        assert after["fragmentation"] <= before["fragmentation"]
        # And the data survives intact.
        for i in range(0, 400, 37):
            assert store.get("a", (i, 0))["i"] == i

    def test_fragmentation_report_shape(self, store):
        txn = store.begin()
        store.create_cluster(txn, "solo")
        for i in range(50):
            store.put(txn, "solo", (i, 0), {"i": i, "pad": "z" * 100})
        store.commit(txn)
        report = store.fragmentation("solo")
        assert set(report) == {"pages", "span", "runs", "fragmentation"}
        assert report["pages"] >= 1
        assert report["span"] >= report["pages"]
        assert report["fragmentation"] >= 1.0

    def test_extent_growth_keeps_new_cluster_contiguous(self, store):
        """A cluster grown alone with extent allocation stays one run
        (or close): chain order matches physical order."""
        txn = store.begin()
        store.create_cluster(txn, "big")
        for i in range(600):
            store.put(txn, "big", (i, 0), {"i": i, "pad": "q" * 150})
        store.commit(txn)
        report = store.fragmentation("big")
        assert report["pages"] > 8          # spans several extents
        # Contiguous extents: far fewer runs than pages.
        assert report["runs"] <= max(2, report["pages"] // 4)
