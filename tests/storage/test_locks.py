"""Unit tests for the lock manager (2PL, upgrades, deadlock detection)."""

import threading

import pytest

from repro.errors import DeadlockError, LockError, LockTimeoutError
from repro.storage.locks import EXCLUSIVE, SHARED, LockManager


@pytest.fixture
def lm():
    return LockManager(wait_timeout=0.2)


class TestGrants:
    def test_shared_compatible(self, lm):
        lm.acquire(1, "r", SHARED)
        lm.acquire(2, "r", SHARED)
        assert lm.holds(1, "r") and lm.holds(2, "r")

    def test_exclusive_blocks_shared(self, lm):
        lm.acquire(1, "r", EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", SHARED)

    def test_shared_blocks_exclusive(self, lm):
        lm.acquire(1, "r", SHARED)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, "r", EXCLUSIVE)

    def test_reentrant(self, lm):
        lm.acquire(1, "r", SHARED)
        lm.acquire(1, "r", SHARED)
        lm.acquire(1, "r", EXCLUSIVE)  # upgrade as sole holder
        assert lm.holds(1, "r", EXCLUSIVE)

    def test_upgrade_blocked_by_other_reader(self, lm):
        lm.acquire(1, "r", SHARED)
        lm.acquire(2, "r", SHARED)
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, "r", EXCLUSIVE)

    def test_exclusive_implies_shared(self, lm):
        lm.acquire(1, "r", EXCLUSIVE)
        lm.acquire(1, "r", SHARED)  # no-op, already strong enough
        assert lm.holds(1, "r", EXCLUSIVE)

    def test_bad_mode(self, lm):
        with pytest.raises(LockError):
            lm.acquire(1, "r", "Z")


class TestRelease:
    def test_release_all(self, lm):
        lm.acquire(1, "a", EXCLUSIVE)
        lm.acquire(1, "b", SHARED)
        lm.release_all(1)
        assert not lm.holds(1, "a")
        lm.acquire(2, "a", EXCLUSIVE)  # now grantable

    def test_release_wakes_waiter(self, lm):
        lm.wait_timeout = 5.0
        lm.acquire(1, "r", EXCLUSIVE)
        got = []

        def waiter():
            lm.acquire(2, "r", EXCLUSIVE)
            got.append(True)

        t = threading.Thread(target=waiter)
        t.start()
        lm.release_all(1)
        t.join(timeout=3)
        assert got == [True]

    def test_release_unknown_txn_is_noop(self, lm):
        lm.release_all(42)


class TestDeadlock:
    def test_two_party_cycle_detected(self, lm):
        lm.wait_timeout = 5.0
        lm.acquire(1, "a", EXCLUSIVE)
        lm.acquire(2, "b", EXCLUSIVE)
        barrier = threading.Barrier(2)
        results = {}

        def t1():
            barrier.wait()
            try:
                lm.acquire(1, "b", EXCLUSIVE)  # waits on txn 2
                results[1] = "granted"
            except DeadlockError:
                results[1] = "deadlock"
            finally:
                lm.release_all(1)

        def t2():
            barrier.wait()
            import time
            time.sleep(0.1)  # let t1 start waiting
            try:
                lm.acquire(2, "a", EXCLUSIVE)  # would close the cycle
                results[2] = "granted"
            except DeadlockError:
                results[2] = "deadlock"
                lm.release_all(2)

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert "deadlock" in results.values()
        assert lm.deadlocks >= 1

    def test_self_wait_never_deadlocks(self, lm):
        lm.acquire(1, "r", EXCLUSIVE)
        lm.acquire(1, "r", EXCLUSIVE)  # reentrant, no cycle

    def test_stats(self, lm):
        lm.acquire(1, "r", SHARED)
        stats = lm.stats()
        assert stats["grants"] == 1
