"""Unit tests for the buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE, PageType
from repro.storage.pagefile import PageFile


@pytest.fixture
def pf(tmp_path):
    f = PageFile(str(tmp_path / "pages"))
    yield f
    f.close()


@pytest.fixture
def pool(pf):
    return BufferPool(pf, capacity=4)


class TestBasics:
    def test_new_page_formatted(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no) as page:
            assert page.page_no == page_no
            assert page.page_type == PageType.HEAP
            assert page.slot_count == 0

    def test_write_visible_through_pool(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no, write=True) as page:
            slot = page.insert(b"cached")
        with pool.page(page_no) as page:
            assert page.read(slot) == b"cached"

    def test_capacity_validation(self, pf):
        with pytest.raises(BufferPoolError):
            BufferPool(pf, capacity=0)

    def test_unpin_without_pin_fails(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_no)


class TestEviction:
    def test_dirty_page_written_back_on_eviction(self, pool, pf):
        first = pool.new_page(PageType.HEAP)
        with pool.page(first, write=True) as page:
            slot = page.insert(b"must survive")
        # Flood the pool to force eviction of `first`.
        for _ in range(6):
            pool.new_page(PageType.HEAP)
        assert pool.evictions > 0
        buf = bytearray(PAGE_SIZE)
        pf.read_page(first, buf)
        from repro.storage.page import SlottedPage
        assert SlottedPage(buf).read(slot) == b"must survive"

    def test_pinned_pages_not_evicted(self, pool):
        first = pool.new_page(PageType.HEAP)
        view = pool.pin(first)
        view.insert(b"pinned data")
        for _ in range(5):
            pool.new_page(PageType.HEAP)
        # still readable through the same buffer
        assert view.read(0) == b"pinned data"
        pool.unpin(first, dirty=True)

    def test_all_pinned_exhausts_pool(self, pool):
        pages = [pool.new_page(PageType.HEAP) for _ in range(4)]
        for p in pages:
            pool.pin(p)
        with pytest.raises(BufferPoolError):
            pool.new_page(PageType.HEAP)
        for p in pages:
            pool.unpin(p)

    def test_lru_order(self, pool):
        pages = [pool.new_page(PageType.HEAP) for _ in range(4)]
        pool.flush_all()
        # touch page[0] so page[1] becomes LRU
        with pool.page(pages[0]):
            pass
        extra = pool.new_page(PageType.HEAP)  # evicts pages[1]
        stats = pool.stats()
        assert stats["cached"] == 4
        with pool.page(pages[1]):  # must fault back in
            pass
        assert pool.misses >= 1


class TestFlush:
    def test_flush_all_cleans(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no, write=True) as page:
            page.insert(b"x")
        assert pool.dirty_page_numbers()
        pool.flush_all()
        assert not pool.dirty_page_numbers()

    def test_invalidate_loses_unflushed(self, pool, pf):
        page_no = pool.new_page(PageType.HEAP)
        pool.flush_all()
        with pool.page(page_no, write=True) as page:
            page.insert(b"volatile")
        pool.invalidate_all()
        with pool.page(page_no) as page:
            assert page.slot_count == 0  # change was never written

    def test_invalidate_refuses_pinned(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        pool.pin(page_no)
        with pytest.raises(BufferPoolError):
            pool.invalidate_all()
        pool.unpin(page_no)

    def test_stats_counters(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no):
            pass
        stats = pool.stats()
        assert stats["hits"] >= 1
        assert stats["capacity"] == 4

    def test_free_page_returns_to_file(self, pool, pf):
        page_no = pool.new_page(PageType.HEAP)
        pool.flush_all()
        pool.free_page(page_no)
        assert pf.allocate_page() == page_no


class TestReadahead:
    def test_prefetch_loads_span_in_one_call(self, pf):
        pool = BufferPool(pf, capacity=8)
        pages = [pool.new_page(PageType.HEAP) for _ in range(5)]
        pool.flush_all()
        pool.invalidate_all()
        assert pool.prefetch(pages[0], 5) == 5
        stats = pool.stats()
        assert stats["prefetches"] == 1
        assert stats["readahead_pages"] == 5
        misses_before = pool.misses
        for p in pages:
            with pool.page(p, cold=True):
                pass
        assert pool.misses == misses_before  # the whole span was resident

    def test_prefetch_skips_resident_span(self, pf):
        pool = BufferPool(pf, capacity=8)
        pages = [pool.new_page(PageType.HEAP) for _ in range(4)]
        assert pool.prefetch(pages[0], 4) == 0  # all already in the pool

    def test_prefetch_clamped_to_file_end(self, pf):
        pool = BufferPool(pf, capacity=16)
        pages = [pool.new_page(PageType.HEAP) for _ in range(3)]
        pool.flush_all()
        pool.invalidate_all()
        # Ask for 8 pages starting at the first one; only what exists loads.
        loaded = pool.prefetch(pages[0], 8)
        assert 0 < loaded <= pages[-1] + 1

    def test_prefetch_never_admits_stale_bytes_for_evicted_dirty_mate(self, pf):
        """A dirty span-mate evicted *during* the admit loop must not be
        re-admitted from the span bytes: they were read before the
        eviction's write-back and would resurrect the stale page."""
        pool = BufferPool(pf, capacity=4)
        span = [pool.new_page(PageType.HEAP) for _ in range(4)]
        others = [pool.new_page(PageType.HEAP) for _ in range(3)]
        pool.flush_all()
        pool.invalidate_all()
        # Dirty a mid-span page: its only current bytes are in the pool.
        with pool.page(span[2], write=True) as page:
            slot = page.insert(b"only in memory")
        # Fill the pool so the batch admissions must evict, with the dirty
        # span page sitting at the LRU front — the first victim.
        for p in others:
            with pool.page(p):
                pass
        pool.prefetch(span[0], 4)
        with pool.page(span[2]) as page:
            assert page.read(slot) == b"only in memory"

    def test_prefetch_preserves_dirty_resident_frames(self, pf):
        pool = BufferPool(pf, capacity=8)
        pages = [pool.new_page(PageType.HEAP) for _ in range(3)]
        with pool.page(pages[1], write=True) as page:
            slot = page.insert(b"unflushed")
        pool.prefetch(pages[0], 3)
        with pool.page(pages[1]) as page:
            assert page.read(slot) == b"unflushed"


class TestScanResistance:
    def test_cold_scan_does_not_evict_hot_page(self, pf):
        pool = BufferPool(pf, capacity=4)
        hot = pool.new_page(PageType.HEAP)
        scan = [pool.new_page(PageType.HEAP) for _ in range(8)]
        pool.flush_all()
        pool.invalidate_all()
        with pool.page(hot):          # hot: lives at the MRU end
            pass
        for p in scan:                # a scan twice the pool size
            pool.prefetch(p, 1)
            with pool.page(p, cold=True):
                pass
        misses_before = pool.misses
        with pool.page(hot):
            pass
        assert pool.misses == misses_before  # hot page survived the scan

    def test_cold_hit_does_not_promote(self, pf):
        pool = BufferPool(pf, capacity=4)
        pages = [pool.new_page(PageType.HEAP) for _ in range(6)]
        pool.flush_all()
        pool.invalidate_all()
        pool.prefetch(pages[0], 1)
        with pool.page(pages[0], cold=True):  # cold re-touch: stays cold
            pass
        # Fill the pool; the untouched-but-cold page goes first.
        for p in pages[1:5]:
            with pool.page(p):
                pass
        misses_before = pool.misses
        with pool.page(pages[0]):
            pass
        assert pool.misses == misses_before + 1  # it was evicted

    def test_non_cold_pin_rehabilitates_frame(self, pf):
        pool = BufferPool(pf, capacity=4)
        target = pool.new_page(PageType.HEAP)
        scan = [pool.new_page(PageType.HEAP) for _ in range(6)]
        pool.flush_all()
        pool.invalidate_all()
        pool.prefetch(target, 1)
        with pool.page(target):       # non-cold pin: promoted to hot
            pass
        for p in scan:
            pool.prefetch(p, 1)
            with pool.page(p, cold=True):
                pass
        misses_before = pool.misses
        with pool.page(target):
            pass
        assert pool.misses == misses_before  # rehabilitated frame survived
