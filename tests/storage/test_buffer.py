"""Unit tests for the buffer pool."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE, PageType
from repro.storage.pagefile import PageFile


@pytest.fixture
def pf(tmp_path):
    f = PageFile(str(tmp_path / "pages"))
    yield f
    f.close()


@pytest.fixture
def pool(pf):
    return BufferPool(pf, capacity=4)


class TestBasics:
    def test_new_page_formatted(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no) as page:
            assert page.page_no == page_no
            assert page.page_type == PageType.HEAP
            assert page.slot_count == 0

    def test_write_visible_through_pool(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no, write=True) as page:
            slot = page.insert(b"cached")
        with pool.page(page_no) as page:
            assert page.read(slot) == b"cached"

    def test_capacity_validation(self, pf):
        with pytest.raises(BufferPoolError):
            BufferPool(pf, capacity=0)

    def test_unpin_without_pin_fails(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pytest.raises(BufferPoolError):
            pool.unpin(page_no)


class TestEviction:
    def test_dirty_page_written_back_on_eviction(self, pool, pf):
        first = pool.new_page(PageType.HEAP)
        with pool.page(first, write=True) as page:
            slot = page.insert(b"must survive")
        # Flood the pool to force eviction of `first`.
        for _ in range(6):
            pool.new_page(PageType.HEAP)
        assert pool.evictions > 0
        buf = bytearray(PAGE_SIZE)
        pf.read_page(first, buf)
        from repro.storage.page import SlottedPage
        assert SlottedPage(buf).read(slot) == b"must survive"

    def test_pinned_pages_not_evicted(self, pool):
        first = pool.new_page(PageType.HEAP)
        view = pool.pin(first)
        view.insert(b"pinned data")
        for _ in range(5):
            pool.new_page(PageType.HEAP)
        # still readable through the same buffer
        assert view.read(0) == b"pinned data"
        pool.unpin(first, dirty=True)

    def test_all_pinned_exhausts_pool(self, pool):
        pages = [pool.new_page(PageType.HEAP) for _ in range(4)]
        for p in pages:
            pool.pin(p)
        with pytest.raises(BufferPoolError):
            pool.new_page(PageType.HEAP)
        for p in pages:
            pool.unpin(p)

    def test_lru_order(self, pool):
        pages = [pool.new_page(PageType.HEAP) for _ in range(4)]
        pool.flush_all()
        # touch page[0] so page[1] becomes LRU
        with pool.page(pages[0]):
            pass
        extra = pool.new_page(PageType.HEAP)  # evicts pages[1]
        stats = pool.stats()
        assert stats["cached"] == 4
        with pool.page(pages[1]):  # must fault back in
            pass
        assert pool.misses >= 1


class TestFlush:
    def test_flush_all_cleans(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no, write=True) as page:
            page.insert(b"x")
        assert pool.dirty_page_numbers()
        pool.flush_all()
        assert not pool.dirty_page_numbers()

    def test_invalidate_loses_unflushed(self, pool, pf):
        page_no = pool.new_page(PageType.HEAP)
        pool.flush_all()
        with pool.page(page_no, write=True) as page:
            page.insert(b"volatile")
        pool.invalidate_all()
        with pool.page(page_no) as page:
            assert page.slot_count == 0  # change was never written

    def test_invalidate_refuses_pinned(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        pool.pin(page_no)
        with pytest.raises(BufferPoolError):
            pool.invalidate_all()
        pool.unpin(page_no)

    def test_stats_counters(self, pool):
        page_no = pool.new_page(PageType.HEAP)
        with pool.page(page_no):
            pass
        stats = pool.stats()
        assert stats["hits"] >= 1
        assert stats["capacity"] == 4

    def test_free_page_returns_to_file(self, pool, pf):
        page_no = pool.new_page(PageType.HEAP)
        pool.flush_all()
        pool.free_page(page_no)
        assert pf.allocate_page() == page_no
