"""Crash-recovery tests: committed data survives, uncommitted disappears."""

import os

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.journal import Journal
from repro.storage.pagefile import PageFile
from repro.storage.recovery import recover
from repro.storage.wal import WriteAheadLog


class Harness:
    """Reopenable storage stack with crash simulation."""

    def __init__(self, tmp_path):
        self.page_path = str(tmp_path / "pages")
        self.wal_path = str(tmp_path / "wal")
        self.open()

    def open(self, run_recovery=False):
        self.pagefile = PageFile(self.page_path)
        self.pool = BufferPool(self.pagefile, capacity=32)
        self.wal = WriteAheadLog(self.wal_path)
        report = None
        if run_recovery:
            report = recover(self.pool, self.wal)
        self.journal = Journal(self.pool, self.wal)
        return report

    def crash(self):
        """Close files without flushing the pool (lose volatile state)."""
        self.wal.close()
        self.pagefile.close()

    def crash_and_recover(self):
        self.crash()
        return self.open(run_recovery=True)

    def close(self):
        self.wal.close()
        self.pagefile.close()


@pytest.fixture
def h(tmp_path):
    harness = Harness(tmp_path)
    yield harness
    try:
        harness.close()
    except Exception:
        pass


class TestRecovery:
    def test_committed_survives_crash(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        rids = [heap.insert(txn, b"data-%d" % i) for i in range(50)]
        h.journal.commit(txn)

        report = h.crash_and_recover()
        assert report.winners
        heap2 = HeapFile(h.journal, first_page)
        for i, rid in enumerate(rids):
            assert heap2.read(rid) == b"data-%d" % i

    def test_uncommitted_rolled_back(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        keep = heap.insert(txn, b"keep")
        h.journal.commit(txn)

        txn2 = h.journal.begin()
        heap.insert(txn2, b"lose me")
        heap.update(txn2, keep, b"MUTATED")
        h.wal.flush()
        h.pool.flush_all()  # dirty pages hit disk — undo must still win

        report = h.crash_and_recover()
        assert txn2 in report.losers
        heap2 = HeapFile(h.journal, first_page)
        assert heap2.read(keep) == b"keep"
        assert heap2.count() == 1

    def test_unflushed_committed_redone(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        rid = heap.insert(txn, b"committed but only in WAL")
        h.journal.commit(txn)  # commit fsyncs the log, NOT the pages

        report = h.crash_and_recover()
        assert report.redone > 0
        heap2 = HeapFile(h.journal, first_page)
        assert heap2.read(rid) == b"committed but only in WAL"

    def test_mixed_winners_and_losers(self, h):
        t1 = h.journal.begin()
        heap = HeapFile.create(h.journal, t1)
        first_page = heap.first_page
        a = heap.insert(t1, b"A")
        h.journal.commit(t1)

        t2 = h.journal.begin()
        t3 = h.journal.begin()
        b = heap.insert(t2, b"B")
        heap.insert(t3, b"C")
        h.journal.commit(t2)
        # t3 never commits
        report = h.crash_and_recover()
        assert report.losers == {t3}
        heap2 = HeapFile(h.journal, first_page)
        payloads = sorted(p for _, p in heap2.scan())
        assert payloads == [b"A", b"B"]

    def test_crash_mid_abort_finishes_undo(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        keep = heap.insert(txn, b"keep")
        h.journal.commit(txn)

        txn2 = h.journal.begin()
        for i in range(20):
            heap.insert(txn2, b"x%d" % i)
        # Simulate a partial abort: undo a few updates via CLRs, then crash.
        from repro.storage.journal import undo_transaction
        from repro.storage.wal import LogRecordType
        last = h.journal.active[txn2]
        record = h.wal.read_record(last)
        # undo just one record by hand
        page_no = record["page_no"]
        page = h.pool.pin(page_no)
        before = record["before"]
        page.buf[record["offset"]:record["offset"] + len(before)] = before
        clr = h.wal.log_clr(txn2, last, page_no, record["offset"], before,
                            undo_next=record["prev_lsn"])
        page.page_lsn = clr
        h.pool.unpin(page_no, dirty=True)
        h.journal.active[txn2] = clr
        h.wal.flush()

        report = h.crash_and_recover()
        assert txn2 in report.losers
        heap2 = HeapFile(h.journal, first_page)
        assert heap2.count() == 1
        assert heap2.read(keep) == b"keep"

    def test_recovery_idempotent(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        rid = heap.insert(txn, b"once")
        h.journal.commit(txn)

        h.crash_and_recover()
        # Crash again immediately (log now truncated) and recover again.
        h.crash()
        h.open(run_recovery=True)
        heap2 = HeapFile(h.journal, first_page)
        assert heap2.read(rid) == b"once"
        assert heap2.count() == 1

    def test_empty_log_recovery(self, h):
        report = h.crash_and_recover()
        assert report.records_scanned == 0

    def test_torn_tail_treated_as_never_written(self, h):
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        heap.insert(txn, b"committed")
        h.journal.commit(txn)
        h.crash()
        # Garbage after the last valid record = a write torn by the crash.
        with open(h.wal_path, "ab") as fh:
            fh.write(b"\xff" * 37)
        report = h.open(run_recovery=True)
        heap2 = HeapFile(h.journal, first_page)
        assert heap2.count() == 1


class TestRecoveryProperty:
    def test_random_workload_crash_points(self, tmp_path):
        """Commit/crash at many points; committed state must always match
        an in-Python model."""
        import random
        rng = random.Random(1234)
        h = Harness(tmp_path)
        txn = h.journal.begin()
        heap = HeapFile.create(h.journal, txn)
        first_page = heap.first_page
        h.journal.commit(txn)
        committed_model = {}

        for round_no in range(12):
            txn = h.journal.begin()
            working = dict(committed_model)
            for _ in range(rng.randint(1, 15)):
                action = rng.choice(["insert", "update", "delete"])
                if action == "insert" or not working:
                    payload = bytes([rng.randint(65, 90)]) * rng.randint(1, 300)
                    rid = heap.insert(txn, payload)
                    working[rid] = payload
                elif action == "update":
                    rid = rng.choice(sorted(working))
                    payload = bytes([rng.randint(97, 122)]) * rng.randint(1, 2000)
                    heap.update(txn, rid, payload)
                    working[rid] = payload
                else:
                    rid = rng.choice(sorted(working))
                    heap.delete(txn, rid)
                    del working[rid]
            outcome = rng.choice(["commit", "crash", "abort"])
            if outcome == "commit":
                h.journal.commit(txn)
                committed_model = working
                if rng.random() < 0.3:
                    h.crash_and_recover()
                    heap = HeapFile(h.journal, first_page)
            elif outcome == "abort":
                h.journal.abort(txn)
            else:
                if rng.random() < 0.5:
                    h.pool.flush_all()
                h.crash_and_recover()
                heap = HeapFile(h.journal, first_page)
            assert dict(heap.scan()) == (
                committed_model if outcome != "commit" else committed_model)
        h.close()
