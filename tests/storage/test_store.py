"""Tests for the Store facade (clusters, objects, indexes, crash)."""

import pytest

from repro.errors import CatalogError
from repro.storage.store import Store


class TestClusters:
    def test_create_and_lookup(self, store):
        txn = store.begin()
        info = store.create_cluster(txn, "person")
        store.commit(txn)
        assert store.has_cluster("person")
        assert store.cluster_info("person").cluster_id == info.cluster_id

    def test_duplicate_cluster_rejected(self, store):
        txn = store.begin()
        store.create_cluster(txn, "a")
        with pytest.raises(CatalogError):
            store.create_cluster(txn, "a")

    def test_missing_parent_rejected(self, store):
        txn = store.begin()
        with pytest.raises(CatalogError):
            store.create_cluster(txn, "child", parents=["ghost"])

    def test_hierarchy_recorded(self, store):
        txn = store.begin()
        store.create_cluster(txn, "person")
        store.create_cluster(txn, "student", parents=["person"])
        store.create_cluster(txn, "ta", parents=["student"])
        store.commit(txn)
        children = store.catalog.children_of("person")
        assert [c.name for c in children] == ["student"]

    def test_missing_cluster_error(self, store):
        with pytest.raises(CatalogError):
            store.cluster_info("ghost")

    def test_serials_monotone(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        serials = [store.allocate_serial(txn, "c") for _ in range(5)]
        store.commit(txn)
        assert serials == [1, 2, 3, 4, 5]

    def test_serials_unique_within_and_across_blocks(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        n = Store.SERIAL_BLOCK * 2 + 3
        serials = [store.allocate_serial(txn, "c") for _ in range(n)]
        store.commit(txn)
        assert len(set(serials)) == n
        assert serials == sorted(serials)

    def test_serials_not_reused_after_reopen(self, db_path):
        """Serials may skip (block allocation) but must never repeat."""
        s = Store(db_path)
        txn = s.begin()
        s.create_cluster(txn, "c")
        first = {s.allocate_serial(txn, "c") for _ in range(2)}
        s.commit(txn)
        s.close()
        s2 = Store(db_path)
        txn = s2.begin()
        later = s2.allocate_serial(txn, "c")
        s2.commit(txn)
        s2.close()
        assert later not in first
        assert later > max(first)

    def test_aborted_block_not_reissued_stale(self, store):
        """After an abort drops a reserved block, new serials still do not
        collide with serials issued by committed transactions."""
        txn = store.begin()
        store.create_cluster(txn, "c")
        committed = [store.allocate_serial(txn, "c") for _ in range(3)]
        store.commit(txn)
        txn = store.begin()
        store.allocate_serial(txn, "c")
        store.abort(txn)
        txn = store.begin()
        fresh = store.allocate_serial(txn, "c")
        store.commit(txn)
        assert fresh not in committed


class TestObjects:
    def test_put_get(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"name": "x", "n": 5})
        store.commit(txn)
        assert store.get("c", (1, 0)) == {"name": "x", "n": 5}

    def test_get_missing(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.commit(txn)
        assert store.get("c", (99, 0)) is None

    def test_overwrite(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"v": 1})
        store.put(txn, "c", (1, 0), {"v": 2})
        store.commit(txn)
        assert store.get("c", (1, 0)) == {"v": 2}

    def test_delete(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"v": 1})
        assert store.delete(txn, "c", (1, 0)) is True
        assert store.delete(txn, "c", (1, 0)) is False
        store.commit(txn)
        assert store.get("c", (1, 0)) is None

    def test_scan(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        for i in range(20):
            store.put(txn, "c", (i, 0), {"i": i})
        store.commit(txn)
        scanned = sorted(rec["i"] for _, rec in store.scan("c"))
        assert scanned == list(range(20))

    def test_large_object(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        big = {"blob": "x" * 50000, "items": list(range(1000))}
        store.put(txn, "c", (1, 0), big)
        store.commit(txn)
        assert store.get("c", (1, 0)) == big


class TestAbort:
    def test_abort_object_changes(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"v": "original"})
        store.commit(txn)

        txn = store.begin()
        store.put(txn, "c", (1, 0), {"v": "mutated"})
        store.put(txn, "c", (2, 0), {"v": "new"})
        store.abort(txn)
        assert store.get("c", (1, 0)) == {"v": "original"}
        assert store.get("c", (2, 0)) is None

    def test_abort_cluster_creation(self, store):
        txn = store.begin()
        store.create_cluster(txn, "ghost")
        store.abort(txn)
        assert not store.has_cluster("ghost")

    def test_abort_index_creation(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.commit(txn)
        txn = store.begin()
        store.create_index(txn, "c", "f")
        store.abort(txn)
        assert "f" not in store.indexes_on("c")


class TestIndexes:
    def test_create_and_use(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.create_index(txn, "c", "name", kind="btree")
        store.index("c", "name").insert(txn, "alice", 1)
        store.commit(txn)
        assert store.index("c", "name").search("alice") == [1]

    def test_duplicate_index_rejected(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.create_index(txn, "c", "f")
        with pytest.raises(CatalogError):
            store.create_index(txn, "c", "f")

    def test_unknown_index(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.commit(txn)
        with pytest.raises(CatalogError):
            store.index("c", "ghost")

    def test_index_survives_reopen(self, db_path):
        s = Store(db_path)
        txn = s.begin()
        s.create_cluster(txn, "c")
        s.create_index(txn, "c", "age", kind="btree")
        for i in range(50):
            s.index("c", "age").insert(txn, i % 10, i)
        s.commit(txn)
        s.close()
        s2 = Store(db_path)
        assert len(s2.index("c", "age").search(3)) == 5
        s2.close()


class TestCrash:
    def test_crash_recovery_on_open(self, db_path):
        s = Store(db_path)
        txn = s.begin()
        s.create_cluster(txn, "c")
        s.put(txn, "c", (1, 0), {"v": "durable"})
        s.commit(txn)
        txn = s.begin()
        s.put(txn, "c", (2, 0), {"v": "lost"})
        s.crash()

        s2 = Store(db_path)
        assert s2.last_recovery is not None
        assert s2.get("c", (1, 0)) == {"v": "durable"}
        assert s2.get("c", (2, 0)) is None
        s2.close()

    def test_close_aborts_stragglers(self, db_path):
        s = Store(db_path)
        txn = s.begin()
        s.create_cluster(txn, "c")
        s.commit(txn)
        s.begin()  # never finished
        s.close()  # must not raise; straggler aborted
        s2 = Store(db_path)
        assert s2.has_cluster("c")
        s2.close()

    def test_stats(self, store):
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.commit(txn)
        stats = store.stats()
        assert stats["pages"] > 1
        assert stats["wal_appends"] > 0
