"""Property-based tests (hypothesis) for the storage substrate."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.codec import decode_value, encode_key, encode_value
from repro.storage.hashindex import HashIndex
from repro.storage.heap import HeapFile
from repro.storage.journal import Journal
from repro.storage.page import PAGE_SIZE, PageType, SlottedPage
from repro.storage.pagefile import PageFile
from repro.storage.wal import WriteAheadLog

# -- value strategies ---------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)

keys = st.one_of(
    st.integers(min_value=-(2 ** 50), max_value=2 ** 50),
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e15, max_value=1e15),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.tuples(st.text(max_size=10),
              st.integers(min_value=-1000, max_value=1000)),
)


class TestCodecProperties:
    @given(values)
    @settings(max_examples=300)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    @given(keys, keys)
    @settings(max_examples=300)
    def test_key_order_preserved(self, a, b):
        ka, kb = encode_key(a), encode_key(b)
        if _comparable(a, b):
            if a < b:
                assert ka < kb
            elif a > b:
                assert ka > kb
            else:
                assert ka == kb
        else:
            assert ka != kb

    @given(keys, keys)
    @settings(max_examples=200)
    def test_key_injective(self, a, b):
        if a != b or type(a) is not type(b):
            if encode_key(a) == encode_key(b):
                # only numerically equal values may collide (2 == 2.0)
                assert float(a) == float(b)


def _comparable(a, b) -> bool:
    num = (int, float)
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, num) and isinstance(b, num):
        return True
    return type(a) is type(b)


class TestSlottedPageProperties:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "delete"]),
                              st.binary(min_size=0, max_size=200)),
                    max_size=60))
    @settings(max_examples=100)
    def test_model_equivalence(self, ops):
        page = SlottedPage.format(bytearray(PAGE_SIZE), 1, PageType.HEAP)
        model = {}
        for action, payload in ops:
            if action == "insert":
                try:
                    slot = page.insert(payload)
                except Exception:
                    continue
                model[slot] = payload
            elif model:
                victim = sorted(model)[0]
                page.delete(victim)
                del model[victim]
        assert dict(page.slots()) == model


@pytest.fixture
def fresh_stack(tmp_path):
    pagefile = PageFile(str(tmp_path / "pages"))
    pool = BufferPool(pagefile, capacity=64)
    wal = WriteAheadLog(str(tmp_path / "wal"))
    journal = Journal(pool, wal)
    yield pool, wal, journal
    wal.close()
    pagefile.close()


class TestBTreeProperties:
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=200)),
                    min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_dict_model(self, fresh_stack, ops):
        pool, wal, journal = fresh_stack
        txn = journal.begin()
        tree = BTree.create(journal, txn)
        model = {}
        for is_insert, key in ops:
            if is_insert:
                tree.insert(txn, key, key * 3)
                model.setdefault(key, []).append(key * 3)
            else:
                removed = tree.delete(txn, key)
                expected = len(model.pop(key, []))
                assert removed == expected
        tree.check_invariants()
        for key, vals in model.items():
            assert sorted(tree.search(key)) == sorted(vals)
        expected_keys = sorted(k for k, v in model.items() for _ in v)
        assert [k for k, _ in tree.items()] == expected_keys
        journal.commit(txn)


class TestHashIndexProperties:
    @given(st.lists(st.tuples(st.booleans(), st.text(max_size=6)),
                    min_size=1, max_size=150))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_dict_model(self, fresh_stack, ops):
        pool, wal, journal = fresh_stack
        txn = journal.begin()
        index = HashIndex.create(journal, txn)
        model = {}
        for is_insert, key in ops:
            if is_insert:
                index.insert(txn, key, len(model))
                model.setdefault(key, []).append(None)
            else:
                removed = index.delete(txn, key)
                assert removed == len(model.pop(key, []))
        index.check_invariants()
        for key, vals in model.items():
            assert len(index.search(key)) == len(vals)
        journal.commit(txn)


class TestHeapProperties:
    @given(st.lists(st.tuples(st.sampled_from(["insert", "update", "delete"]),
                              st.binary(max_size=800)),
                    min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_dict_model(self, fresh_stack, ops):
        pool, wal, journal = fresh_stack
        txn = journal.begin()
        heap = HeapFile.create(journal, txn)
        model = {}
        for action, payload in ops:
            if action == "insert":
                rid = heap.insert(txn, payload)
                model[rid] = payload
            elif model:
                victim = sorted(model)[len(model) // 2]
                if action == "update":
                    heap.update(txn, victim, payload)
                    model[victim] = payload
                else:
                    heap.delete(txn, victim)
                    del model[victim]
        assert dict(heap.scan()) == model
        for rid, payload in model.items():
            assert heap.read(rid) == payload
        journal.commit(txn)
