"""Unit tests for the B+tree index."""

import random

import pytest

from repro.errors import DuplicateKeyError
from repro.storage.btree import BTree


@pytest.fixture
def tree(stack):
    pool, wal, journal = stack
    txn = journal.begin()
    tree = BTree.create(journal, txn)
    return tree, journal, txn


class TestBasics:
    def test_empty(self, tree):
        bt, journal, txn = tree
        assert bt.search("missing") == []
        assert len(bt) == 0
        assert list(bt.items()) == []

    def test_insert_search(self, tree):
        bt, journal, txn = tree
        bt.insert(txn, "key", "value")
        assert bt.search("key") == ["value"]
        assert bt.contains("key")

    def test_many_keys_random_order(self, tree):
        bt, journal, txn = tree
        keys = list(range(2000))
        random.Random(42).shuffle(keys)
        for k in keys:
            bt.insert(txn, k, k * 10)
        bt.check_invariants()
        assert len(bt) == 2000
        for k in (0, 1, 999, 1999):
            assert bt.search(k) == [k * 10]
        assert [k for k, _ in bt.items()] == list(range(2000))

    def test_duplicates(self, tree):
        bt, journal, txn = tree
        for i in range(10):
            bt.insert(txn, "same", i)
        assert sorted(bt.search("same")) == list(range(10))

    def test_unique_rejects_duplicates(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        bt = BTree.create(journal, txn, unique=True)
        bt.insert(txn, "k", 1)
        with pytest.raises(DuplicateKeyError):
            bt.insert(txn, "k", 2)

    def test_mixed_type_keys(self, tree):
        bt, journal, txn = tree
        bt.insert(txn, 1, "int")
        bt.insert(txn, 1.5, "float")
        bt.insert(txn, "a", "str")
        bt.insert(txn, ("t", 1), "tuple")
        bt.insert(txn, None, "none")
        keys = [k for k, _ in bt.items()]
        assert keys == [None, 1, 1.5, "a", ("t", 1)]


class TestRange:
    def test_range_half_open(self, tree):
        bt, journal, txn = tree
        for i in range(100):
            bt.insert(txn, i, i)
        assert [k for k, _ in bt.range(10, 20)] == list(range(10, 20))

    def test_range_inclusive(self, tree):
        bt, journal, txn = tree
        for i in range(100):
            bt.insert(txn, i, i)
        got = [k for k, _ in bt.range(10, 20, include_hi=True)]
        assert got == list(range(10, 21))

    def test_range_open_bounds(self, tree):
        bt, journal, txn = tree
        for i in range(50):
            bt.insert(txn, i, i)
        assert [k for k, _ in bt.range(lo=45)] == [45, 46, 47, 48, 49]
        assert [k for k, _ in bt.range(hi=5)] == [0, 1, 2, 3, 4]

    def test_range_spanning_splits(self, tree):
        bt, journal, txn = tree
        for i in range(3000):
            bt.insert(txn, i, i)
        got = [k for k, _ in bt.range(1495, 1505)]
        assert got == list(range(1495, 1505))

    def test_string_prefix_range(self, tree):
        bt, journal, txn = tree
        for name in ["adams", "baker", "bates", "clark", "davis"]:
            bt.insert(txn, name, name)
        got = [k for k, _ in bt.range("b", "c")]
        assert got == ["baker", "bates"]


class TestDelete:
    def test_delete_single(self, tree):
        bt, journal, txn = tree
        bt.insert(txn, "k", "v")
        assert bt.delete(txn, "k") == 1
        assert bt.search("k") == []

    def test_delete_missing(self, tree):
        bt, journal, txn = tree
        assert bt.delete(txn, "nope") == 0

    def test_delete_by_value(self, tree):
        bt, journal, txn = tree
        bt.insert(txn, "k", 1)
        bt.insert(txn, "k", 2)
        assert bt.delete(txn, "k", value=1) == 1
        assert bt.search("k") == [2]

    def test_delete_all_duplicates(self, tree):
        bt, journal, txn = tree
        for i in range(20):
            bt.insert(txn, "dup", i)
        assert bt.delete(txn, "dup") == 20
        assert bt.search("dup") == []

    def test_mass_delete_keeps_invariants(self, tree):
        bt, journal, txn = tree
        keys = list(range(1500))
        rng = random.Random(7)
        rng.shuffle(keys)
        for k in keys:
            bt.insert(txn, k, k)
        rng.shuffle(keys)
        for k in keys[:1400]:
            assert bt.delete(txn, k) == 1
        bt.check_invariants()
        remaining = sorted(keys[1400:])
        assert [k for k, _ in bt.items()] == remaining

    def test_delete_everything_then_reinsert(self, tree):
        bt, journal, txn = tree
        for i in range(500):
            bt.insert(txn, i, i)
        for i in range(500):
            bt.delete(txn, i)
        assert len(bt) == 0
        bt.check_invariants()
        for i in range(100):
            bt.insert(txn, i, -i)
        assert [v for _, v in bt.items()] == [-i for i in range(100)]


class TestTransactions:
    def test_abort_rolls_back_inserts(self, stack):
        pool, wal, journal = stack
        setup = journal.begin()
        bt = BTree.create(journal, setup)
        for i in range(100):
            bt.insert(setup, i, i)
        journal.commit(setup)

        txn = journal.begin()
        for i in range(100, 1200):
            bt.insert(txn, i, i)
        journal.abort(txn)
        bt.check_invariants()
        assert len(bt) == 100
        assert bt.search(150) == []

    def test_abort_rolls_back_deletes(self, stack):
        pool, wal, journal = stack
        setup = journal.begin()
        bt = BTree.create(journal, setup)
        for i in range(200):
            bt.insert(setup, i, i)
        journal.commit(setup)

        txn = journal.begin()
        for i in range(200):
            bt.delete(txn, i)
        journal.abort(txn)
        assert len(bt) == 200


class TestStructure:
    def test_root_page_stable_across_splits(self, tree):
        bt, journal, txn = tree
        root_before = bt.root_page
        for i in range(5000):
            bt.insert(txn, i, i)
        assert bt.root_page == root_before
        bt.check_invariants()

    def test_long_values(self, tree):
        bt, journal, txn = tree
        bt.insert(txn, "k", "v" * 2000)
        assert bt.search("k") == ["v" * 2000]


class TestDuplicateHeavyWorkloads:
    """Regression tests for duplicate runs straddling node splits."""

    def test_many_duplicates_keep_invariants(self, tree):
        bt, journal, txn = tree
        # Few distinct keys, many entries each: runs are forced to span
        # splits; the tie-broken sort keys must keep bounds exact.
        for i in range(3000):
            bt.insert(txn, i % 7, "value-%04d" % i)
        bt.check_invariants()
        for k in range(7):
            hits = bt.search(k)
            assert len(hits) == 3000 // 7 + (1 if k < 3000 % 7 else 0)

    def test_run_spanning_many_leaves(self, tree):
        bt, journal, txn = tree
        for i in range(400):
            bt.insert(txn, "before", i)
        for i in range(400):
            bt.insert(txn, "hot", i)
        for i in range(400):
            bt.insert(txn, "zafter", i)
        bt.check_invariants()
        assert sorted(bt.search("hot")) == list(range(400))
        assert len(list(bt.range("hot", "hot", include_hi=True))) == 400

    def test_delete_entire_run(self, tree):
        bt, journal, txn = tree
        for i in range(500):
            bt.insert(txn, "run", i)
        for i in range(100):
            bt.insert(txn, "other", i)
        assert bt.delete(txn, "run") == 500
        bt.check_invariants()
        assert bt.search("run") == []
        assert len(bt.search("other")) == 100

    def test_delete_one_value_from_run(self, tree):
        bt, journal, txn = tree
        for i in range(300):
            bt.insert(txn, "run", i)
        assert bt.delete(txn, "run", value=150) == 1
        hits = bt.search("run")
        assert len(hits) == 299 and 150 not in hits

    def test_identical_key_value_pairs(self, tree):
        bt, journal, txn = tree
        for _ in range(50):
            bt.insert(txn, "same", "same-value")
        assert len(bt.search("same")) == 50
        bt.check_invariants()
