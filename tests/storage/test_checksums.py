"""Page checksums end to end: stamping, admit-time verification,
quarantine, degraded mode, scrub and in-place repair."""

import struct

import pytest

from repro.core.database import Database
from repro.errors import CorruptPageError, DegradedModeError
from repro.storage.page import (CHECKSUM_OFFSET, PAGE_SIZE, PageType,
                                compute_checksum, stamp_checksum,
                                verify_checksum)
from repro.storage.store import Store
from repro import IntField, OdeObject, StringField


class Part(OdeObject):
    name = StringField(default="")
    qty = IntField(default=0)


def _corrupt_page(path, page_no):
    """Flip eight payload bytes of on-disk page *page_no*."""
    with open(path, "r+b") as f:
        f.seek(page_no * PAGE_SIZE + 100)
        raw = f.read(8)
        f.seek(page_no * PAGE_SIZE + 100)
        f.write(bytes(b ^ 0xFF for b in raw))


def _heap_chain(path, first_page):
    """Walk a heap chain's ``next_page`` pointers in the closed file."""
    with open(path, "rb") as f:
        raw = f.read()
    pages = []
    page_no = first_page
    while page_no:
        pages.append(page_no)
        page_no = struct.unpack_from("<Q", raw, page_no * PAGE_SIZE + 24)[0]
    return pages


class TestChecksumPrimitives:
    def test_stamp_then_verify(self):
        buf = bytearray(PAGE_SIZE)
        buf[200:205] = b"hello"
        stamp_checksum(buf)
        assert verify_checksum(buf)

    def test_zero_page_is_valid_by_convention(self):
        # Freshly extended file regions are zero-filled and unstamped.
        assert verify_checksum(bytes(PAGE_SIZE))

    def test_flipped_bit_detected(self):
        buf = bytearray(PAGE_SIZE)
        buf[300] = 7
        stamp_checksum(buf)
        buf[301] ^= 0x01
        assert not verify_checksum(buf)

    def test_checksum_field_excluded_from_itself(self):
        buf = bytearray(PAGE_SIZE)
        buf[64] = 9
        before = compute_checksum(buf)
        struct.pack_into("<I", buf, CHECKSUM_OFFSET, 0xDEADBEEF)
        assert compute_checksum(buf) == before

    def test_pages_reach_disk_stamped(self, tmp_path, db_path):
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"x": 1})
        store.commit(txn)
        store.close()
        with open(db_path, "rb") as f:
            raw = f.read()
        for page_no in range(1, len(raw) // PAGE_SIZE):
            page = raw[page_no * PAGE_SIZE:(page_no + 1) * PAGE_SIZE]
            assert verify_checksum(page), "page %d unstamped" % page_no


class TestQuarantineAndDegraded:
    N = 60

    def _store_with_data(self, db_path):
        """Create cluster ``c`` with enough data to span several heap
        pages; return the heap chain's page numbers."""
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        for i in range(self.N):
            store.put(txn, "c", (i, 0), {"n": i, "pad": "x" * 200})
        store.commit(txn)
        first = store.catalog.get_cluster("c").heap_page
        store.close()
        pages = _heap_chain(db_path, first)
        assert len(pages) >= 2
        return pages

    def test_corrupt_pin_quarantines_and_degrades(self, db_path):
        page_no = self._store_with_data(db_path)[0]
        _corrupt_page(db_path, page_no)
        store = Store(db_path)
        with pytest.raises(CorruptPageError):
            for i in range(self.N):
                store.get("c", (i, 0))
        assert page_no in store._pool.quarantined
        assert store._pool.checksum_failures == 1
        assert store.degraded is not None
        # re-pinning the quarantined page fails fast, no latch leaked
        with pytest.raises(CorruptPageError):
            with store._pool.page(page_no):
                pass
        events = store.events.snapshot(kind="page_corrupt")
        assert events and events[0]["data"]["page_no"] == page_no
        store.close()

    def test_degraded_mode_blocks_writes_allows_reads(self, db_path):
        pages = self._store_with_data(db_path)
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "d")
        store.put(txn, "d", (1, 0), {"ok": True})
        store.commit(txn)
        store.close()
        _corrupt_page(db_path, pages[1])
        store = Store(db_path)
        with pytest.raises(CorruptPageError):
            for i in range(self.N):
                store.get("c", (i, 0))
        assert store.degraded is not None
        txn = store.begin()
        with pytest.raises(DegradedModeError):
            store.put(txn, "d", (99, 0), {"n": 99})
        store.abort(txn)
        # clusters that never touch the bad page still serve reads
        assert store.get("d", (1, 0)) == {"ok": True}
        store.close()

    def test_metrics_expose_corruption(self, db_path):
        page_no = self._store_with_data(db_path)[0]
        _corrupt_page(db_path, page_no)
        store = Store(db_path)
        with pytest.raises(CorruptPageError):
            for i in range(self.N):
                store.get("c", (i, 0))
        assert store.metrics.get("storage.corrupt_pages") == 1
        assert store.metrics.get("storage.quarantined_pages") == 1
        assert store.metrics.get("storage.degraded") == 1
        store.close()


class TestScrub:
    def test_clean_store_scrubs_clean(self, db_path):
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"x": 1})
        store.commit(txn)
        store.checkpoint()
        report = store.scrub()
        assert report["bad_pages"] == []
        assert report["pages_checked"] > 0
        assert report["degraded"] is None
        store.close()

    def test_scrub_finds_quiet_corruption(self, db_path):
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        for i in range(50):
            store.put(txn, "c", (i, 0), {"n": i})
        store.commit(txn)
        page_no = store.catalog.get_cluster("c").heap_page
        store.close()
        _corrupt_page(db_path, page_no)
        store = Store(db_path)
        # Nothing read the bad page yet — scrub must still find it.
        report = store.scrub()
        assert report["bad_pages"] == [page_no]
        assert store.degraded is not None
        assert store.events.snapshot(kind="scrub")
        store.close()


class TestRepair:
    def test_repair_restores_writability(self, db_path):
        db = Database(db_path)
        db.create(Part)
        with db.transaction():
            for i in range(60):
                db.pnew(Part, name="p%d-" % i + "x" * 120, qty=i)
        first = db.store.catalog.get_cluster("Part").heap_page
        db.close()
        pages = _heap_chain(db_path, first)
        assert len(pages) >= 2
        _corrupt_page(db_path, pages[1])

        db = Database(db_path)
        report = db.scrub()
        assert report["bad_pages"]
        assert db.degraded is not None
        repair = db.repair()
        assert db.degraded is None
        assert "Part" in repair["clusters"]
        # Survivors are intact, indexes answer, and writes work again.
        survivors = {p.name for p in db.cluster(Part)}
        assert survivors  # most objects live on other pages
        with db.transaction():
            db.pnew(Part, name="post-repair", qty=1)
        assert db.verify() == []
        db.close()
