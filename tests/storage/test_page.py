"""Unit tests for slotted pages."""

import pytest

from repro.errors import PageError, PageFullError
from repro.storage.page import (HEADER_SIZE, MAX_RECORD_SIZE, PAGE_SIZE,
                                PageType, SlottedPage)


@pytest.fixture
def page():
    return SlottedPage.format(bytearray(PAGE_SIZE), 7, PageType.HEAP)


class TestFormat:
    def test_header_fields(self, page):
        assert page.page_no == 7
        assert page.page_type == PageType.HEAP
        assert page.slot_count == 0
        assert page.page_lsn == 0
        assert page.next_page == 0

    def test_fresh_page_free_space(self, page):
        assert page.contiguous_free == PAGE_SIZE - HEADER_SIZE
        assert page.total_free == PAGE_SIZE - HEADER_SIZE

    def test_wrong_buffer_size_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(bytearray(100))


class TestInsertRead:
    def test_round_trip(self, page):
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self, page):
        slots = [page.insert(b"rec%d" % i) for i in range(50)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == b"rec%d" % i
        assert page.slot_count == 50

    def test_empty_payload(self, page):
        slot = page.insert(b"")
        assert page.read(slot) == b""

    def test_max_record(self, page):
        slot = page.insert(b"x" * MAX_RECORD_SIZE)
        assert len(page.read(slot)) == MAX_RECORD_SIZE

    def test_oversized_record_rejected(self, page):
        with pytest.raises(PageError):
            page.insert(b"x" * (MAX_RECORD_SIZE + 1))

    def test_page_full(self, page):
        page.insert(b"x" * MAX_RECORD_SIZE)
        with pytest.raises(PageFullError):
            page.insert(b"y" * 100)

    def test_bad_slot_read(self, page):
        with pytest.raises(PageError):
            page.read(0)
        page.insert(b"a")
        with pytest.raises(PageError):
            page.read(5)


class TestDelete:
    def test_delete_then_read_fails(self, page):
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(PageError):
            page.read(slot)

    def test_double_delete_fails(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.delete(slot)

    def test_delete_frees_space(self, page):
        slot = page.insert(b"x" * 1000)
        before = page.total_free
        page.delete(slot)
        assert page.total_free == before + 1000

    def test_tombstone_slot_reused(self, page):
        a = page.insert(b"a")
        page.insert(b"b")
        page.delete(a)
        c = page.insert(b"c")
        assert c == a
        assert page.slot_count == 2

    def test_live_count(self, page):
        slots = [page.insert(b"r%d" % i) for i in range(10)]
        for slot in slots[::2]:
            page.delete(slot)
        assert page.live_count() == 5


class TestUpdate:
    def test_same_size(self, page):
        slot = page.insert(b"aaaa")
        page.update(slot, b"bbbb")
        assert page.read(slot) == b"bbbb"

    def test_shrink(self, page):
        slot = page.insert(b"a" * 100)
        free_before = page.total_free
        page.update(slot, b"b" * 40)
        assert page.read(slot) == b"b" * 40
        assert page.total_free == free_before + 60

    def test_grow_in_place(self, page):
        slot = page.insert(b"small")
        page.update(slot, b"much bigger payload" * 10)
        assert page.read(slot) == b"much bigger payload" * 10

    def test_grow_beyond_page_fails(self, page):
        slot = page.insert(b"x" * 2000)
        page.insert(b"y" * 1800)
        with pytest.raises(PageFullError):
            page.update(slot, b"z" * 2500)
        assert page.read(slot) == b"x" * 2000  # unchanged

    def test_update_deleted_fails(self, page):
        slot = page.insert(b"x")
        page.delete(slot)
        with pytest.raises(PageError):
            page.update(slot, b"y")

    def test_update_after_fragmentation_compacts(self, page):
        # Fill with several records, delete some, then grow one so the
        # contiguous space alone can't hold it but total space can.
        slots = [page.insert(bytes([65 + i]) * 700) for i in range(5)]
        page.delete(slots[0])
        page.delete(slots[2])
        page.update(slots[1], b"Z" * 1500)
        assert page.read(slots[1]) == b"Z" * 1500
        assert page.read(slots[3]) == bytes([68]) * 700


class TestCompaction:
    def test_compact_preserves_records_and_slots(self, page):
        slots = [page.insert(b"payload-%02d" % i * 3) for i in range(20)]
        for slot in slots[::3]:
            page.delete(slot)
        live = {s: page.read(s) for s in slots if s not in slots[::3]}
        page.compact()
        for slot, payload in live.items():
            assert page.read(slot) == payload
        assert page.total_free == page.contiguous_free

    def test_insert_triggers_compaction(self, page):
        # Fragment the page, then insert something that only fits after
        # compaction.
        slots = [page.insert(b"x" * 500) for i in range(8)]
        for slot in slots[:4]:
            page.delete(slot)
        big = page.insert(b"B" * 1800)
        assert page.read(big) == b"B" * 1800


class TestSlotsIterator:
    def test_slots_in_order(self, page):
        for i in range(5):
            page.insert(b"r%d" % i)
        assert [(s, p) for s, p in page.slots()] == [
            (i, b"r%d" % i) for i in range(5)]

    def test_slots_skips_tombstones(self, page):
        slots = [page.insert(b"r%d" % i) for i in range(4)]
        page.delete(slots[1])
        assert [s for s, _ in page.slots()] == [0, 2, 3]


class TestHeaderMutation:
    def test_lsn(self, page):
        page.page_lsn = 12345
        assert page.page_lsn == 12345

    def test_next_page(self, page):
        page.next_page = 99
        assert page.next_page == 99

    def test_page_type(self, page):
        page.page_type = PageType.BTREE_LEAF
        assert page.page_type == PageType.BTREE_LEAF
