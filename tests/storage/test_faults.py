"""Fault-injection layer: the injector itself and the failure semantics
it exposes — transient IO errors, sticky WAL failure, group-commit error
propagation, degraded mode, and transaction retry."""

import threading

import pytest

from repro.core.database import Database
from repro.errors import (DegradedModeError, StorageError, TransientIOError,
                          WalFlushError)
from repro.storage.faults import (ACTIONS, DIE_EXIT_CODE, KNOWN_FAILPOINTS,
                                  FaultInjector)
from repro.storage.page import PAGE_SIZE
from repro.storage.pagefile import PageFile
from repro.storage.store import Store
from repro import IntField, OdeObject


class Gadget(OdeObject):
    n = IntField(default=0)


class TestInjector:
    def test_unarmed_fire_is_noop(self):
        f = FaultInjector()
        assert not f.enabled
        assert f.fire("pagefile.write.pre") is None
        assert f.injected == 0

    def test_at_hit_gates_firing(self):
        f = FaultInjector()
        point = f.arm("pagefile.write.lost", at_hit=3)
        assert f.fire("pagefile.write.lost") is None
        assert f.fire("pagefile.write.lost") is None
        assert f.fire("pagefile.write.lost") is point
        # default count=1: fires exactly once
        assert f.fire("pagefile.write.lost") is None
        assert point.fired == 1
        assert f.trace == [("pagefile.write.lost", "lost")]

    def test_count_zero_fires_forever(self):
        f = FaultInjector()
        f.arm("pagefile.write.lost", at_hit=2, count=0)
        hits = [f.fire("pagefile.write.lost") for _ in range(6)]
        assert [h is not None for h in hits] == [False] + [True] * 5

    def test_default_action_from_registry(self):
        f = FaultInjector()
        for name, action in KNOWN_FAILPOINTS:
            assert f.arm(name).action == action
            f.disarm(name)
        assert not f.enabled

    def test_unknown_point_needs_explicit_action(self):
        f = FaultInjector()
        with pytest.raises(StorageError):
            f.arm("no.such.point")
        f.arm("no.such.point", "error")  # explicit action is fine

    def test_bad_action_rejected(self):
        f = FaultInjector()
        with pytest.raises(StorageError):
            f.arm("pagefile.write.pre", "explode")
        assert "explode" not in ACTIONS

    def test_error_action_raises_eio(self):
        f = FaultInjector()
        f.arm("wal.flush.fsync", "error")
        with pytest.raises(OSError) as exc:
            f.fire("wal.flush.fsync")
        assert exc.value.errno == 5

    def test_from_env_parsing(self):
        env = {"REPRO_FAULTS":
               "wal.flush.pre:die:3; pagefile.write.torn:torn",
               "REPRO_FAULTS_SEED": "99"}
        f = FaultInjector.from_env(env)
        assert f.armed("wal.flush.pre").at_hit == 3
        assert f.armed("pagefile.write.torn").at_hit == 1
        assert f.enabled

    def test_from_env_rejects_garbage(self):
        with pytest.raises(StorageError):
            FaultInjector.from_env({"REPRO_FAULTS": "justaname"})

    def test_from_env_empty_is_unarmed(self):
        f = FaultInjector.from_env({})
        assert not f.enabled

    def test_die_exit_code_is_distinctive(self):
        # The harness keys on this value; keep it stable.
        assert DIE_EXIT_CODE == 47


class TestPageFileFaults:
    def test_read_error_is_transient(self, tmp_path):
        f = FaultInjector()
        pf = PageFile(str(tmp_path / "p"), faults=f)
        page_no = pf.allocate_page()
        pf.write_page(page_no, bytes(PAGE_SIZE))
        f.arm("pagefile.read.pre", "error")
        with pytest.raises(TransientIOError):
            pf.read_page(page_no, bytearray(PAGE_SIZE))
        # transient: the next read (fault spent) succeeds
        pf.read_page(page_no, bytearray(PAGE_SIZE))
        pf.close()

    def test_short_read_is_transient(self, tmp_path):
        f = FaultInjector()
        pf = PageFile(str(tmp_path / "p"), faults=f)
        page_no = pf.allocate_page()
        pf.write_page(page_no, bytes(PAGE_SIZE))
        f.arm("pagefile.read.short")
        with pytest.raises(TransientIOError):
            pf.read_page(page_no, bytearray(PAGE_SIZE))
        pf.read_page(page_no, bytearray(PAGE_SIZE))
        pf.close()

    def test_lost_write_changes_nothing(self, tmp_path):
        f = FaultInjector()
        pf = PageFile(str(tmp_path / "p"), faults=f)
        page_no = pf.allocate_page()
        pf.write_page(page_no, b"\x01" * PAGE_SIZE)
        f.arm("pagefile.write.lost")
        pf.write_page(page_no, b"\x02" * PAGE_SIZE)  # vanishes
        buf = bytearray(PAGE_SIZE)
        pf.read_page(page_no, buf)
        assert buf[100] == 1  # the old image survived untouched
        assert f.injected == 1
        pf.close()

    def test_sync_lie_skips_fsync(self, tmp_path):
        f = FaultInjector()
        pf = PageFile(str(tmp_path / "p"), faults=f)
        f.arm("pagefile.sync.lie")
        pf.sync()  # must not raise; the lie is silent
        assert f.trace == [("pagefile.sync.lie", "lie")]
        pf.close()


class TestStickyWalFailure:
    """Satellite (a): a failed WAL fsync surfaces as WalFlushError and the
    log never accepts another record — no retry-fsync data loss."""

    def _failing_store(self, db_path):
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.commit(txn)
        store.faults.arm("wal.flush.fsync", "error")
        return store

    def test_commit_surfaces_wal_flush_error(self, db_path):
        store = self._failing_store(db_path)
        txn = store.begin()
        store.put(txn, "c", (1, 0), {"x": 1})
        with pytest.raises(WalFlushError) as exc:
            store.commit(txn)
        assert "not durable" in str(exc.value)
        assert store._wal.failed is not None
        store.close()

    def test_failure_is_sticky(self, db_path):
        store = self._failing_store(db_path)
        txn = store.begin()
        store.put(txn, "c", (1, 0), {"x": 1})
        with pytest.raises(WalFlushError):
            store.commit(txn)
        # the fault fired once; the log still refuses everything after
        assert store.faults.armed("wal.flush.fsync").fired == 1
        with pytest.raises((WalFlushError, DegradedModeError)):
            txn2 = store.begin()
            store.put(txn2, "c", (2, 0), {"x": 2})
            store.commit(txn2)
        store.close()

    def test_reads_survive_wal_failure(self, db_path):
        store = Store(db_path)
        txn = store.begin()
        store.create_cluster(txn, "c")
        store.put(txn, "c", (1, 0), {"x": 1})
        store.commit(txn)
        store.faults.arm("wal.flush.fsync", "error")
        txn = store.begin()
        store.put(txn, "c", (2, 0), {"x": 2})
        with pytest.raises(WalFlushError):
            store.commit(txn)
        assert store.degraded is not None
        assert store.get("c", (1, 0)) == {"x": 1}  # reads keep working
        store.close()

    def test_durable_prefix_survives_reopen(self, db_path):
        store = self._failing_store(db_path)
        txn = store.begin()
        store.put(txn, "c", (1, 0), {"x": 1})
        with pytest.raises(WalFlushError):
            store.commit(txn)
        store.close()  # checkpoint skipped: the log is dead
        reopened = Store(db_path)
        assert reopened.has_cluster("c")  # durable prefix
        # The failed commit was never acknowledged. It may still surface
        # (the OS kept the buffers; only the fsync was refused) or be
        # gone — both are legal. What is not legal is a broken store.
        assert reopened.get("c", (1, 0)) in (None, {"x": 1})
        assert reopened.degraded is None  # a fresh process starts healthy
        reopened.close()


class TestGroupCommitFailure:
    """A failed group fsync must reject every committer — concurrently or
    after the fact — and never leave a thread hanging."""

    def test_all_committers_fail_no_hangs(self, db_path):
        db = Database(db_path, durability="group")
        db.create(Gadget)
        with db.transaction():
            db.pnew(Gadget, n=0)
        db.store.faults.arm("wal.flush.fsync", "error")
        db.store.set_durability("group", group_size=2, group_window=0.01)
        results = {}

        def committer(i):
            try:
                with db.transaction():
                    db.pnew(Gadget, n=i)
                results[i] = "committed"
            except (WalFlushError, DegradedModeError) as exc:
                results[i] = type(exc).__name__
            except Exception as exc:  # pragma: no cover - diagnostic
                results[i] = "unexpected:%r" % exc

        threads = [threading.Thread(target=committer, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads), "hung committer"
        # Once the flush fails nothing can durably commit; every thread
        # got a typed error or (the pre-failure window) committed.
        failures = [r for r in results.values() if r != "committed"]
        assert failures, "no committer observed the fsync failure"
        assert all(r in ("committed", "WalFlushError", "DegradedModeError")
                   for r in results.values()), results
        assert db.degraded is not None
        db.close()


class TestTransientRetry:
    """db.run_transaction retries transient IO errors with backoff."""

    def test_transient_read_error_is_retried(self, db_path):
        db = Database(db_path)
        db.create(Gadget)
        with db.transaction():
            oid = db.pnew(Gadget, n=7).oid
        db.close()

        db = Database(db_path)  # cold pool: the deref must hit the disk
        db.faults.arm("pagefile.read.pre", "error")
        value = db.run_transaction(lambda: db.deref(oid).n)
        assert value == 7
        assert db.faults.armed("pagefile.read.pre").fired == 1
        assert db.metrics.get("txn.retries") >= 1
        db.close()

    def test_retries_exhausted_reraises(self, db_path):
        db = Database(db_path)
        db.create(Gadget)
        with db.transaction():
            oid = db.pnew(Gadget, n=7).oid
        db.close()

        db = Database(db_path)
        db.faults.arm("pagefile.read.pre", "error", count=0)  # every read
        with pytest.raises(TransientIOError):
            db.run_transaction(lambda: db.deref(oid).n, retries=2,
                               backoff=0.001)
        db.close()


class TestFaultObservability:
    def test_injections_counted_and_logged(self, db_path):
        db = Database(db_path)
        db.faults.arm("pagefile.read.pre", "error")
        with pytest.raises(OSError):
            db.faults.fire("pagefile.read.pre", page_no=1)
        assert db.metrics.get("faults.injected") == 1
        assert db.events.snapshot(kind="fault_injected")
        db.close()
