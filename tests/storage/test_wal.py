"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import WalError
from repro.storage.wal import NULL_LSN, LogRecordType, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    w = WriteAheadLog(str(tmp_path / "wal"))
    yield w
    w.close()


class TestAppendRead:
    def test_lsn_monotone(self, wal):
        lsns = [wal.append({"type": "x", "n": i}) for i in range(10)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 10

    def test_read_record(self, wal):
        lsn = wal.append({"type": "x", "payload": b"abc"})
        assert wal.read_record(lsn) == {"type": "x", "payload": b"abc"}

    def test_records_scan(self, wal):
        for i in range(5):
            wal.append({"type": "x", "n": i})
        scanned = list(wal.records())
        assert [rec["n"] for _, rec in scanned] == list(range(5))

    def test_records_from_offset(self, wal):
        lsns = [wal.append({"n": i, "type": "x"}) for i in range(5)]
        scanned = list(wal.records(start_lsn=lsns[2]))
        assert [rec["n"] for _, rec in scanned] == [2, 3, 4]

    def test_read_bad_lsn(self, wal):
        with pytest.raises(WalError):
            wal.read_record(99999)

    def test_typed_helpers(self, wal):
        begin = wal.log_begin(1)
        update = wal.log_update(1, begin, 5, 10, b"old", b"new")
        commit = wal.log_commit(1, update)
        rec = wal.read_record(update)
        assert rec["type"] == LogRecordType.UPDATE
        assert rec["before"] == b"old"
        assert rec["after"] == b"new"
        assert rec["prev_lsn"] == begin
        assert wal.read_record(commit)["type"] == LogRecordType.COMMIT


class TestDurability:
    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "wal")
        w = WriteAheadLog(path)
        w.append({"type": "x", "n": 1})
        w.append({"type": "x", "n": 2})
        w.flush()
        w.close()
        # Corrupt the tail: append garbage that is not a valid record.
        with open(path, "ab") as fh:
            fh.write(b"\x30\x00\x00\x00GARBAGE")
        w2 = WriteAheadLog(path)
        assert [rec["n"] for _, rec in w2.records()] == [1, 2]
        w2.close()

    def test_truncated_mid_record(self, tmp_path):
        path = str(tmp_path / "wal")
        w = WriteAheadLog(path)
        w.append({"type": "x", "n": 1})
        lsn2 = w.append({"type": "x", "n": 2})
        w.flush()
        w.close()
        with open(path, "r+b") as fh:
            fh.truncate(lsn2 + 16 + 5)  # cut into the second record
            # (+16: the WAL's file header precedes LSN-addressed bytes)
        w2 = WriteAheadLog(path)
        assert [rec["n"] for _, rec in w2.records()] == [1]
        w2.close()

    def test_reopen_appends_after_tail(self, tmp_path):
        path = str(tmp_path / "wal")
        w = WriteAheadLog(path)
        w.append({"type": "x", "n": 1})
        w.flush()
        w.close()
        w2 = WriteAheadLog(path)
        w2.append({"type": "x", "n": 2})
        assert [rec["n"] for _, rec in w2.records()] == [1, 2]
        w2.close()

    def test_commit_flushes(self, wal):
        syncs_before = wal.syncs
        wal.log_commit(1, NULL_LSN)
        assert wal.syncs == syncs_before + 1

    def test_flush_up_to_already_flushed_is_noop(self, wal):
        lsn = wal.append({"type": "x"})
        wal.flush()
        syncs = wal.syncs
        wal.flush(up_to_lsn=lsn)
        assert wal.syncs == syncs


class TestTruncate:
    def test_truncate_empties(self, wal):
        wal.append({"type": "x"})
        end_before = wal.end_lsn
        wal.truncate()
        assert list(wal.records()) == []
        # LSNs are monotone across truncation: the base advances.
        assert wal.base_lsn == end_before
        assert wal.end_lsn == end_before

    def test_append_after_truncate(self, wal):
        lsn1 = wal.append({"type": "x", "n": 1})
        wal.truncate()
        lsn2 = wal.append({"type": "x", "n": 2})
        assert lsn2 > lsn1
        assert [rec["n"] for _, rec in wal.records()] == [2]

    def test_base_survives_reopen(self, tmp_path):
        path = str(tmp_path / "wal-base")
        w = WriteAheadLog(path)
        w.append({"type": "x"})
        w.truncate()
        base = w.base_lsn
        assert base > 0
        w.close()
        w2 = WriteAheadLog(path)
        assert w2.base_lsn == base
        lsn = w2.append({"type": "x"})
        assert lsn >= base
        w2.close()

    def test_closed_rejects_append(self, tmp_path):
        w = WriteAheadLog(str(tmp_path / "w2"))
        w.close()
        with pytest.raises(WalError):
            w.append({"type": "x"})
