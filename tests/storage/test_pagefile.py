"""Unit tests for the page file (allocation, free list, named roots)."""

import os

import pytest

from repro.errors import PageError, StorageError
from repro.storage.page import (CHECKSUM_OFFSET, PAGE_SIZE, NO_PAGE,
                                verify_checksum)
from repro.storage.pagefile import PageFile


@pytest.fixture
def pf(tmp_path):
    f = PageFile(str(tmp_path / "pages"))
    yield f
    f.close()


class TestLifecycle:
    def test_new_file_has_header_page(self, pf):
        assert pf.page_count == 1

    def test_create_flag_semantics(self, tmp_path):
        path = str(tmp_path / "x")
        with pytest.raises(StorageError):
            PageFile(path, create=False)  # must exist
        f = PageFile(path, create=True)
        f.close()
        with pytest.raises(StorageError):
            PageFile(path, create=True)  # must not exist

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk")
        with open(path, "wb") as fh:
            fh.write(b"\x00" * PAGE_SIZE)
        with pytest.raises(StorageError):
            PageFile(path)

    def test_reopen_preserves_page_count(self, tmp_path):
        path = str(tmp_path / "pages")
        f = PageFile(path)
        for _ in range(5):
            f.allocate_page()
        f.close()
        f2 = PageFile(path)
        assert f2.page_count == 6
        f2.close()


class TestAllocation:
    def test_allocate_sequential(self, pf):
        assert pf.allocate_page() == 1
        assert pf.allocate_page() == 2
        assert pf.page_count == 3

    def test_read_write_round_trip(self, pf):
        page_no = pf.allocate_page()
        data = bytearray(os.urandom(PAGE_SIZE))
        pf.write_page(page_no, bytes(data))
        buf = bytearray(PAGE_SIZE)
        pf.read_page(page_no, buf)
        # write_page stamps the page checksum (format v2); everything
        # outside that field round-trips untouched.
        assert buf[:CHECKSUM_OFFSET] == data[:CHECKSUM_OFFSET]
        assert buf[CHECKSUM_OFFSET + 4:] == data[CHECKSUM_OFFSET + 4:]
        assert verify_checksum(buf)

    def test_free_then_recycle(self, pf):
        a = pf.allocate_page()
        b = pf.allocate_page()
        pf.free_page(a)
        pf.free_page(b)
        # LIFO recycling
        assert pf.allocate_page() == b
        assert pf.allocate_page() == a
        assert pf.allocate_page() == 3  # then fresh

    def test_page_zero_protected(self, pf):
        with pytest.raises(PageError):
            pf.write_page(0, b"\x00" * PAGE_SIZE)
        with pytest.raises(PageError):
            pf.read_page(0, bytearray(PAGE_SIZE))

    def test_out_of_range(self, pf):
        with pytest.raises(PageError):
            pf.read_page(99, bytearray(PAGE_SIZE))

    def test_wrong_buffer_length(self, pf):
        page_no = pf.allocate_page()
        with pytest.raises(PageError):
            pf.write_page(page_no, b"short")

    def test_free_list_survives_reopen(self, tmp_path):
        path = str(tmp_path / "pages")
        f = PageFile(path)
        a = f.allocate_page()
        f.allocate_page()
        f.free_page(a)
        f.close()
        f2 = PageFile(path)
        assert f2.allocate_page() == a
        f2.close()


class TestRoots:
    def test_set_get(self, pf):
        pf.set_root("catalog", 42)
        assert pf.get_root("catalog") == 42

    def test_default(self, pf):
        assert pf.get_root("nothing") == NO_PAGE
        assert pf.get_root("nothing", 5) == 5

    def test_roots_survive_reopen(self, tmp_path):
        path = str(tmp_path / "pages")
        f = PageFile(path)
        f.set_root("a", 1)
        f.set_root("b", 2)
        f.close()
        f2 = PageFile(path)
        assert f2.get_root("a") == 1
        assert f2.get_root("b") == 2
        f2.close()

    def test_closed_file_rejects_io(self, tmp_path):
        f = PageFile(str(tmp_path / "pages"))
        f.allocate_page()
        f.close()
        with pytest.raises(StorageError):
            f.read_page(1, bytearray(PAGE_SIZE))
