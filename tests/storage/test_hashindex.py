"""Unit tests for the extendible hash index."""

import pytest

from repro.errors import DuplicateKeyError
from repro.storage.hashindex import HashIndex, stable_hash


@pytest.fixture
def index(stack):
    pool, wal, journal = stack
    txn = journal.begin()
    ix = HashIndex.create(journal, txn)
    return ix, journal, txn


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(42) == stable_hash(42)

    def test_spread(self):
        hashes = {stable_hash(i) & 0xFF for i in range(1000)}
        assert len(hashes) > 200  # well spread over low bits


class TestBasics:
    def test_empty(self, index):
        ix, journal, txn = index
        assert ix.search("nope") == []
        assert len(ix) == 0

    def test_insert_search(self, index):
        ix, journal, txn = index
        ix.insert(txn, "k", "v")
        assert ix.search("k") == ["v"]
        assert ix.contains("k")

    def test_many_keys_force_splits(self, index):
        ix, journal, txn = index
        for i in range(2000):
            ix.insert(txn, i, i * 2)
        ix.check_invariants()
        depth, _ = ix._read_directory()
        assert depth >= 2
        for probe in (0, 1, 999, 1999):
            assert ix.search(probe) == [probe * 2]
        assert len(ix) == 2000

    def test_duplicates(self, index):
        ix, journal, txn = index
        for i in range(5):
            ix.insert(txn, "dup", i)
        assert sorted(ix.search("dup")) == list(range(5))

    def test_unique(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        ix = HashIndex.create(journal, txn, unique=True)
        ix.insert(txn, "k", 1)
        with pytest.raises(DuplicateKeyError):
            ix.insert(txn, "k", 2)

    def test_heavy_duplicate_key_chains(self, index):
        """Hundreds of entries under one key can never split apart; the
        bucket must chain across pages and stay correct."""
        ix, journal, txn = index
        for i in range(800):
            ix.insert(txn, "hot", i)
        assert sorted(ix.search("hot")) == list(range(800))
        ix.check_invariants()

    def test_mixed_hot_and_cold_keys(self, index):
        ix, journal, txn = index
        for i in range(300):
            ix.insert(txn, "hot", i)
        for i in range(300):
            ix.insert(txn, i, -i)
        assert len(ix.search("hot")) == 300
        for probe in (0, 150, 299):
            assert ix.search(probe) == [-probe]


class TestDelete:
    def test_delete(self, index):
        ix, journal, txn = index
        ix.insert(txn, "k", "v")
        assert ix.delete(txn, "k") == 1
        assert ix.search("k") == []

    def test_delete_by_value(self, index):
        ix, journal, txn = index
        ix.insert(txn, "k", 1)
        ix.insert(txn, "k", 2)
        assert ix.delete(txn, "k", value=2) == 1
        assert ix.search("k") == [1]

    def test_delete_missing(self, index):
        ix, journal, txn = index
        assert ix.delete(txn, "ghost") == 0

    def test_delete_from_chained_bucket(self, index):
        ix, journal, txn = index
        for i in range(600):
            ix.insert(txn, "hot", i)
        assert ix.delete(txn, "hot", value=300) == 1
        assert len(ix.search("hot")) == 599
        assert ix.delete(txn, "hot") == 599
        assert ix.search("hot") == []


class TestItems:
    def test_items_complete(self, index):
        ix, journal, txn = index
        expected = {}
        for i in range(500):
            ix.insert(txn, "key%d" % i, i)
            expected["key%d" % i] = i
        assert dict(ix.items()) == expected

    def test_len_after_splits(self, index):
        ix, journal, txn = index
        for i in range(1000):
            ix.insert(txn, i, i)
        assert len(ix) == 1000


class TestTransactions:
    def test_abort_restores(self, stack):
        pool, wal, journal = stack
        setup = journal.begin()
        ix = HashIndex.create(journal, setup)
        for i in range(50):
            ix.insert(setup, i, i)
        journal.commit(setup)

        txn = journal.begin()
        for i in range(50, 1000):
            ix.insert(txn, i, i)
        ix.delete(txn, 10)
        journal.abort(txn)
        ix.check_invariants()
        assert len(ix) == 50
        assert ix.search(10) == [10]
        assert ix.search(500) == []
