"""Tests for the WAL durability modes (full / group / none)."""

import pytest

from repro.core import Database, IntField, OdeObject, StringField
from repro.errors import WalError
from repro.storage.wal import DURABILITY_MODES, WriteAheadLog


class Event(OdeObject):
    tag = StringField(default="")
    seq = IntField(default=0)


def wal_of(db):
    return db.store._wal


class TestKnob:
    def test_modes_exposed(self):
        assert DURABILITY_MODES == ("full", "group", "none")

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path / "w"), durability="sloppy")

    def test_database_threads_durability_down(self, tmp_path):
        db = Database(str(tmp_path / "g.odb"), durability="group")
        assert db.durability == "group"
        assert wal_of(db).durability == "group"
        db.close()

    def test_runtime_switch(self, db):
        assert db.durability == "full"
        db.set_durability("none")
        assert db.durability == "none"
        db.set_durability("full")
        with pytest.raises(WalError):
            db.set_durability("bogus")


class TestGroupCommit:
    def test_group_batches_fsyncs(self, tmp_path):
        db = Database(str(tmp_path / "g.odb"), durability="group")
        db.set_durability("group", group_size=16, group_window=60.0)
        db.create(Event)
        wal = wal_of(db)
        syncs_before = wal.syncs
        for i in range(32):  # 32 autocommit transactions
            db.pnew(Event, tag="t%d" % i, seq=i)
        commit_syncs = wal.syncs - syncs_before
        assert commit_syncs < 32  # far fewer fsyncs than commits
        assert wal.group_deferrals > 0
        db.close()

    def test_full_syncs_every_commit(self, tmp_path):
        db = Database(str(tmp_path / "f.odb"), durability="full")
        db.create(Event)
        wal = wal_of(db)
        syncs_before = wal.syncs
        for i in range(10):
            db.pnew(Event, tag="t%d" % i, seq=i)
        assert wal.syncs - syncs_before >= 10
        db.close()

    def test_tightening_flushes_pending(self, tmp_path):
        db = Database(str(tmp_path / "t.odb"), durability="group")
        db.set_durability("group", group_size=1000, group_window=3600.0)
        db.create(Event)
        db.pnew(Event, tag="pending")
        wal = wal_of(db)
        assert wal._pending_commits > 0
        db.set_durability("full")
        assert wal._pending_commits == 0
        db.close()

    def test_group_size_threshold_triggers_flush(self, tmp_path):
        # Drive the raw WAL: through a Database, page write-backs may
        # flush (and thus drain the pending group) between commits.
        wal = WriteAheadLog(str(tmp_path / "w"), durability="group",
                            group_size=4, group_window=3600.0)
        for txn in range(1, 4):
            lsn = wal.log_begin(txn)
            wal.log_commit(txn, lsn)
        assert wal._pending_commits == 3
        syncs = wal.syncs
        lsn = wal.log_begin(4)
        wal.log_commit(4, lsn)  # 4th pending commit: threshold reached
        assert wal._pending_commits == 0
        assert wal.syncs == syncs + 1
        wal.close()

    def test_counters_in_db_stats(self, tmp_path):
        db = Database(str(tmp_path / "c.odb"), durability="group")
        db.set_durability("group", group_size=64, group_window=3600.0)
        db.create(Event)
        for i in range(8):
            db.pnew(Event, tag="t%d" % i)
        wal_stats = db.stats()["wal"]
        assert wal_stats["durability"] == "group"
        assert wal_stats["group_deferrals"] > 0
        assert wal_stats["flush_calls"] >= wal_stats["syncs"]
        db.close()


class TestCrashSemantics:
    def crash(self, db):
        db.store.crash()
        db._closed = True

    def test_full_commit_survives_crash(self, tmp_path):
        path = str(tmp_path / "full.odb")
        db = Database(path, durability="full")
        db.create(Event)
        oid = db.pnew(Event, tag="durable", seq=1).oid
        self.crash(db)
        db2 = Database(path)
        assert db2.deref(oid).tag == "durable"
        db2.close()

    def test_group_commit_after_flush_survives_crash(self, tmp_path):
        path = str(tmp_path / "grp.odb")
        db = Database(path, durability="group")
        db.create(Event)
        oid = db.pnew(Event, tag="flushed", seq=1).oid
        wal_of(db).flush()  # the batch fsync
        self.crash(db)
        db2 = Database(path)
        assert db2.deref(oid).tag == "flushed"
        db2.close()

    def test_unsynced_group_commits_vanish_atomically(self, tmp_path):
        """A crash inside the group window may lose the pending commits,
        but never corrupts: recovery sees a clean prefix of the log."""
        path = str(tmp_path / "lossy.odb")
        db = Database(path, durability="group")
        db.set_durability("group", group_size=10000, group_window=3600.0)
        db.create(Event)
        wal_of(db).flush()  # cluster creation durable
        for i in range(5):
            db.pnew(Event, tag="maybe%d" % i, seq=i)
        self.crash(db)
        db2 = Database(path)
        # Whatever survived, the store is consistent and each surviving
        # object is complete.
        assert db2.verify() == []
        for obj in db2.cluster(Event):
            assert obj.tag.startswith("maybe")
        db2.close()

    def test_none_mode_checkpoint_still_durable(self, tmp_path):
        path = str(tmp_path / "none.odb")
        db = Database(path, durability="none")
        db.create(Event)
        oid = db.pnew(Event, tag="ckpt", seq=1).oid
        db.checkpoint()  # checkpoints fsync in every mode
        self.crash(db)
        db2 = Database(path)
        assert db2.deref(oid).tag == "ckpt"
        assert db2.verify() == []
        db2.close()

    def test_clean_close_durable_in_every_mode(self, tmp_path):
        for mode in DURABILITY_MODES:
            path = str(tmp_path / ("close_%s.odb" % mode))
            db = Database(path, durability=mode)
            db.create(Event)
            oid = db.pnew(Event, tag=mode).oid
            db.close()
            db2 = Database(path)
            assert db2.deref(oid).tag == mode
            db2.close()
