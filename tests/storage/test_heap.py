"""Unit tests for heap files: RID stability, forwarding, overflow."""

import pytest

from repro.storage.heap import (MAX_INLINE_PAYLOAD, MIN_RECORD_SIZE, RID,
                                HeapFile)
from repro.storage.page import PAGE_SIZE


@pytest.fixture
def heap_txn(stack):
    pool, wal, journal = stack
    txn = journal.begin()
    heap = HeapFile.create(journal, txn)
    return heap, journal, txn


class TestInsertRead:
    def test_round_trip(self, heap_txn):
        heap, journal, txn = heap_txn
        rid = heap.insert(txn, b"hello heap")
        assert heap.read(rid) == b"hello heap"

    def test_many_records_span_pages(self, heap_txn):
        heap, journal, txn = heap_txn
        rids = [heap.insert(txn, b"record %04d" % i * 10)
                for i in range(200)]
        pages = {rid.page_no for rid in rids}
        assert len(pages) > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == b"record %04d" % i * 10

    def test_empty_payload(self, heap_txn):
        heap, journal, txn = heap_txn
        rid = heap.insert(txn, b"")
        assert heap.read(rid) == b""

    def test_count(self, heap_txn):
        heap, journal, txn = heap_txn
        for i in range(25):
            heap.insert(txn, b"x%d" % i)
        assert heap.count() == 25


class TestOverflow:
    def test_large_record(self, heap_txn):
        heap, journal, txn = heap_txn
        payload = b"L" * (PAGE_SIZE * 3 + 17)
        rid = heap.insert(txn, payload)
        assert heap.read(rid) == payload

    def test_boundary_payload(self, heap_txn):
        heap, journal, txn = heap_txn
        exact = heap.insert(txn, b"x" * MAX_INLINE_PAYLOAD)
        over = heap.insert(txn, b"y" * (MAX_INLINE_PAYLOAD + 1))
        assert len(heap.read(exact)) == MAX_INLINE_PAYLOAD
        assert len(heap.read(over)) == MAX_INLINE_PAYLOAD + 1

    def test_overflow_update_and_shrink(self, heap_txn):
        heap, journal, txn = heap_txn
        rid = heap.insert(txn, b"big" * 5000)
        heap.update(txn, rid, b"small now")
        assert heap.read(rid) == b"small now"

    def test_overflow_delete_frees_chain(self, stack):
        pool, wal, journal = stack
        txn = journal.begin()
        heap = HeapFile.create(journal, txn)
        pages_before = pool._pagefile.page_count
        rid = heap.insert(txn, b"B" * (PAGE_SIZE * 4))
        heap.delete(txn, rid)
        journal.commit(txn)
        # Freed overflow pages are recyclable.
        txn2 = journal.begin()
        rid2 = heap.insert(txn2, b"C" * (PAGE_SIZE * 4))
        journal.commit(txn2)
        assert pool._pagefile.page_count <= pages_before + 6


class TestUpdate:
    def test_in_place(self, heap_txn):
        heap, journal, txn = heap_txn
        rid = heap.insert(txn, b"aaaa")
        heap.update(txn, rid, b"bbbb")
        assert heap.read(rid) == b"bbbb"

    def test_grow_with_forwarding(self, heap_txn):
        heap, journal, txn = heap_txn
        # Fill a page with records so growth forces relocation.
        rids = [heap.insert(txn, b"r" * 300) for _ in range(12)]
        target = rids[0]
        heap.update(txn, target, b"G" * 3000)
        assert heap.read(target) == b"G" * 3000  # same RID still works
        for rid in rids[1:]:
            assert heap.read(rid) == b"r" * 300

    def test_forwarded_record_updates_again(self, heap_txn):
        heap, journal, txn = heap_txn
        rids = [heap.insert(txn, b"r" * 300) for _ in range(12)]
        target = rids[0]
        heap.update(txn, target, b"G" * 3000)   # relocates
        heap.update(txn, target, b"H" * 3500)   # relocates again
        heap.update(txn, target, b"i" * 10)     # shrinks back
        assert heap.read(target) == b"i" * 10

    def test_scan_reports_home_rid_for_forwarded(self, heap_txn):
        heap, journal, txn = heap_txn
        rids = [heap.insert(txn, b"r" * 300) for _ in range(12)]
        heap.update(txn, rids[0], b"G" * 3000)
        scanned = dict(heap.scan())
        assert scanned[rids[0]] == b"G" * 3000
        assert len(scanned) == 12


class TestDelete:
    def test_delete_removes(self, heap_txn):
        heap, journal, txn = heap_txn
        rid = heap.insert(txn, b"bye")
        heap.delete(txn, rid)
        assert heap.count() == 0

    def test_delete_forwarded(self, heap_txn):
        heap, journal, txn = heap_txn
        rids = [heap.insert(txn, b"r" * 300) for _ in range(12)]
        heap.update(txn, rids[0], b"G" * 3000)
        heap.delete(txn, rids[0])
        assert heap.count() == 11

    def test_space_reuse(self, heap_txn):
        heap, journal, txn = heap_txn
        rids = [heap.insert(txn, b"x" * 100) for _ in range(30)]
        for rid in rids:
            heap.delete(txn, rid)
        # Space from deletions is reused: new inserts should not grow far.
        before = heap._pool._pagefile.page_count
        for _ in range(30):
            heap.insert(txn, b"y" * 100)
        assert heap._pool._pagefile.page_count <= before + 1


class TestScan:
    def test_scan_order_and_content(self, heap_txn):
        heap, journal, txn = heap_txn
        expected = {}
        for i in range(60):
            payload = b"item-%03d" % i
            expected[heap.insert(txn, payload)] = payload
        assert dict(heap.scan()) == expected

    def test_scan_sees_inserts_behind_cursor(self, heap_txn):
        """The fixpoint property: records appended during a scan are
        visited by the same scan."""
        heap, journal, txn = heap_txn
        heap.insert(txn, b"seed")
        seen = []
        added = [False]
        for rid, payload in heap.scan():
            seen.append(payload)
            if not added[0]:
                heap.insert(txn, b"added-during-scan")
                added[0] = True
        assert b"added-during-scan" in seen

    def test_transactional_rollback(self, stack):
        pool, wal, journal = stack
        setup = journal.begin()
        heap = HeapFile.create(journal, setup)
        keep = heap.insert(setup, b"keep")
        journal.commit(setup)

        txn = journal.begin()
        heap.insert(txn, b"rollback me")
        heap.update(txn, keep, b"KEEP-MUTATED")
        journal.abort(txn)
        assert heap.read(keep) == b"keep"
        assert heap.count() == 1
