"""Shutdown-ordering regression: the final checkpoint must not race
in-flight scans or maintenance (the close()-vs-scan hazard fixed in the
server PR — pinned here)."""

import threading
import time

import pytest

from repro.core import IntField, OdeObject
from repro.core.database import Database
from repro.errors import StorageError


class QObj(OdeObject):
    n = IntField(default=0)


class TestStoreQuiesce:
    def test_quiesce_with_no_readers_is_immediate(self, tmp_path):
        db = Database(str(tmp_path / "q.odb"))
        try:
            assert db.store.quiesce(timeout=1.0) is True
        finally:
            db.close()

    def test_quiesce_waits_for_reader_then_succeeds(self, tmp_path):
        db = Database(str(tmp_path / "q.odb"))
        store = db.store
        entered = threading.Event()
        release = threading.Event()
        done = {}

        def reader():
            store._scan_enter()
            entered.set()
            release.wait(5.0)
            store._scan_exit()
            done["exited"] = True

        t = threading.Thread(target=reader)
        t.start()
        entered.wait(5.0)
        # A stuck reader makes quiesce time out (it must never hang).
        assert store.quiesce(timeout=0.3) is False
        release.set()
        t.join()
        assert store.quiesce(timeout=5.0) is True
        assert done.get("exited")
        # After quiesce, new scans are refused — nothing can sneak in
        # between the drain and the final checkpoint.
        with pytest.raises(StorageError, match="shutting down"):
            store._scan_enter()
        store._quiesced = False  # undo for clean close

    def test_close_waits_for_inflight_scan(self, tmp_path):
        """A scan running while close() is called must finish (or be
        fenced) before the final checkpoint — close() must neither hang
        nor corrupt."""
        path = str(tmp_path / "c.odb")
        db = Database(path)
        db.create(QObj)
        with db.transaction():
            for i in range(300):
                db.pnew(QObj, n=i)
        scanning = threading.Event()
        results = {}

        def slow_scan():
            try:
                total = 0
                for obj in db.cluster(QObj):
                    total += obj.n
                    scanning.set()
                    time.sleep(0.001)
                results["total"] = total
            except StorageError as exc:
                # Acceptable: the scan was fenced off by the shutdown.
                results["fenced"] = str(exc)

        t = threading.Thread(target=slow_scan)
        t.start()
        assert scanning.wait(10.0)
        db.close()
        t.join(timeout=15.0)
        assert not t.is_alive(), "scan thread wedged by close()"
        assert "total" in results or "fenced" in results
        # The store shut down cleanly: it reopens and verifies.
        db2 = Database(path)
        try:
            assert db2.verify() == []
            assert sum(1 for _ in db2.cluster(QObj)) == 300
        finally:
            db2.close()

    def test_recluster_daemon_stopped_before_checkpoint(self, tmp_path,
                                                        monkeypatch):
        """Database.close() on a sharded store with the recluster daemon
        running must stop the daemon before the final checkpoint."""
        monkeypatch.setenv("REPRO_RECLUSTER_INTERVAL", "0.05")
        path = str(tmp_path / "s.odb")
        db = Database(path, shards=4)
        assert db.recluster_daemon is not None
        db.create(QObj)
        with db.transaction():
            for i in range(200):
                db.pnew(QObj, n=i)
        time.sleep(0.2)  # let the daemon run at least once
        db.close()
        db2 = Database(path, shards=4)
        try:
            assert db2.verify() == []
        finally:
            db2.close()
