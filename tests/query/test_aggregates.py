"""Tests for aggregates over forall iterations."""

import pytest

from repro.core import FloatField, IntField, OdeObject, StringField
from repro.query import A, avg, count, forall, group_by, max_, min_, sum_


class Sale(OdeObject):
    region = StringField(default="")
    amount = FloatField(default=0.0)
    units = IntField(default=0)


@pytest.fixture
def sales(db):
    db.create(Sale)
    data = [("east", 10.0, 1), ("east", 20.0, 2), ("west", 5.0, 1),
            ("west", 15.0, 3), ("north", 100.0, 10)]
    for region, amount, units in data:
        db.pnew(Sale, region=region, amount=amount, units=units)
    return db


class TestScalarAggregates:
    def test_count(self, sales):
        assert count(forall(sales.cluster(Sale))) == 5
        assert count(forall(sales.cluster(Sale)), lambda s: s.units > 1) == 3

    def test_sum(self, sales):
        assert sum_(forall(sales.cluster(Sale)), A.amount) == 150.0
        assert sum_(forall(sales.cluster(Sale)), "units") == 17

    def test_avg(self, sales):
        assert avg(forall(sales.cluster(Sale)), A.amount) == 30.0

    def test_avg_empty_is_none(self, db):
        db.create(Sale)
        assert avg(forall(db.cluster(Sale)), A.amount) is None

    def test_min_max(self, sales):
        assert min_(forall(sales.cluster(Sale)), A.amount) == 5.0
        assert max_(forall(sales.cluster(Sale)), A.amount) == 100.0

    def test_min_empty_is_none(self, db):
        db.create(Sale)
        assert min_(forall(db.cluster(Sale)), A.amount) is None

    def test_identity_value(self):
        assert sum_(forall([1, 2, 3])) == 6

    def test_callable_value(self, sales):
        total = sum_(forall(sales.cluster(Sale)),
                     lambda s: s.amount * s.units)
        assert total == 10.0 + 40.0 + 5.0 + 45.0 + 1000.0


class TestGroupBy:
    def test_plain_groups(self, sales):
        groups = group_by(forall(sales.cluster(Sale)), key=A.region)
        assert set(groups) == {"east", "west", "north"}
        assert len(groups["east"]) == 2

    def test_value_and_reduce(self, sales):
        totals = group_by(forall(sales.cluster(Sale)), key=A.region,
                          value=A.amount, reduce=sum)
        assert totals == {"east": 30.0, "west": 20.0, "north": 100.0}

    def test_reduce_len(self, sales):
        sizes = group_by(forall(sales.cluster(Sale)), key=A.region,
                         value=A.units, reduce=len)
        assert sizes == {"east": 2, "west": 2, "north": 1}

    def test_income_averages_like_paper(self, sales):
        """The shape of 3.1.1's income program, via group_by."""
        averages = group_by(forall(sales.cluster(Sale)), key=A.region,
                            value=A.amount,
                            reduce=lambda xs: sum(xs) / len(xs))
        assert averages["east"] == 15.0
