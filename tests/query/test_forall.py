"""Tests for the forall iteration facility (paper section 3.1)."""

import pytest

from repro.core import (FloatField, IntField, OdeObject, OdeSet, RefField,
                        StringField)
from repro.errors import QueryError
from repro.query import A, forall


class ShopItem(OdeObject):
    name = StringField(default="")
    price = FloatField(default=0.0)
    qty = IntField(default=0)


class ShopChild(OdeObject):
    parent_name = StringField(default="")
    age = IntField(default=0)


@pytest.fixture
def stocked(db):
    db.create(ShopItem)
    rows = [("dram", 5.0, 100), ("z80", 2.5, 40), ("rom", 2.9, 7),
            ("cpu", 99.0, 3), ("led", 0.1, 500)]
    for name, price, qty in rows:
        db.pnew(ShopItem, name=name, price=price, qty=qty)
    return db


class TestSingleSource:
    def test_plain_iteration(self, stocked):
        names = {i.name for i in forall(stocked.cluster(ShopItem))}
        assert names == {"dram", "z80", "rom", "cpu", "led"}

    def test_suchthat_predicate(self, stocked):
        cheap = forall(stocked.cluster(ShopItem)).suchthat(A.price < 3.0)
        assert {i.name for i in cheap} == {"z80", "rom", "led"}

    def test_suchthat_callable(self, stocked):
        q = forall(stocked.cluster(ShopItem)).suchthat(
            lambda i: i.qty * i.price >= 100)
        assert {i.name for i in q} == {"dram", "cpu", "z80"}

    def test_by_ordering(self, stocked):
        q = forall(stocked.cluster(ShopItem)).suchthat(A.price < 3.0).by(A.name)
        assert [i.name for i in q] == ["led", "rom", "z80"]

    def test_by_desc(self, stocked):
        q = forall(stocked.cluster(ShopItem)).by(A.price, desc=True)
        assert [i.name for i in q][0] == "cpu"

    def test_by_key_function(self, stocked):
        q = forall(stocked.cluster(ShopItem)).by(lambda i: i.qty * i.price)
        values = [i.qty * i.price for i in q]
        assert values == sorted(values)

    def test_by_multiple_keys(self, stocked):
        stocked.pnew(ShopItem, name="z80", price=9.0, qty=1)
        q = forall(stocked.cluster(ShopItem)).by(A.name).by(A.price)
        pairs = [(i.name, i.price) for i in q]
        assert pairs == sorted(pairs)

    def test_double_suchthat_rejected(self, stocked):
        q = forall(stocked.cluster(ShopItem)).suchthat(A.price < 1)
        with pytest.raises(QueryError):
            q.suchthat(A.qty > 1)

    def test_over_ode_set(self):
        s = OdeSet([3, 1, 4, 1, 5])
        assert forall(s).suchthat(lambda x: x > 2).by(lambda x: x).to_list() \
            == [3, 4, 5]

    def test_over_list(self):
        assert forall([5, 2, 9]).by(lambda x: x).to_list() == [2, 5, 9]

    def test_empty_source(self, db):
        db.create(ShopItem)
        assert forall(db.cluster(ShopItem)).to_list() == []

    def test_no_sources_rejected(self):
        with pytest.raises(QueryError):
            forall()

    def test_terminal_helpers(self, stocked):
        q = forall(stocked.cluster(ShopItem)).suchthat(A.price < 3.0)
        assert q.count() == 3
        assert q.first() is not None
        assert forall(stocked.cluster(ShopItem)).suchthat(
            A.price > 1000).first() is None


class TestJoins:
    def test_cross_product(self, db):
        db.create(ShopItem)
        db.create(ShopChild)
        for n in ("a", "b"):
            db.pnew(ShopItem, name=n)
        for n in ("x", "y", "z"):
            db.pnew(ShopChild, parent_name=n)
        pairs = forall(db.cluster(ShopItem), db.cluster(ShopChild)).to_list()
        assert len(pairs) == 6

    def test_join_predicate(self, db):
        """The paper's employee/child example shape."""
        db.create(ShopItem)
        db.create(ShopChild)
        db.pnew(ShopItem, name="smith")
        db.pnew(ShopItem, name="jones")
        db.pnew(ShopChild, parent_name="smith", age=4)
        db.pnew(ShopChild, parent_name="smith", age=9)
        db.pnew(ShopChild, parent_name="ng", age=2)
        matched = forall(db.cluster(ShopItem), db.cluster(ShopChild)).suchthat(
            lambda e, c: e.name == c.parent_name).to_list()
        assert len(matched) == 2
        assert all(e.name == c.parent_name for e, c in matched)

    def test_self_join(self, stocked):
        q = forall(stocked.cluster(ShopItem), stocked.cluster(ShopItem)).suchthat(
            lambda a, b: a.price < b.price)
        n = q.count()
        assert n == 10  # 5 choose 2 ordered pairs with strict order

    def test_join_ordering(self, db):
        db.create(ShopItem)
        db.pnew(ShopItem, name="b", qty=1)
        db.pnew(ShopItem, name="a", qty=2)
        q = forall(db.cluster(ShopItem), db.cluster(ShopItem)).by(
            lambda x, y: (x.name, y.name))
        rows = [(x.name, y.name) for x, y in q]
        assert rows == sorted(rows)

    def test_join_with_attrexpr_order_rejected(self, db):
        db.create(ShopItem)
        db.pnew(ShopItem)
        q = forall(db.cluster(ShopItem), db.cluster(ShopItem)).by(A.name)
        with pytest.raises(QueryError):
            list(q)

    def test_triple_join(self):
        q = forall([1, 2], "ab", [True])
        assert q.count() == 4


class TestGrowthSemantics:
    def test_unordered_iteration_sees_inserts(self, db):
        """Section 3.2 through forall: no `by`, growing cluster."""
        db.create(ShopItem)
        db.pnew(ShopItem, name="seed", qty=0)
        count = 0
        for item in forall(db.cluster(ShopItem)):
            count += 1
            if count < 4:
                db.pnew(ShopItem, name="gen", qty=count)
        assert count == 4

    def test_ordered_iteration_snapshots(self, db):
        db.create(ShopItem)
        db.pnew(ShopItem, name="seed")
        seen = []
        for item in forall(db.cluster(ShopItem)).by(A.name):
            seen.append(item.name)
            if len(seen) < 3:
                db.pnew(ShopItem, name="later%d" % len(seen))
        assert seen == ["seed"]  # by() sorts a snapshot


class TestExplain:
    def test_full_scan_reported(self, stocked):
        q = forall(stocked.cluster(ShopItem)).suchthat(lambda i: True)
        assert "full scan" in q.explain()

    def test_join_reported(self, stocked):
        q = forall(stocked.cluster(ShopItem), stocked.cluster(ShopItem))
        assert "join" in q.explain()


class TestHashEquijoin:
    @pytest.fixture
    def families(self, db):
        db.create(ShopItem)
        db.create(ShopChild)
        for name in ("smith", "jones", "ng"):
            db.pnew(ShopItem, name=name)
        kids = [("smith", 4), ("smith", 9), ("jones", 2), ("zzz", 1)]
        for parent, age in kids:
            db.pnew(ShopChild, parent_name=parent, age=age)
        return db

    def test_matches_nested_loop(self, families):
        db = families
        fast = forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
            A.name, A.parent_name)
        slow = forall(db.cluster(ShopItem), db.cluster(ShopChild)).suchthat(
            lambda e, c: e.name == c.parent_name)
        fast_pairs = {(e.name, c.age) for e, c in fast}
        slow_pairs = {(e.name, c.age) for e, c in slow}
        assert fast_pairs == slow_pairs == {("smith", 4), ("smith", 9),
                                            ("jones", 2)}

    def test_residual_filter(self, families):
        db = families
        q = forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
            A.name, A.parent_name).suchthat(lambda e, c: c.age > 3)
        assert {(e.name, c.age) for e, c in q} == {("smith", 4),
                                                   ("smith", 9)}

    def test_ordering_applies(self, families):
        db = families
        q = forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
            A.name, A.parent_name).by(lambda e, c: c.age)
        ages = [c.age for _, c in q]
        assert ages == sorted(ages)

    def test_three_way_join(self):
        xs = [1, 2, 3]
        ys = [2, 3, 4]
        zs = [3, 2, 9]
        q = forall(xs, ys, zs).join_on(lambda x: x, lambda y: y,
                                       lambda z: z)
        assert sorted(q.to_list()) == [(2, 2, 2), (3, 3, 3)]

    def test_key_count_validation(self, families):
        db = families
        with pytest.raises(QueryError):
            forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
                A.name)

    def test_explain(self, families):
        db = families
        q = forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
            A.name, A.parent_name)
        assert "hash equijoin" in q.explain()

    def test_key_fn_by_field_name(self, families):
        db = families
        q = forall(db.cluster(ShopItem), db.cluster(ShopChild)).join_on(
            "name", "parent_name")
        assert q.count() == 3


class TestLimitAndExists:
    def test_limit(self, stocked):
        q = forall(stocked.cluster(ShopItem)).by(A.name).limit(2)
        assert [i.name for i in q] == ["cpu", "dram"]

    def test_limit_zero(self, stocked):
        assert forall(stocked.cluster(ShopItem)).limit(0).to_list() == []

    def test_limit_negative_rejected(self, stocked):
        with pytest.raises(QueryError):
            forall(stocked.cluster(ShopItem)).limit(-1)

    def test_limit_on_join(self, stocked):
        q = forall(stocked.cluster(ShopItem),
                   stocked.cluster(ShopItem)).limit(3)
        assert len(q.to_list()) == 3

    def test_exists(self, stocked):
        assert forall(stocked.cluster(ShopItem)).suchthat(
            A.price > 90).exists()
        assert not forall(stocked.cluster(ShopItem)).suchthat(
            A.price > 900).exists()


class TestIndexOrderedScan:
    def test_sort_elided_when_index_orders(self, stocked):
        """by(A.f) over an IndexRange on f needs no sort; results must
        still come out ordered."""
        stocked.create_index(ShopItem, "price", kind="btree")
        q = forall(stocked.cluster(ShopItem)).suchthat(
            A.price > 0.0).by(A.price)
        prices = [i.price for i in q]
        assert prices == sorted(prices)
        assert len(prices) == 5

    def test_desc_over_index(self, stocked):
        stocked.create_index(ShopItem, "qty", kind="btree")
        q = forall(stocked.cluster(ShopItem)).suchthat(
            A.qty >= 0).by(A.qty, desc=True)
        qtys = [i.qty for i in q]
        assert qtys == sorted(qtys, reverse=True)


class TestCompiledResiduals:
    """The hot residual-filter loops must run the *compiled* closures, not
    interpreted ``Predicate.__call__`` double dispatch. Breaking
    ``__call__`` and observing that queries still work proves it."""

    def test_full_scan_residual_runs_compiled_closure(self, stocked,
                                                      monkeypatch):
        from repro.query import predicates

        def boom(self, obj):
            raise AssertionError("interpreted Compare.__call__ used "
                                 "in a scan residual")
        monkeypatch.setattr(predicates.Compare, "__call__", boom)
        # A non-indexed field comparison: full scan + residual filter.
        q = forall(stocked.cluster(ShopItem)).suchthat(A.qty >= 100)
        assert {i.name for i in q} == {"dram", "led"}

    def test_fused_join_residual_runs_compiled_closure(self, stocked,
                                                       monkeypatch):
        from repro.query import predicates
        from repro.query.predicates import V
        stocked.create(ShopChild)
        stocked.pnew(ShopChild, parent_name="dram", age=3)
        stocked.pnew(ShopChild, parent_name="led", age=9)

        def boom(self, row):
            raise AssertionError("interpreted JoinCompare.__call__ used "
                                 "in a join residual")
        monkeypatch.setattr(predicates.JoinCompare, "__call__", boom)
        items = stocked.cluster(ShopItem)
        kids = stocked.cluster(ShopChild)
        # Equality joins hash; the < comparison is a residual conjunct.
        q = forall(items, kids).suchthat(
            (V[0].name == V[1].parent_name) & (V[0].price < V[1].age))
        assert {(i.name, c.age) for i, c in q} == {("led", 9)}

    def test_callable_residual_compiled_in_hash_join(self, stocked):
        stocked.create(ShopChild)
        stocked.pnew(ShopChild, parent_name="dram", age=3)
        stocked.pnew(ShopChild, parent_name="z80", age=5)
        items = stocked.cluster(ShopItem)
        kids = stocked.cluster(ShopChild)
        q = forall(items, kids).join_on(A.name, A.parent_name).suchthat(
            lambda i, c: c.age > 4)
        assert {(i.name, c.age) for i, c in q} == {("z80", 5)}

    def test_callable_predicate_has_compiled_form(self):
        from repro.query.predicates import Callable_
        pred = Callable_(lambda obj: obj > 3)
        check = pred.compiled()
        assert check is pred.compiled()      # cached
        assert check(5) is True
        assert check(1) is False
