"""Tests for fixpoint / recursive queries (paper section 3.2)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (IntField, OdeObject, OdeSet, RefField, SetField,
                        StringField)
from repro.query import (fixpoint, growing_iteration, reachable_objects,
                         semi_naive, transitive_closure)


def chain_edges(n):
    return {i: ([i + 1] if i + 1 < n else []) for i in range(n)}


class TestSemiNaive:
    def test_chain(self):
        edges = chain_edges(50)
        assert len(semi_naive([0], lambda x: edges[x])) == 50

    def test_cycle_terminates(self):
        edges = {0: [1], 1: [2], 2: [0]}
        result = semi_naive([0], lambda x: edges[x])
        assert result == {0, 1, 2}

    def test_diamond_visits_once(self):
        calls = []
        edges = {0: [1, 2], 1: [3], 2: [3], 3: []}

        def expand(x):
            calls.append(x)
            return edges[x]

        result = semi_naive([0], expand)
        assert result == {0, 1, 2, 3}
        assert sorted(calls) == [0, 1, 2, 3]  # each expanded exactly once

    def test_empty_seed(self):
        assert len(semi_naive([], lambda x: [x])) == 0


class TestNaiveFixpoint:
    def test_matches_semi_naive(self):
        edges = {i: [(i * 2) % 30, (i + 7) % 30] for i in range(30)}
        a = fixpoint([0], lambda s: [t for x in s.snapshot()
                                     for t in edges[x]])
        b = semi_naive([0], lambda x: edges[x])
        assert a == b


class TestGrowingIteration:
    def test_paper_idiom(self):
        """Insert into the set being iterated; iteration picks it up."""
        edges = chain_edges(20)

        def visit(x, working):
            for y in edges[x]:
                working.insert(y)

        assert len(growing_iteration([0], visit)) == 20


class TestTransitiveClosure:
    def test_include_roots_flag(self):
        edges = {0: [1], 1: []}
        with_roots = transitive_closure([0], lambda x: edges[x])
        without = transitive_closure([0], lambda x: edges[x],
                                     include_roots=False)
        assert with_roots == {0, 1}
        assert without == {1}

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    max_size=60))
    @settings(max_examples=100)
    def test_matches_networkx(self, edge_list):
        """Property: our closure == networkx descendants, on random graphs."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(21))
        graph.add_edges_from(edge_list)
        ours = transitive_closure([0], lambda n: graph.successors(n),
                                  include_roots=False)
        theirs = nx.descendants(graph, 0)
        assert ours.snapshot() == frozenset(theirs)


class BomPart(OdeObject):
    """The parts-explosion schema from deductive-database folklore."""
    name = StringField(default="")
    uses = SetField("BomPart")
    boss = RefField("BomPart")


class TestReachableObjects:
    @pytest.fixture
    def parts_db(self, db):
        db.create(BomPart)
        leaf1 = db.pnew(BomPart, name="bolt")
        leaf2 = db.pnew(BomPart, name="nut")
        sub = db.pnew(BomPart, name="bracket")
        sub.uses.insert(leaf1.oid)
        sub.uses.insert(leaf2.oid)
        sub.uses = sub.uses
        top = db.pnew(BomPart, name="frame")
        top.uses.insert(sub.oid)
        top.uses = top.uses
        lone = db.pnew(BomPart, name="unrelated")
        with db.transaction():
            pass
        return db, top, lone

    def test_explosion(self, parts_db):
        db, top, lone = parts_db
        closure = reachable_objects(db, [top], via=["uses"])
        names = {db.deref(o).name for o in closure}
        assert names == {"frame", "bracket", "bolt", "nut"}
        assert lone.oid not in closure

    def test_via_ref_field(self, parts_db):
        db, top, lone = parts_db
        lone.boss = top
        with db.transaction():
            pass
        closure = reachable_objects(db, [lone], via=["boss", "uses"])
        assert len(closure) == 5

    def test_cyclic_references_terminate(self, db):
        db.create(BomPart)
        a = db.pnew(BomPart, name="a")
        b = db.pnew(BomPart, name="b")
        a.boss = b
        b.boss = a
        with db.transaction():
            pass
        closure = reachable_objects(db, [a], via=["boss"])
        assert len(closure) == 2


class TestClusterFixpointQueries:
    def test_recursive_query_over_growing_cluster(self, db):
        """Section 3.2's headline behaviour at the cluster level: a forall
        over a cluster visits objects pnew'ed during the loop, so the
        loop below computes a closure with no explicit worklist."""
        class BomNode(OdeObject):
            depth = IntField(default=0)

        db.create(BomNode)
        db.pnew(BomNode, depth=0)
        visited = 0
        for node in db.cluster(BomNode):
            visited += 1
            if node.depth < 4:
                db.pnew(BomNode, depth=node.depth + 1)
                db.pnew(BomNode, depth=node.depth + 1)
        # 1 + 2 + 4 + 8 + 16 nodes all visited by the single loop
        assert visited == 31
