"""Property-based testing of the query optimizer.

For random predicates over a fixed dataset, every index configuration must
return exactly the brute-force answer. This is the strongest guarantee we
can give about plan selection: indexes change speed, never results.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Database, FloatField, IntField, OdeObject, StringField
from repro.query import A, forall
from repro.query.predicates import And, Compare, Or, as_predicate

FIELDS = {
    "alpha": st.integers(min_value=0, max_value=9),
    "beta": st.floats(min_value=0.0, max_value=5.0).map(
        lambda x: round(x * 2) / 2.0),
    "gamma": st.sampled_from(["red", "green", "blue"]),
}

OPS = ["==", "!=", "<", "<=", ">", ">="]


class PropRow(OdeObject):
    alpha = IntField(default=0)
    beta = FloatField(default=0.0)
    gamma = StringField(default="")


def comparison_for(field):
    return st.tuples(st.sampled_from(OPS), FIELDS[field]).map(
        lambda ov: Compare(field, ov[0], ov[1]))


predicates = st.recursive(
    st.sampled_from(list(FIELDS)).flatmap(comparison_for),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda ab: And(*ab)),
        st.tuples(children, children).map(lambda ab: Or(*ab)),
    ),
    max_leaves=4,
)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    """One module-scoped database, three index configurations as clusters."""
    path = tmp_path_factory.mktemp("qprop") / "q.odb"
    db = Database(str(path))
    db.create(PropRow)
    rows = []
    for i in range(150):
        rows.append(dict(alpha=i % 10, beta=(i % 11) / 2.0,
                         gamma=["red", "green", "blue"][i % 3]))
    with db.transaction():
        for row in rows:
            db.pnew(PropRow, **row)
    db.create_index(PropRow, "alpha", kind="hash")
    db.create_index(PropRow, "beta", kind="btree")
    db.create_index(PropRow, ("gamma", "alpha"), kind="btree")
    yield db
    db.close()


class TestOptimizerEquivalence:
    @given(pred=predicates)
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_indexed_equals_brute_force(self, dataset, pred):
        db = dataset
        fast = sorted(r.oid.serial
                      for r in forall(db.cluster(PropRow)).suchthat(pred))
        check = as_predicate(pred)
        slow = sorted(r.oid.serial for r in db.cluster(PropRow)
                      if check(r))
        assert fast == slow

    @given(pred=predicates,
           order_field=st.sampled_from(list(FIELDS)),
           desc=st.booleans())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ordering_correct_for_any_plan(self, dataset, pred,
                                           order_field, desc):
        db = dataset
        rows = forall(db.cluster(PropRow)).suchthat(pred).by(
            getattr(A, order_field), desc=desc).to_list()
        values = [getattr(r, order_field) for r in rows]
        assert values == sorted(values, reverse=desc)

    @given(pred=predicates, n=st.integers(min_value=0, max_value=20))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_limit_prefix_of_full_result(self, dataset, pred, n):
        db = dataset
        full = [r.oid.serial for r in
                forall(db.cluster(PropRow)).suchthat(pred).by(
                    lambda r: r.oid.serial)]
        limited = [r.oid.serial for r in
                   forall(db.cluster(PropRow)).suchthat(pred).by(
                       lambda r: r.oid.serial).limit(n)]
        assert limited == full[:n]
