"""Unit tests for the plan-to-code backend (query/codegen.py) and the
O++ body compiler (opp/codegen.py): cache keying and invalidation,
linecache registration, explain/dump-code output, metrics wiring, and
the disable switches."""

import linecache

import pytest

from repro.core import Database, IntField, OdeObject, StringField
from repro.obs import render_prometheus
from repro.opp import codegen as opp_codegen
from repro.opp.interp import Interpreter
from repro.query import V, forall
from repro.query import codegen as qcodegen
from repro.query.predicates import Compare


@pytest.fixture(autouse=True)
def _strict_codegen(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "1")
    monkeypatch.setenv("REPRO_CODEGEN_STRICT", "1")


class CacheRow(OdeObject):
    num = IntField(default=0)
    tag = StringField(default="")


@pytest.fixture
def filled(db):
    db.create(CacheRow)
    with db.transaction():
        for i in range(40):
            db.pnew(CacheRow, num=i, tag="t%d" % (i % 4))
    return db


class TestCache:
    def test_repeat_shape_hits_cache(self, filled):
        db = filled
        handle = db.cluster(CacheRow)
        base_misses = db.codegen_cache.misses
        base_hits = db.codegen_cache.hits
        assert forall(handle).suchthat(Compare("num", "<", 10)).count() == 10
        assert db.codegen_cache.misses == base_misses + 1
        # same shape, different constant: the structural key matches
        assert forall(handle).suchthat(Compare("num", "<", 20)).count() == 20
        assert db.codegen_cache.misses == base_misses + 1
        assert db.codegen_cache.hits == base_hits + 1

    def test_ddl_invalidates_cluster_entries(self, filled):
        db = filled
        handle = db.cluster(CacheRow)
        forall(handle).suchthat(Compare("num", "<", 10)).count()
        before = db.codegen_cache.invalidations
        db.create_index(CacheRow, "num", kind="btree")
        assert db.codegen_cache.invalidations > before

    def test_analyze_clears_cache(self, filled):
        db = filled
        forall(db.cluster(CacheRow)).suchthat(Compare("num", "<", 5)).count()
        assert db.codegen_cache.stats()["entries"] > 0
        db.analyze(CacheRow)
        assert db.codegen_cache.stats()["entries"] == 0

    def test_generated_source_in_linecache(self, filled):
        db = filled
        q = forall(db.cluster(CacheRow)).suchthat(Compare("num", ">", 35))
        assert q.count() == 4
        entry = next(iter(db.codegen_cache._entries.values()))
        assert entry.filename.startswith("<ode-codegen:")
        lines = linecache.getlines(entry.filename)
        assert lines and lines[0].startswith("def __ode_pipeline")

    def test_compile_ns_accounted(self, filled):
        db = filled
        forall(db.cluster(CacheRow)).suchthat(Compare("num", "<", 3)).count()
        assert db.codegen_cache.stats()["compile_ns"] > 0


class TestExplain:
    def test_explain_shows_mode_and_code(self, filled):
        db = filled
        q = forall(db.cluster(CacheRow)).suchthat(Compare("num", "<", 7))
        text = q.explain()
        assert "execution: compiled" in text
        with_code = q.explain(code=True)
        assert "def __ode_pipeline" in with_code
        q2 = forall(db.cluster(CacheRow)).suchthat(
            Compare("num", "<", 7)).codegen(False)
        assert "execution: interpreted" in q2.explain()
        assert "generated code: none" in q2.explain(code=True)

    def test_explain_analyze_notes_fallback(self, filled):
        db = filled
        q = forall(db.cluster(CacheRow)).suchthat(Compare("num", "<", 7))
        text = q.explain(analyze=True)
        assert "interpreted fallback (tracing)" in text

    def test_join_explain_mode(self, filled):
        db = filled
        handle = db.cluster(CacheRow)
        q = forall(handle, handle).suchthat(V[0].num == V[1].num)
        assert "execution: compiled" in q.explain()


class TestMetrics:
    def test_prometheus_exposition(self, filled):
        db = filled
        forall(db.cluster(CacheRow)).suchthat(Compare("num", "<", 9)).count()
        text = render_prometheus(db.metrics)
        assert "codegen_cache_hits" in text
        assert "codegen_cache_misses" in text
        assert "codegen_cache_invalidations" in text
        assert "codegen_compile_ns" in text
        assert 'query_exec_mode_total{mode="compiled"}' in text

    def test_exec_mode_counters(self, filled):
        db = filled
        handle = db.cluster(CacheRow)
        compiled_before = db._q_mode_compiled.value
        interp_before = db._q_mode_interpreted.value
        forall(handle).suchthat(Compare("num", "<", 9)).count()
        assert db._q_mode_compiled.value == compiled_before + 1
        forall(handle).suchthat(Compare("num", "<", 9)).codegen(False).count()
        assert db._q_mode_interpreted.value == interp_before + 1


class TestOppCodegen:
    SOURCE = """
class gadget {
    public:
        char* name;
        int qty;
        int level;
    constraint:
        qty >= 0;
    trigger:
        restock(int n) : qty <= level ==> refill(this, n);
};

void refill(gadget* g, int n) {
    g->qty = g->qty + n;
}

create gadget;
persistent gadget *gp;
transaction { gp = pnew gadget("widget", 50, 10); }
"""

    def test_bodies_compile(self, db):
        before = dict(opp_codegen.stats)
        interp = Interpreter(db)
        interp.run(self.SOURCE)
        assert opp_codegen.stats["compiled"] >= before["compiled"] + 3
        cls = interp.globals.vars["gadget"]
        check = cls.__dict__["constraint_0"]
        assert hasattr(check, "_ode_source")
        trig = cls._ode_triggers["restock"]
        assert hasattr(trig.condition, "_ode_compiled")
        assert hasattr(trig.action, "_ode_compiled")
        source = trig.action._ode_compiled._ode_source
        assert source.startswith("def __ode_body")

    def test_trigger_fires_compiled(self, db):
        interp = Interpreter(db)
        interp.run(self.SOURCE)
        interp.run("transaction { gp->restock(100); }\n"
                   "transaction { gp->qty = 5; }\n")
        cls = interp.globals.vars["gadget"]
        obj = next(iter(db.cluster(cls)))
        assert obj.qty == 105  # condition fired at 5 <= 10, +100

    def test_constraint_enforced_compiled(self, db):
        from repro.errors import ConstraintViolation
        interp = Interpreter(db)
        interp.run(self.SOURCE)
        with pytest.raises(ConstraintViolation):
            interp.run("transaction { gp->qty = -1; }\n")

    def test_disabled_falls_back(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        before = opp_codegen.stats["compiled"]
        interp = Interpreter(db)
        interp.run(self.SOURCE)
        assert opp_codegen.stats["compiled"] == before
        cls = interp.globals.vars["gadget"]
        assert not hasattr(cls.__dict__["constraint_0"], "_ode_source")
        # behavior is identical regardless
        interp.run("transaction { gp->restock(7); }\n"
                   "transaction { gp->qty = 3; }\n")
        obj = next(iter(db.cluster(cls)))
        assert obj.qty == 10

    def test_unsupported_body_falls_back(self, db):
        # a forall statement inside a trigger action has no lowering
        src = """
class oddball {
    public:
        int v;
    trigger:
        t() : v > 5 ==> { forall x in oddball printf("%d\\n", x->v); };
};
"""
        before = opp_codegen.stats["fallbacks"]
        interp = Interpreter(db)
        interp.run(src)
        assert opp_codegen.stats["fallbacks"] > before
        cls = interp.globals.vars["oddball"]
        trig = cls._ode_triggers["t"]
        assert not hasattr(trig.action, "_ode_compiled")

    def test_opp_forall_uses_plan_cache(self, db):
        interp = Interpreter(db)
        interp.run(self.SOURCE)
        interp.run("transaction { pnew gadget(\"b\", 5, 1); }\n")
        base = db.codegen_cache.misses
        interp.run('forall g in gadget suchthat (g->qty > 0) '
                   'printf("%s\\n", g->name);\n')
        assert db.codegen_cache.misses == base + 1
        interp.run('forall g in gadget suchthat (g->qty > 3) '
                   'printf("%s\\n", g->name);\n')
        # same structural shape: served from the codegen cache
        assert db.codegen_cache.misses == base + 1
        assert db.codegen_cache.hits > 0


class TestPredicateTriggerCondition:
    def test_predicate_condition_compiles(self, db):
        from repro.core.triggers import Trigger
        from repro.query.predicates import A

        fired = []

        class Widget(OdeObject):
            qty = IntField(default=0)
            poke = Trigger(condition=A.qty <= 2,
                           action=lambda self, *a: fired.append(self.qty))

        decl = Widget.__dict__["poke"]
        assert hasattr(decl.condition, "_ode_predicate")
        db.create(Widget)
        with db.transaction():
            w = db.pnew(Widget, qty=10)
        w.poke()
        with db.transaction():
            w.qty = 1
        assert fired == [1]
