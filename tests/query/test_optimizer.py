"""Tests for plan selection: index equality, index range, residuals."""

import pytest

from repro.core import FloatField, IntField, OdeObject, RefField, StringField
from repro.query import (A, FullScan, IndexEquality, IndexRange, choose_plan,
                         forall)
from repro.query.predicates import TrueP, as_predicate


class Product(OdeObject):
    sku = StringField(default="")
    price = FloatField(default=0.0)
    stock = IntField(default=0)
    vendor = StringField(default="")


@pytest.fixture
def catalog_db(db):
    db.create(Product)
    for i in range(100):
        db.pnew(Product, sku="sku%03d" % i, price=float(i % 25),
                stock=i, vendor="v%d" % (i % 4))
    db.create_index(Product, "price", kind="btree")
    db.create_index(Product, "vendor", kind="hash")
    return db


def plan_for(db, pred):
    return choose_plan(db.cluster(Product), as_predicate(pred))


class TestPlanSelection:
    def test_no_predicate_full_scan(self, catalog_db):
        assert isinstance(plan_for(catalog_db, None), FullScan)

    def test_opaque_callable_full_scan(self, catalog_db):
        assert isinstance(plan_for(catalog_db, lambda p: True), FullScan)

    def test_equality_on_hash_indexed(self, catalog_db):
        plan = plan_for(catalog_db, A.vendor == "v1")
        assert isinstance(plan, IndexEquality)
        assert plan.field == "vendor"

    def test_equality_on_btree_indexed(self, catalog_db):
        plan = plan_for(catalog_db, A.price == 3.0)
        assert isinstance(plan, IndexEquality)

    def test_range_on_btree(self, catalog_db):
        plan = plan_for(catalog_db, (A.price >= 5.0) & (A.price < 10.0))
        assert isinstance(plan, IndexRange)
        assert plan.lo == 5.0 and not plan.lo_strict
        assert plan.hi == 10.0 and plan.hi_strict

    def test_tightest_bounds_chosen(self, catalog_db):
        plan = plan_for(catalog_db,
                        (A.price > 2.0) & (A.price > 5.0) & (A.price <= 20.0))
        assert plan.lo == 5.0 and plan.lo_strict

    def test_range_on_unindexed_field_full_scan(self, catalog_db):
        plan = plan_for(catalog_db, A.stock > 50)
        assert isinstance(plan, FullScan)

    def test_range_on_hash_index_not_used(self, catalog_db):
        plan = plan_for(catalog_db, A.vendor > "v1")
        assert isinstance(plan, FullScan)

    def test_equality_preferred_over_range(self, catalog_db):
        plan = plan_for(catalog_db, (A.price < 10.0) & (A.vendor == "v2"))
        assert isinstance(plan, IndexEquality)
        assert plan.field == "vendor"

    def test_or_disables_index(self, catalog_db):
        plan = plan_for(catalog_db, (A.vendor == "v1") | (A.price == 2.0))
        assert isinstance(plan, FullScan)

    def test_non_cluster_source_full_scan(self, catalog_db):
        plan = choose_plan([1, 2, 3], as_predicate(A.vendor == "v1"))
        assert isinstance(plan, FullScan)


class TestPlanResults:
    """Whatever the plan, results must equal the brute-force answer."""

    @pytest.mark.parametrize("pred_factory", [
        lambda: A.vendor == "v1",
        lambda: A.price == 3.0,
        lambda: (A.price >= 5.0) & (A.price < 8.0),
        lambda: (A.price < 4.0) & (A.stock > 20),
        lambda: (A.vendor == "v0") & (A.price > 10.0),
        lambda: A.price.between(2.0, 6.0),
    ])
    def test_matches_brute_force(self, catalog_db, pred_factory):
        pred = as_predicate(pred_factory())
        fast = {p.sku for p in
                forall(catalog_db.cluster(Product)).suchthat(pred_factory())}
        slow = {p.sku for p in catalog_db.cluster(Product) if pred(p)}
        assert fast == slow
        assert fast  # non-degenerate test data

    def test_index_sees_uncommitted_txn_writes(self, catalog_db):
        db = catalog_db
        with db.transaction():
            target = next(iter(db.cluster(Product)))
            target.vendor = "brand-new-vendor"
            found = forall(db.cluster(Product)).suchthat(
                A.vendor == "brand-new-vendor").to_list()
            assert [p.sku for p in found] == [target.sku]

    def test_index_maintained_on_update(self, catalog_db):
        db = catalog_db
        victim = forall(db.cluster(Product)).suchthat(
            A.vendor == "v3").first()
        with db.transaction():
            victim.vendor = "v0"
        v3 = forall(db.cluster(Product)).suchthat(A.vendor == "v3")
        assert victim.sku not in {p.sku for p in v3}

    def test_index_maintained_on_delete(self, catalog_db):
        db = catalog_db
        victim = forall(db.cluster(Product)).suchthat(
            A.price == 7.0).first()
        db.pdelete(victim)
        left = forall(db.cluster(Product)).suchthat(A.price == 7.0)
        assert all(p.price == 7.0 for p in left)
        assert left.count() == 3  # was 4 per price class

    def test_index_on_ref_field(self, db):
        class WidgetMaker(OdeObject):
            name = StringField(default="")

        class MadeWidget(OdeObject):
            maker = RefField("WidgetMaker")

        db.create(WidgetMaker)
        db.create(MadeWidget)
        makers = [db.pnew(WidgetMaker, name="m%d" % i) for i in range(3)]
        for i in range(30):
            db.pnew(MadeWidget, maker=makers[i % 3])
        db.create_index(MadeWidget, "maker", kind="hash")
        q = forall(db.cluster(MadeWidget)).suchthat(A.maker == makers[0])
        assert "eq-lookup" in q.explain()
        assert q.count() == 10


class TestCompositeIndexes:
    @pytest.fixture
    def composite_db(self, db):
        db.create(Product)
        for i in range(200):
            db.pnew(Product, sku="sku%03d" % i, price=float(i % 50),
                    stock=i, vendor="v%d" % (i % 4))
        db.create_index(Product, ("vendor", "price"), kind="btree")
        return db

    def test_full_equality_uses_composite(self, composite_db):
        plan = plan_for(composite_db,
                        (A.vendor == "v1") & (A.price == 5.0))
        assert isinstance(plan, IndexEquality)
        assert plan.value == ("v1", 5.0)

    def test_prefix_equality_scan(self, composite_db):
        from repro.query.optimizer import CompositeScan
        plan = plan_for(composite_db, A.vendor == "v2")
        assert isinstance(plan, CompositeScan)
        assert plan.eq_values == ["v2"]

    def test_prefix_plus_range(self, composite_db):
        from repro.query.optimizer import CompositeScan
        plan = plan_for(composite_db,
                        (A.vendor == "v1") & (A.price >= 10.0)
                        & (A.price < 20.0))
        assert isinstance(plan, CompositeScan)
        assert plan.lo == 10.0 and plan.hi == 20.0 and plan.hi_strict

    def test_range_without_prefix_not_served(self, composite_db):
        plan = plan_for(composite_db, A.price < 10.0)
        assert isinstance(plan, FullScan)

    @pytest.mark.parametrize("pred_factory", [
        lambda: (A.vendor == "v1") & (A.price == 5.0),
        lambda: A.vendor == "v2",
        lambda: (A.vendor == "v1") & (A.price >= 10.0) & (A.price < 20.0),
        lambda: (A.vendor == "v0") & (A.price > 40.0),
        lambda: (A.vendor == "v3") & (A.price <= 3.0) & (A.stock > 100),
    ])
    def test_matches_brute_force(self, composite_db, pred_factory):
        from repro.query.predicates import as_predicate
        pred = as_predicate(pred_factory())
        fast = {p.sku for p in forall(
            composite_db.cluster(Product)).suchthat(pred_factory())}
        slow = {p.sku for p in composite_db.cluster(Product) if pred(p)}
        assert fast == slow
        assert fast

    def test_maintained_on_update_and_delete(self, composite_db):
        db = composite_db
        victim = forall(db.cluster(Product)).suchthat(
            (A.vendor == "v1") & (A.price == 5.0)).first()
        with db.transaction():
            victim.vendor = "v9"
        still = forall(db.cluster(Product)).suchthat(
            (A.vendor == "v1") & (A.price == 5.0))
        assert victim.sku not in {p.sku for p in still}
        moved = forall(db.cluster(Product)).suchthat(
            (A.vendor == "v9") & (A.price == 5.0))
        assert {p.sku for p in moved} == {victim.sku}
        db.pdelete(victim)
        assert moved.count() == 0

    def test_composite_survives_reopen(self, tmp_path):
        from repro.core import Database
        path = str(tmp_path / "comp.odb")
        db = Database(path)
        db.create(Product)
        for i in range(40):
            db.pnew(Product, sku="s%d" % i, vendor="v%d" % (i % 2),
                    price=float(i))
        db.create_index(Product, ("vendor", "price"), kind="btree")
        db.close()
        db2 = Database(path)
        q = forall(db2.cluster(Product)).suchthat(
            (A.vendor == "v1") & (A.price > 30.0))
        assert "composite" in q.explain() or "eq-lookup" in q.explain()
        assert q.count() == sum(1 for p in db2.cluster(Product)
                                if p.vendor == "v1" and p.price > 30.0)
        db2.close()
