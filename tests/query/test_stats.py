"""Tests for the cluster statistics driving the cost-based optimizer."""

import pytest

from repro.core import Database, FloatField, IntField, OdeObject, StringField
from repro.query import A, forall
from repro.query.stats import ClusterStats, FieldStats


class Gadget(OdeObject):
    name = StringField(default="")
    price = FloatField(default=0.0)
    grade = IntField(default=0)


@pytest.fixture
def gadget_db(db):
    db.create(Gadget)
    db.create_index(Gadget, "grade", kind="btree")
    for i in range(60):
        db.pnew(Gadget, name="g%d" % i, price=float(i), grade=i % 6)
    return db


class TestFieldStats:
    def test_exact_counts_and_bounds(self):
        fs = FieldStats(counts={})
        for v in [3, 1, 4, 1, 5]:
            fs.record(v, +1)
        assert fs.n_distinct == 4
        assert fs.min == 1 and fs.max == 5

    def test_delete_shrinks_distinct_and_bounds(self):
        fs = FieldStats(counts={})
        for v in [1, 2, 3]:
            fs.record(v, +1)
        fs.record(3, -1)
        assert fs.n_distinct == 2
        assert fs.max == 2

    def test_unhashable_degrades_gracefully(self):
        fs = FieldStats(counts={})
        fs.record([1, 2], +1)
        assert fs.counts is None  # degraded to summary precision

    def test_summary_never_shrinks(self):
        fs = FieldStats(n_distinct=5, lo=0, hi=10)
        fs.record(10, -1)
        assert fs.n_distinct == 5  # deletes invisible without counts
        fs.record(20, +1)
        assert fs.max == 20


class TestIncrementalMaintenance:
    def test_counts_track_pnew_and_pdelete(self, gadget_db):
        stats = gadget_db.cluster_stats.get("Gadget")
        assert stats.count == 60
        assert stats.exact
        victim = forall(gadget_db.cluster(Gadget)).first()
        gadget_db.pdelete(victim)
        assert gadget_db.cluster_stats.get("Gadget").count == 59

    def test_field_distincts_maintained(self, gadget_db):
        stats = gadget_db.cluster_stats.get("Gadget")
        fs = stats.field("grade")
        assert fs.n_distinct == 6
        assert fs.min == 0 and fs.max == 5
        gadget_db.pnew(Gadget, name="x", grade=99)
        assert stats.field("grade").n_distinct == 7
        assert stats.field("grade").max == 99

    def test_update_moves_value(self, gadget_db):
        obj = forall(gadget_db.cluster(Gadget)).suchthat(
            A.grade == 0).first()
        with gadget_db.transaction():
            obj.grade = 42
        fs = gadget_db.cluster_stats.get("Gadget").field("grade")
        assert fs.max == 42

    def test_count_fast_path_matches_scan(self, gadget_db):
        handle = gadget_db.cluster(Gadget)
        scanned = sum(1 for _ in handle)
        assert handle.count() == scanned == 60

    def test_abort_invalidates(self, gadget_db):
        try:
            with gadget_db.transaction():
                gadget_db.pnew(Gadget, name="doomed", grade=3)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        # After the abort statistics are reloaded lazily; the rolled-back
        # insert must not be counted.
        assert gadget_db.cluster(Gadget).count() == 60


class TestPersistence:
    def test_summary_survives_reopen(self, db_path):
        db = Database(db_path)
        db.create(Gadget)
        db.create_index(Gadget, "grade", kind="btree")
        for i in range(40):
            db.pnew(Gadget, name="g%d" % i, grade=i % 4)
        db.close()

        db2 = Database(db_path)
        stats = db2.cluster_stats.get("Gadget")
        assert stats is not None
        assert stats.count == 40
        assert not stats.exact  # summary precision after reopen
        assert stats.field("grade").n_distinct == 4
        db2.close()

    def test_analyze_restores_exact(self, db_path):
        db = Database(db_path)
        db.create(Gadget)
        db.create_index(Gadget, "grade", kind="btree")
        for i in range(30):
            db.pnew(Gadget, name="g%d" % i, grade=i % 3)
        db.close()

        db2 = Database(db_path)
        snapshot = db2.analyze(Gadget)
        assert snapshot["Gadget"]["precision"] == "exact"
        stats = db2.cluster_stats.get("Gadget")
        assert stats.exact
        assert stats.field("grade").counts == {0: 10, 1: 10, 2: 10}
        db2.close()

    def test_db_stats_shape(self, gadget_db):
        stats = gadget_db.stats()
        assert {"buffer_pool", "wal", "plan_cache", "clusters",
                "locks", "pages"} <= set(stats)
        assert stats["wal"]["durability"] == "full"
        assert stats["clusters"]["Gadget"]["objects"] == 60

    def test_cluster_stats_state_roundtrip(self):
        stats = ClusterStats("X", exact=True)
        fs = stats.track_field("f")
        for v in [1, 1, 2]:
            fs.record(v, +1)
        stats.count = 3
        restored = ClusterStats.from_state("X", stats.to_state())
        assert restored.count == 3
        assert restored.field("f").n_distinct == 2
        assert not restored.exact  # counts are not persisted
