"""Unit tests for predicate expressions (suchthat building blocks)."""

import pytest

from repro.core import IntField, OdeObject, StringField
from repro.errors import QueryError
from repro.query import (A, And, AttrCompare, Compare, Not, Or, TrueP,
                         as_predicate)


class Row(OdeObject):
    x = IntField(default=0)
    y = IntField(default=0)
    name = StringField(default="")


class TestAttrBuilder:
    def test_builds_compare(self):
        pred = A.x == 5
        assert isinstance(pred, Compare)
        assert pred.attr == "x" and pred.op == "==" and pred.value == 5

    def test_all_operators(self):
        for op, true_case in [("==", 5), ("!=", 6), ("<", 6), ("<=", 5),
                              (">", 4), (">=", 5)]:
            pred = getattr(A.x, {"==": "__eq__", "!=": "__ne__",
                                 "<": "__lt__", "<=": "__le__",
                                 ">": "__gt__", ">=": "__ge__"}[op])(true_case)
            assert pred(Row(x=5)), op

    def test_attr_to_attr(self):
        pred = A.x < A.y
        assert isinstance(pred, AttrCompare)
        assert pred(Row(x=1, y=2))
        assert not pred(Row(x=2, y=1))

    def test_between(self):
        pred = A.x.between(3, 7)
        assert pred(Row(x=3)) and pred(Row(x=7)) and pred(Row(x=5))
        assert not pred(Row(x=2)) and not pred(Row(x=8))

    def test_is_in(self):
        pred = A.name.is_in(["a", "b"])
        assert pred(Row(name="a"))
        assert not pred(Row(name="z"))

    def test_private_attr_rejected(self):
        with pytest.raises(AttributeError):
            A._secret


class TestCombinators:
    def test_and(self):
        pred = (A.x > 0) & (A.y > 0)
        assert pred(Row(x=1, y=1))
        assert not pred(Row(x=1, y=0))

    def test_or(self):
        pred = (A.x > 10) | (A.name == "special")
        assert pred(Row(x=20))
        assert pred(Row(name="special"))
        assert not pred(Row())

    def test_not(self):
        pred = ~(A.x == 0)
        assert pred(Row(x=1))
        assert not pred(Row(x=0))

    def test_conjuncts_flattened(self):
        pred = (A.x > 0) & (A.y > 0) & (A.name == "n")
        assert len(pred.conjuncts()) == 3

    def test_or_not_flattened_into_conjuncts(self):
        pred = (A.x > 0) | (A.y > 0)
        assert pred.conjuncts() == [pred]

    def test_truep(self):
        assert TrueP()(Row())
        assert TrueP().conjuncts() == []


class TestCoercion:
    def test_callable_wrapped(self):
        pred = as_predicate(lambda r: r.x > 3)
        assert pred(Row(x=4)) and not pred(Row(x=2))

    def test_predicate_passthrough(self):
        pred = A.x == 1
        assert as_predicate(pred) is pred

    def test_none_is_true(self):
        assert as_predicate(None)(Row())

    def test_garbage_rejected(self):
        with pytest.raises(QueryError):
            as_predicate(42)

    def test_persistent_object_constant_compares_by_id(self, db):
        db.create(Row)
        r = db.pnew(Row, name="target")
        pred = A.ref == r  # Compare against live object -> its oid
        assert pred.value == r.oid

    def test_incomparable_types_false_not_error(self):
        pred = A.name < 5  # str < int at eval time
        assert pred(Row(name="a")) is False
