"""Tests for fused multi-variable joins (V[...] predicates)."""

import pytest

from repro.core import FloatField, IntField, OdeObject, StringField
from repro.errors import QueryError
from repro.query import A, V, forall, is_multivar


class Emp(OdeObject):
    name = StringField(default="")
    dept = StringField(default="")
    age = IntField(default=0)


class Kid(OdeObject):
    parent = StringField(default="")
    school = StringField(default="")
    grade = IntField(default=0)


class Dept(OdeObject):
    dname = StringField(default="")
    budget = FloatField(default=0.0)


@pytest.fixture
def family_db(db):
    db.create(Emp)
    db.create(Kid)
    db.create(Dept)
    for i in range(40):
        db.pnew(Emp, name="e%d" % i, dept="d%d" % (i % 4), age=25 + i % 30)
    for i in range(60):
        db.pnew(Kid, parent="e%d" % (i % 40), school="s%d" % (i % 3),
                grade=i % 8)
    for i in range(4):
        db.pnew(Dept, dname="d%d" % i, budget=1000.0 * i)
    return db


def brute(db, cond):
    return {(e.name, k.parent, k.school)
            for e in db.cluster(Emp) for k in db.cluster(Kid) if cond(e, k)}


class TestVBuilder:
    def test_v_builds_multivar_predicates(self):
        pred = (V[0].name == V[1].parent) & (V[1].grade > 3)
        assert is_multivar(pred)

    def test_same_var_comparison_is_single_var(self):
        pred = V[0].age > V[0].grade
        assert is_multivar(pred)
        assert pred.var == 0

    def test_mixing_a_and_v_rejected(self):
        with pytest.raises(QueryError):
            V[0].name == A.parent

    def test_v_predicate_on_single_source_rejected(self, family_db):
        q = forall(family_db.cluster(Emp)).suchthat(V[0].age > 30)
        with pytest.raises(QueryError):
            list(q)

    def test_var_index_out_of_range_rejected(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            V[0].name == V[2].parent)
        with pytest.raises(QueryError):
            list(q)


class TestFusedJoinCorrectness:
    def test_plain_equijoin(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            V[0].name == V[1].parent)
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db, lambda e, k: e.name == k.parent)
        assert got

    def test_single_var_conjuncts_pushed_down(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            (V[0].name == V[1].parent) & (V[0].age > 35)
            & (V[1].school == "s1"))
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db,
                            lambda e, k: e.name == k.parent and e.age > 35
                            and k.school == "s1")
        assert got

    def test_multi_key_join(self, family_db):
        # Two equality conjuncts between the same pair of variables
        # combine into one multi-key hash probe.
        q = forall(family_db.cluster(Emp), family_db.cluster(Emp)).suchthat(
            (V[0].dept == V[1].dept) & (V[0].age == V[1].age))
        got = {(a.name, b.name) for a, b in q}
        expected = {(a.name, b.name)
                    for a in family_db.cluster(Emp)
                    for b in family_db.cluster(Emp)
                    if a.dept == b.dept and a.age == b.age}
        assert got == expected

    def test_non_equality_cross_var_is_residual(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            (V[0].name == V[1].parent) & (V[0].age > V[1].grade))
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db,
                            lambda e, k: e.name == k.parent
                            and e.age > k.grade)

    def test_no_equality_degenerates_to_filtered_cross(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Dept)).suchthat(
            V[0].age > V[1].budget)
        got = {(e.name, d.dname) for e, d in q}
        expected = {(e.name, d.dname)
                    for e in family_db.cluster(Emp)
                    for d in family_db.cluster(Dept) if e.age > d.budget}
        assert got == expected
        assert got

    def test_three_way_left_deep(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid),
                   family_db.cluster(Dept)).suchthat(
            (V[0].name == V[1].parent) & (V[0].dept == V[2].dname)
            & (V[2].budget > 0.0))
        got = {(e.name, k.school, d.dname) for e, k, d in q}
        expected = {(e.name, k.school, d.dname)
                    for e in family_db.cluster(Emp)
                    for k in family_db.cluster(Kid)
                    for d in family_db.cluster(Dept)
                    if e.name == k.parent and e.dept == d.dname
                    and d.budget > 0.0}
        assert got == expected
        assert got

    def test_indexes_used_below_join(self, family_db):
        family_db.create_index(Kid, "school", kind="hash")
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            (V[0].name == V[1].parent) & (V[1].school == "s2"))
        text = q.explain()
        assert "fused hash join" in text
        assert "eq-lookup" in text  # the pushed-down conjunct uses the index
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db,
                            lambda e, k: e.name == k.parent
                            and k.school == "s2")

    def test_ordering_and_limit_apply(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            V[0].name == V[1].parent).by(
            lambda e, k: (e.name, k.grade)).limit(5)
        rows = q.to_list()
        assert len(rows) == 5
        keys = [(e.name, k.grade) for e, k in rows]
        assert keys == sorted(keys)

    def test_or_of_cross_var_is_residual(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            (V[0].name == V[1].parent)
            & ((V[1].school == "s0") | (V[1].grade > 5)))
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db,
                            lambda e, k: e.name == k.parent
                            and (k.school == "s0" or k.grade > 5))
        assert got


class TestExplain:
    def test_explain_lists_per_variable_plans(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            (V[0].name == V[1].parent) & (V[0].age > 30))
        text = q.explain()
        assert "fused hash join over 2 sources" in text
        assert "V[0]:" in text and "V[1]:" in text
        assert "est" in text and "cost" in text

    def test_callable_join_still_nested_loop(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            lambda e, k: e.name == k.parent)
        assert "nested-loop" in q.explain()

    def test_callable_join_matches_brute_force(self, family_db):
        q = forall(family_db.cluster(Emp), family_db.cluster(Kid)).suchthat(
            lambda e, k: e.name == k.parent)
        got = {(e.name, k.parent, k.school) for e, k in q}
        assert got == brute(family_db, lambda e, k: e.name == k.parent)
