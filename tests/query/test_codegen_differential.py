"""Differential harness: compiled and interpreted pipelines must agree.

Every query here runs twice — once through the codegen path (the
default) and once with ``q.codegen(False)`` forcing the interpreted
generators — and the two row sets must be identical.  Randomized
predicates, multi-key joins, aggregates, ordering, limits and fixpoint
(growth-during-iteration) shapes are covered, plus behavior under a
concurrent writer thread and a mid-query abort.

``REPRO_CODEGEN_STRICT`` is set for the module so a lowering bug fails
the test instead of silently falling back to the interpreted path.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Database, FloatField, IntField, OdeObject, StringField
from repro.errors import DanglingReferenceError
from repro.query import V, forall
from repro.query.codegen import INELIGIBLE
from repro.query import codegen as qcodegen
from repro.query.predicates import And, Compare, Not, Or, as_predicate


@pytest.fixture(autouse=True)
def _strict_codegen(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN", "1")
    monkeypatch.setenv("REPRO_CODEGEN_STRICT", "1")


class DiffRow(OdeObject):
    alpha = IntField(default=0)
    beta = FloatField(default=0.0)
    gamma = StringField(default="")


class DiffLink(OdeObject):
    src = IntField(default=0)
    dst = IntField(default=0)
    weight = IntField(default=0)


FIELDS = {
    "alpha": st.integers(min_value=0, max_value=9),
    "beta": st.floats(min_value=0.0, max_value=5.0).map(
        lambda x: round(x * 2) / 2.0),
    "gamma": st.sampled_from(["red", "green", "blue"]),
}

OPS = ["==", "!=", "<", "<=", ">", ">="]


def comparison_for(field):
    return st.tuples(st.sampled_from(OPS), FIELDS[field]).map(
        lambda ov: Compare(field, ov[0], ov[1]))


predicates = st.recursive(
    st.sampled_from(list(FIELDS)).flatmap(comparison_for),
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda ab: And(*ab)),
        st.tuples(children, children).map(lambda ab: Or(*ab)),
        children.map(Not),
    ),
    max_leaves=4,
)


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("codegen_diff") / "d.odb"
    db = Database(str(path))
    db.create(DiffRow)
    db.create(DiffLink)
    with db.transaction():
        for i in range(120):
            db.pnew(DiffRow, alpha=i % 10, beta=(i % 11) / 2.0,
                    gamma=["red", "green", "blue"][i % 3])
        for i in range(60):
            db.pnew(DiffLink, src=i % 10, dst=(i * 3) % 10, weight=i % 7)
    db.create_index(DiffRow, "alpha", kind="hash")
    db.create_index(DiffRow, "beta", kind="btree")
    yield db
    db.close()


def serials(rows):
    return [r.oid.serial for r in rows]


def pair_serials(rows):
    return [tuple(o.oid.serial for o in row) for row in rows]


class TestFilters:
    @given(pred=predicates)
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_filters_identical(self, dataset, pred):
        handle = dataset.cluster(DiffRow)
        fast = sorted(serials(forall(handle).suchthat(pred)))
        slow = sorted(serials(forall(handle).suchthat(pred).codegen(False)))
        assert fast == slow

    @given(pred=predicates)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_count_identical(self, dataset, pred):
        handle = dataset.cluster(DiffRow)
        assert (forall(handle).suchthat(pred).count()
                == forall(handle).suchthat(pred).codegen(False).count())

    @given(pred=predicates, field=st.sampled_from(list(FIELDS)),
           desc=st.booleans(), n=st.integers(min_value=0, max_value=15))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_ordered_limit_identical(self, dataset, pred, field, desc, n):
        handle = dataset.cluster(DiffRow)

        def run(q):
            return [(getattr(r, field), r.oid.serial) for r in q]

        key = lambda r: (getattr(r, field), r.oid.serial)  # noqa: E731
        fast = run(forall(handle).suchthat(pred).by(key, desc=desc).limit(n))
        slow = run(forall(handle).suchthat(pred).by(key, desc=desc)
                   .limit(n).codegen(False))
        assert fast == slow


class TestJoins:
    @given(op=st.sampled_from(OPS), wmin=st.integers(min_value=0,
                                                     max_value=6))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_two_way_join_identical(self, dataset, op, wmin):
        rows = dataset.cluster(DiffRow)
        links = dataset.cluster(DiffLink)
        pred = (V[0].alpha._compare(op, V[1].src)
                & (V[1].weight >= wmin))
        fast = sorted(pair_serials(forall(rows, links).suchthat(pred)))
        slow = sorted(pair_serials(
            forall(rows, links).suchthat(pred).codegen(False)))
        assert fast == slow

    @given(wmin=st.integers(min_value=0, max_value=6))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_multi_key_hash_join_identical(self, dataset, wmin):
        links = dataset.cluster(DiffLink)
        q = (forall(links, links)
             .join_on(lambda a: (a.src, a.weight),
                      lambda b: (b.dst, b.weight))
             .suchthat(lambda a, b: a.weight >= wmin))
        fast = sorted(pair_serials(q))
        slow = sorted(pair_serials(q.codegen(False)))
        assert fast == slow

    def test_three_way_join_identical(self, dataset):
        links = dataset.cluster(DiffLink)
        pred = (V[0].dst == V[1].src) & (V[1].dst == V[2].src)
        fast = sorted(tuple(o.oid.serial for o in row)
                      for row in forall(links, links, links).suchthat(pred))
        slow = sorted(tuple(o.oid.serial for o in row)
                      for row in forall(links, links, links)
                      .suchthat(pred).codegen(False))
        assert fast == slow
        assert len(fast) > 0


class TestAggregates:
    @given(pred=predicates)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_sum_and_count_identical(self, dataset, pred):
        handle = dataset.cluster(DiffRow)
        fast_rows = forall(handle).suchthat(pred).to_list()
        slow_rows = forall(handle).suchthat(pred).codegen(False).to_list()
        assert sum(r.alpha for r in fast_rows) \
            == sum(r.alpha for r in slow_rows)
        assert len(fast_rows) == len(slow_rows)


class TestFixpointGrowth:
    """Section 3.2: rows inserted mid-loop are visited (both paths)."""

    def _grow(self, db, q):
        seen = 0
        added = 0
        for obj in q:
            seen += 1
            if obj.alpha == 0 and added < 5:
                added += 1
                db.pnew(GrowRow, alpha=7)
        return seen

    def test_growth_during_scan_identical(self, tmp_path):
        results = {}
        for mode, enabled in (("fast", True), ("slow", False)):
            db = Database(str(tmp_path / ("g_%s.odb" % mode)))
            db.create(GrowRow)
            with db.transaction():
                for i in range(40):
                    db.pnew(GrowRow, alpha=i % 5)
                q = forall(db.cluster(GrowRow)).suchthat(
                    Compare("alpha", ">=", 0))
                if not enabled:
                    q = q.codegen(False)
                results[mode] = self._grow(db, q)
            db.close()
        assert results["fast"] == results["slow"]
        assert results["fast"] > 40  # the inserts were visited


class GrowRow(OdeObject):
    alpha = IntField(default=0)


class TestUnderWriter:
    """Compiled scans take the same scan locks as interpreted ones."""

    def _run_with_writer(self, db, enabled):
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                try:
                    with db.transaction():
                        db.pnew(GrowRow, alpha=100 + i)
                    i += 1
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            counts = []
            for _ in range(15):
                q = forall(db.cluster(GrowRow)).suchthat(
                    Compare("alpha", "<", 100))
                if not enabled:
                    q = q.codegen(False)
                try:
                    counts.append(q.count())
                except DanglingReferenceError:
                    # Pre-existing engine race (a scanned head record
                    # whose state lands mid-commit) — hit identically by
                    # the interpreted path; not a codegen difference.
                    continue
        finally:
            stop.set()
            thread.join()
        assert not errors
        return counts

    def test_consistent_under_concurrent_writer(self, tmp_path):
        for mode, enabled in (("fast", True), ("slow", False)):
            db = Database(str(tmp_path / ("w_%s.odb" % mode)))
            db.create(GrowRow)
            with db.transaction():
                for i in range(50):
                    db.pnew(GrowRow, alpha=i % 5)
            counts = self._run_with_writer(db, enabled)
            # the filter excludes everything the writer adds, so every
            # snapshot the query takes must see exactly the seed rows
            assert len(counts) >= 10
            assert counts == [50] * len(counts)
            db.close()


class TestMidQueryAbort:
    """Aborting the surrounding transaction mid-iteration behaves the
    same whether the pipeline is compiled or interpreted."""

    def _iterate_then_abort(self, db, enabled):
        rows_before_abort = 0
        outcome = None
        try:
            with db.transaction():
                db.pnew(GrowRow, alpha=999)
                q = forall(db.cluster(GrowRow)).suchthat(
                    Compare("alpha", ">=", 0))
                if not enabled:
                    q = q.codegen(False)
                for _ in q:
                    rows_before_abort += 1
                    if rows_before_abort == 10:
                        raise RuntimeError("abort now")
        except RuntimeError as exc:
            outcome = str(exc)
        # the transaction rolled back: the uncommitted row is gone
        count = forall(db.cluster(GrowRow)).count()
        return rows_before_abort, outcome, count

    def test_abort_identical(self, tmp_path):
        results = {}
        for mode, enabled in (("fast", True), ("slow", False)):
            db = Database(str(tmp_path / ("a_%s.odb" % mode)))
            db.create(GrowRow)
            with db.transaction():
                for i in range(30):
                    db.pnew(GrowRow, alpha=i)
            results[mode] = self._iterate_then_abort(db, enabled)
            db.close()
        assert results["fast"] == results["slow"]
        assert results["fast"][1] == "abort now"
        assert results["fast"][2] == 30


class TestSnapshotDifferential:
    """ISSUE 7 rounds: MVCC snapshot reads must be indistinguishable
    from S-lock (2PL) reads on a quiesced database, and stably
    repeatable under a concurrent writer — identical on the compiled
    and interpreted paths."""

    def _seed(self, db, n=60):
        db.create(GrowRow)
        with db.transaction():
            for i in range(n):
                db.pnew(GrowRow, alpha=i % 7)

    @staticmethod
    def _join(threads):
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "threads hung"

    def test_quiesced_snapshot_equals_slock_reads(self, tmp_path,
                                                  monkeypatch):
        """With no concurrent writer, every (mode, path) combination
        returns byte-identical row sets for the same predicate."""
        rowsets = {}
        for mode, env in (("mvcc", "1"), ("2pl", "0")):
            monkeypatch.setenv("REPRO_MVCC", env)
            db = Database(str(tmp_path / ("q_%s.odb" % mode)))
            assert db._mvcc_on == (env == "1")
            self._seed(db)
            for path in ("fast", "slow"):
                q = forall(db.cluster(GrowRow)).suchthat(
                    Compare("alpha", ">=", 3))
                if path == "slow":
                    q = q.codegen(False)
                with db.transaction():
                    rowsets[(mode, path)] = sorted(serials(q))
            db.close()
        base = rowsets[("mvcc", "fast")]
        assert len(base) > 0
        assert all(rows == base for rows in rowsets.values()), rowsets

    def test_repeatable_read_under_writer_both_paths(self, tmp_path):
        """Phased: a reader transaction counts matching rows, a writer
        commits an update + insert, the reader counts again — both
        counts (compiled and interpreted) must repeat the snapshot;
        a fresh transaction then sees the writer's result."""
        db = Database(str(tmp_path / "rr.odb"))
        self._seed(db)
        in_txn = threading.Event()
        committed = threading.Event()
        results = {}
        errors = []

        def counts():
            base = lambda: forall(db.cluster(GrowRow)).suchthat(  # noqa: E731
                Compare("alpha", "==", 3))
            return (base().count(), base().codegen(False).count())

        def writer():
            try:
                assert in_txn.wait(timeout=30)
                with db.transaction():
                    for obj in forall(db.cluster(GrowRow)).suchthat(
                            Compare("alpha", "==", 3)):
                        obj.alpha = 100
                    db.pnew(GrowRow, alpha=3)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                committed.set()

        def reader():
            try:
                with db.transaction():
                    results["before"] = counts()
                    in_txn.set()
                    assert committed.wait(timeout=30)
                    results["repeat"] = counts()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        self._join([threading.Thread(target=reader),
                    threading.Thread(target=writer)])
        assert not errors
        # 60 rows, alpha = i % 7 == 3 -> 9 seed matches.
        assert results["before"] == (9, 9)
        assert results["repeat"] == (9, 9)   # snapshot repeated, both paths
        with db.transaction():
            assert counts() == (1, 1)        # writer's world afterwards
        db.close()

    def test_index_plan_falls_back_under_writer(self, tmp_path):
        """An index probe inside a reader transaction must not leak the
        writer's newer index entries: with the cluster dirty relative to
        the snapshot, both paths substitute a visibility-aware full scan
        and repeat the original count."""
        db = Database(str(tmp_path / "idx.odb"))
        db.create(GrowRow)
        with db.transaction():
            for i in range(40):
                db.pnew(GrowRow, alpha=i % 5)
        db.create_index(GrowRow, "alpha", kind="hash")
        in_txn = threading.Event()
        committed = threading.Event()
        results = {}
        errors = []

        def counts():
            base = lambda: forall(db.cluster(GrowRow)).suchthat(  # noqa: E731
                Compare("alpha", "==", 2))
            return (base().count(), base().codegen(False).count())

        def writer():
            try:
                assert in_txn.wait(timeout=30)
                with db.transaction():
                    db.pnew(GrowRow, alpha=2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                committed.set()

        def reader():
            try:
                with db.transaction():
                    results["before"] = counts()   # index plan, clean
                    in_txn.set()
                    assert committed.wait(timeout=30)
                    results["repeat"] = counts()   # dirty: full-scan swap
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        self._join([threading.Thread(target=reader),
                    threading.Thread(target=writer)])
        assert not errors
        assert results["before"] == (8, 8)
        assert results["repeat"] == (8, 8)
        q = forall(db.cluster(GrowRow)).suchthat(Compare("alpha", "==", 2))
        assert q.count() == 9
        assert "index" in q.explain().lower()  # plan itself still indexed
        db.close()


class TestDisableSwitches:
    """Disabling codegen at any level restores the interpreted path."""

    def test_env_switch(self, tmp_path, monkeypatch):
        db = Database(str(tmp_path / "env.odb"))
        db.create(GrowRow)
        with db.transaction():
            for i in range(10):
                db.pnew(GrowRow, alpha=i)
        monkeypatch.setenv("REPRO_CODEGEN", "0")
        q = forall(db.cluster(GrowRow)).suchthat(Compare("alpha", ">=", 0))
        before = db.codegen_cache.misses
        assert len(q.to_list()) == 10
        assert db.codegen_cache.misses == before  # never consulted
        assert "execution: interpreted" in q.explain()
        monkeypatch.setenv("REPRO_CODEGEN", "1")
        assert "execution: compiled" in q.explain()
        db.close()

    def test_db_and_query_switch(self, tmp_path):
        db = Database(str(tmp_path / "flag.odb"))
        db.create(GrowRow)
        with db.transaction():
            for i in range(10):
                db.pnew(GrowRow, alpha=i)
        q = forall(db.cluster(GrowRow)).suchthat(Compare("alpha", ">", 2))
        db.codegen_enabled = False
        assert "execution: interpreted" in q.explain()
        assert len(q.to_list()) == 7
        db.codegen_enabled = True
        assert "execution: compiled" in q.explain()
        assert len(q.to_list()) == 7
        assert len(q.codegen(False).to_list()) == 7
        assert qcodegen.run_single(
            q.codegen(False), q._single_plan(), "collect") is INELIGIBLE
        db.close()
