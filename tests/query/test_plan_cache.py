"""Tests for plan caching and cost-based plan selection under statistics."""

import pytest

from repro.core import FloatField, IntField, OdeObject, StringField
from repro.query import (A, CompositeScan, FullScan, IndexEquality,
                         IndexRange, choose_plan, forall)
from repro.query import optimizer
from repro.query.predicates import as_predicate


class Part(OdeObject):
    sku = StringField(default="")
    bin = StringField(default="")
    weight = FloatField(default=0.0)
    qty = IntField(default=0)


@pytest.fixture
def part_db(db):
    db.create(Part)
    db.create_index(Part, "bin", kind="hash")
    db.create_index(Part, "weight", kind="btree")
    for i in range(100):
        db.pnew(Part, sku="p%03d" % i, bin="b%d" % (i % 20),
                weight=float(i % 25), qty=i)
    return db


def plan_for(db, pred):
    return choose_plan(db.cluster(Part), as_predicate(pred))


class TestPlanCache:
    def test_same_shape_hits_cache(self, part_db):
        cache = part_db.plan_cache
        plan_for(part_db, A.bin == "b1")
        misses = cache.misses
        hits = cache.hits
        plan = plan_for(part_db, A.bin == "b7")  # same shape, new constant
        assert cache.hits == hits + 1
        assert cache.misses == misses
        assert isinstance(plan, IndexEquality)
        assert plan.value == "b7"  # rebound to the new constant

    def test_forall_iterated_twice_builds_one_plan(self, part_db):
        q = forall(part_db.cluster(Part)).suchthat(A.bin == "b3")
        before = optimizer.PLAN_BUILDS
        first = q.to_list()
        second = q.to_list()
        assert [p.sku for p in first] == [p.sku for p in second]
        assert optimizer.PLAN_BUILDS == before + 1

    def test_distinct_foralls_share_db_cache(self, part_db):
        q1 = forall(part_db.cluster(Part)).suchthat(A.bin == "b3")
        q1.to_list()
        before = optimizer.PLAN_BUILDS
        q2 = forall(part_db.cluster(Part)).suchthat(A.bin == "b9")
        q2.to_list()
        assert optimizer.PLAN_BUILDS == before  # served from the db cache

    def test_index_ddl_invalidates(self, part_db):
        plan_for(part_db, A.qty == 5)  # full scan: qty unindexed
        assert isinstance(plan_for(part_db, A.qty == 5), FullScan)
        part_db.create_index(Part, "qty", kind="hash")
        plan = plan_for(part_db, A.qty == 5)
        assert isinstance(plan, IndexEquality)  # epoch bump replanned

    def test_drift_invalidates(self, part_db):
        plan_for(part_db, A.bin == "b1")
        inval = part_db.plan_cache.invalidations
        # Mutate far past the drift limit (max(32, 25) for 100 rows).
        for i in range(120):
            part_db.pnew(Part, sku="n%d" % i, bin="b1", weight=1.0)
        plan_for(part_db, A.bin == "b1")
        assert part_db.plan_cache.invalidations == inval + 1

    def test_abort_clears_cache(self, part_db):
        plan_for(part_db, A.bin == "b1")
        assert part_db.plan_cache.stats()["entries"] > 0
        try:
            with part_db.transaction():
                part_db.pnew(Part, sku="x", bin="b0")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert part_db.plan_cache.stats()["entries"] == 0

    def test_opaque_predicates_not_cached(self, part_db):
        entries = part_db.plan_cache.stats()["entries"]
        plan_for(part_db, lambda p: p.qty > 5)
        assert part_db.plan_cache.stats()["entries"] == entries


class TestCostBasedSelection:
    def test_plan_flips_to_full_scan_as_stats_change(self, part_db):
        """The acceptance case: a plan must flip index -> full scan once
        the statistics say the indexed value became too common."""
        pred = A.bin == "hotspot"
        assert isinstance(plan_for(part_db, pred), IndexEquality)
        # Make "hotspot" the value of ~95% of the cluster: an index probe
        # now fetches nearly every row at random-access cost.
        for i in range(1900):
            part_db.pnew(Part, sku="h%d" % i, bin="hotspot", weight=2.0)
        plan = plan_for(part_db, pred)
        assert isinstance(plan, FullScan)
        # ... while a still-rare value keeps using the index.
        rare = plan_for(part_db, A.bin == "b1")
        assert isinstance(rare, IndexEquality)

    def test_low_selectivity_range_on_tiny_cluster(self, db):
        db.create(Part)
        db.create_index(Part, "weight", kind="btree")
        for i in range(10):
            db.pnew(Part, sku="p%d" % i, weight=float(i))
        # The range covers the whole domain: scanning 10 rows costs less
        # than probing the index and fetching all 10 at random.
        plan = choose_plan(db.cluster(Part),
                           as_predicate(A.weight >= 0.0))
        assert isinstance(plan, FullScan)

    def test_estimates_reported_in_describe(self, part_db):
        for pred in [A.bin == "b1", (A.weight >= 3.0) & (A.weight < 9.0),
                     A.qty == 5]:
            plan = plan_for(part_db, pred)
            text = plan.describe()
            assert "est" in text and "cost" in text

    def test_estimated_rows_use_exact_frequency(self, part_db):
        plan = plan_for(part_db, A.bin == "b1")
        assert plan.estimated_rows == pytest.approx(5.0)  # 100 rows / 20 bins

    def test_composite_prefix_with_trailing_range(self, db):
        db.create(Part)
        db.create_index(Part, ("bin", "weight"), kind="btree")
        for i in range(120):
            db.pnew(Part, sku="p%03d" % i, bin="b%d" % (i % 3),
                    weight=float(i % 40))
        plan = choose_plan(
            db.cluster(Part),
            as_predicate((A.bin == "b1") & (A.weight >= 10.0)
                         & (A.weight < 20.0)))
        assert isinstance(plan, CompositeScan)
        assert plan.lo == 10.0 and plan.hi == 20.0
        expected = {p.sku for p in db.cluster(Part)
                    if p.bin == "b1" and 10.0 <= p.weight < 20.0}
        assert {p.sku for p in plan.execute()} == expected
        assert expected

    def test_desc_sort_is_stable(self, part_db):
        # weight has 4 duplicates per value; equal-weight runs must keep
        # their original (ascending-scan) relative order under desc.
        q = forall(part_db.cluster(Part)).suchthat(
            (A.weight >= 0.0) & (A.weight <= 30.0)).by(A.weight, desc=True)
        rows = q.to_list()
        weights = [p.weight for p in rows]
        assert weights == sorted(weights, reverse=True)
        asc = forall(part_db.cluster(Part)).suchthat(
            (A.weight >= 0.0) & (A.weight <= 30.0)).by(A.weight).to_list()
        by_weight = {}
        for p in asc:
            by_weight.setdefault(p.weight, []).append(p.sku)
        for w, group in by_weight.items():
            desc_group = [p.sku for p in rows if p.weight == w]
            assert desc_group == group  # stable: tie order preserved

    def test_index_range_still_wins_when_selective(self, part_db):
        plan = plan_for(part_db, (A.weight >= 1.0) & (A.weight < 3.0))
        assert isinstance(plan, IndexRange)
