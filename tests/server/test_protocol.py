"""Wire-protocol edge cases: framing, torn frames, checksums, limits."""

import socket
import struct
import threading
import zlib

import pytest

from repro.errors import ConnectionClosedError, ProtocolError
from repro.server import protocol


def pipe():
    """A connected local socket pair (closed by the caller)."""
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_roundtrip(self):
        a, b = pipe()
        try:
            protocol.send_message(a, {"op": "ping", "n": 7})
            assert protocol.read_message(b) == {"op": "ping", "n": 7}
        finally:
            a.close()
            b.close()

    def test_roundtrip_empty_payload(self):
        a, b = pipe()
        try:
            protocol.send_frame(a, b"")
            assert protocol.read_frame(b) == b""
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_sequence(self):
        a, b = pipe()
        try:
            for i in range(10):
                protocol.send_message(a, {"i": i})
            for i in range(10):
                assert protocol.read_message(b)["i"] == i
        finally:
            a.close()
            b.close()

    def test_large_payload_chunked_recv(self):
        a, b = pipe()
        payload = b"x" * 300_000
        out = {}

        def reader():
            out["payload"] = protocol.read_frame(b)

        t = threading.Thread(target=reader)
        t.start()
        try:
            protocol.send_frame(a, payload)
            t.join(timeout=10)
            assert out["payload"] == payload
        finally:
            a.close()
            b.close()


class TestRejection:
    def test_bad_magic(self):
        a, b = pipe()
        try:
            a.sendall(b"XX" + b"\x00" * (protocol.HEADER.size - 2))
            with pytest.raises(ProtocolError, match="magic"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_before_payload_read(self):
        a, b = pipe()
        try:
            # Declare a payload over the cap; send only the header — the
            # reader must reject on the declared length, not block
            # trying to allocate/read the payload.
            header = protocol.HEADER.pack(protocol.MAGIC, 0,
                                          protocol.DEFAULT_MAX_FRAME + 1, 0)
            a.sendall(header)
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_custom_max_frame(self):
        a, b = pipe()
        try:
            protocol.send_frame(a, b"x" * 100)
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.read_frame(b, max_frame=10)
        finally:
            a.close()
            b.close()

    def test_checksum_mismatch(self):
        a, b = pipe()
        try:
            payload = b'{"op":"ping"}'
            frame = protocol.encode_frame(payload)
            # Flip a payload bit after the crc was computed.
            corrupt = frame[:-1] + bytes([frame[-1] ^ 0x01])
            a.sendall(corrupt)
            with pytest.raises(ProtocolError, match="checksum"):
                protocol.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_torn_frame_eof_mid_payload(self):
        a, b = pipe()
        try:
            frame = protocol.encode_frame(b'{"op":"ping"}')
            a.sendall(frame[:-4])  # header + partial payload, then EOF
            a.close()
            with pytest.raises(ProtocolError, match="torn"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_torn_frame_eof_mid_header(self):
        a, b = pipe()
        try:
            a.sendall(b"Od\x00")
            a.close()
            with pytest.raises(ProtocolError, match="torn"):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_clean_close_between_frames(self):
        a, b = pipe()
        try:
            a.close()
            with pytest.raises(ConnectionClosedError):
                protocol.read_frame(b)
        finally:
            b.close()

    def test_undecodable_payload(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode_message(b"\xff\xfe not json")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="not a message object"):
            protocol.decode_message(b"[1,2,3]")


class TestFrameLayout:
    """Pin the on-wire layout so it cannot drift silently."""

    def test_header_fields(self):
        payload = b"hello"
        frame = protocol.encode_frame(payload, flags=3)
        magic, flags, length, crc = struct.unpack(
            "!2sHII", frame[:protocol.HEADER.size])
        assert magic == b"Od"
        assert flags == 3
        assert length == len(payload)
        assert crc == zlib.crc32(payload) & 0xFFFFFFFF
        assert frame[protocol.HEADER.size:] == payload

    def test_header_size_is_twelve_bytes(self):
        assert protocol.HEADER.size == 12


class TestErrorMessages:
    def test_error_message_carries_retryability(self):
        from repro.errors import DeadlockError, StorageError
        retry = protocol.error_message(DeadlockError("cycle"))
        assert retry["retryable"] is True
        assert retry["error"] == "DeadlockError"
        hard = protocol.error_message(StorageError("bad page"))
        assert hard["retryable"] is False

    def test_raise_remote_retypes(self):
        from repro.errors import DeadlockError, TransientError
        msg = protocol.error_message(DeadlockError("cycle"))
        with pytest.raises(DeadlockError):
            protocol.raise_remote(msg)
        with pytest.raises(TransientError):
            protocol.raise_remote(msg)

    def test_raise_remote_unknown_type_falls_back(self):
        from repro.errors import OdeError
        with pytest.raises(OdeError):
            protocol.raise_remote({"error": "NoSuchError", "message": "x"})

    def test_raise_remote_refuses_non_error_attribute(self):
        # A hostile server naming a non-exception attribute must not
        # make the client call arbitrary callables.
        from repro.errors import OdeError
        with pytest.raises(OdeError):
            protocol.raise_remote({"error": "Dict", "message": "x"})
