"""Server behavior: sessions, admission control, deadlines, eviction,
graceful drain — all over real sockets against an in-process server."""

import socket
import threading
import time

import pytest

from repro.core.database import Database
from repro.errors import (ConnectionClosedError, DeadlineExceededError,
                          OdeError, OppSyntaxError, ServerOverloadedError,
                          TransactionError)
from repro.server import Client, OdeServer, ServerConfig, protocol

SCHEMA = """
class gadget { public: char* name; int qty; };
create gadget;
"""

#: O++ that spins long enough to blow a small deadline: the step hook
#: fires between top-level statements, so the busy work is many cheap
#: statements rather than one long one.
BUSY = "int b%d = 0;\n" + "while (b%d < 60000) b%d++;\n" * 3


def busy_src(tag: int) -> str:
    return BUSY.replace("%d", str(tag))


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "srv.odb"))
    yield database
    database.close()


def make_server(db, **overrides):
    overrides.setdefault("port", 0)
    return OdeServer(db, ServerConfig(**overrides)).start()


@pytest.fixture
def server(db):
    srv = make_server(db, allow_debug_delay=True)
    yield srv
    srv.shutdown()


def connect(server, **kw) -> Client:
    host, port = server.address
    return Client(host, port, **kw)


class TestExecute:
    def test_execute_and_output(self, server):
        with connect(server) as c:
            c.execute(SCHEMA)
            out = c.execute('pnew gadget("bolt", 7);\n'
                            "forall g in gadget suchthat (g->qty > 0) "
                            'printf("%s=%d\\n", g->name, g->qty);')
            assert out == ["bolt=7\n"]

    def test_interpreter_state_persists_across_requests(self, server):
        with connect(server) as c:
            c.execute("int counter = 40;")
            out = c.execute('counter += 2; printf("%d", counter);')
            assert out == ["42"]

    def test_interpreter_state_isolated_between_connections(self, server):
        with connect(server) as a, connect(server) as b:
            a.execute("int mine = 1;")
            with pytest.raises(OdeError):
                b.execute('printf("%d", mine);')

    def test_large_output_streams_in_chunks(self, server):
        with connect(server) as c:
            out = c.execute("int i = 0;\n"
                            'while (i < 2000) { printf("%d\\n", i); i++; }')
            assert len(out) == 2000
            assert out[0] == "0\n"
            assert out[-1] == "1999\n"

    def test_remote_error_is_typed(self, server):
        with connect(server) as c:
            with pytest.raises(OppSyntaxError):
                c.execute("this is not O++;")
            # The connection survives a request-level error.
            c.ping()


class TestTransactions:
    def test_txn_spans_requests_and_commits(self, server):
        with connect(server) as c:
            c.execute(SCHEMA)
            c.begin()
            c.execute('pnew gadget("nut", 1);')
            c.execute('pnew gadget("washer", 2);')
            c.commit()
            out = c.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["2"]

    def test_abort_discards(self, server):
        with connect(server) as c:
            c.execute(SCHEMA)
            c.begin()
            c.execute('pnew gadget("ghost", 9);')
            c.abort()
            out = c.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["0"]

    def test_uncommitted_writes_invisible_to_other_connection(self, server):
        with connect(server) as a, connect(server) as b:
            a.execute(SCHEMA)
            a.begin()
            a.execute('pnew gadget("secret", 5);')
            out = b.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["0"]
            a.commit()
            out = b.execute("int n2 = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n2++;\n"
                            'printf("%d", n2);')
            assert out == ["1"]

    def test_statement_error_aborts_open_txn(self, server):
        # Same rule as the embedded context manager: an error inside an
        # explicit transaction aborts it.
        with connect(server) as c:
            c.execute(SCHEMA)
            c.begin()
            c.execute('pnew gadget("doomed", 3);')
            with pytest.raises(OppSyntaxError):
                c.execute("syntax error here;")
            with pytest.raises(TransactionError):
                c.commit()
            out = c.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["0"]

    def test_malformed_request_leaves_txn_alone(self, server):
        # An unknown op is the client's bug, not the transaction's.
        with connect(server) as c:
            c.execute(SCHEMA)
            c.begin()
            c.execute('pnew gadget("keeper", 4);')
            with pytest.raises(protocol.ProtocolError):
                c._request({"op": "bogus"})
            c.commit()
            out = c.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["1"]

    def test_begin_twice_rejected(self, server):
        with connect(server) as c:
            c.begin()
            with pytest.raises(TransactionError):
                c.begin()
            c.abort()

    def test_disconnect_aborts_open_txn(self, db, server):
        with connect(server) as c:
            c.execute(SCHEMA)
        c2 = connect(server)
        c2.begin()
        c2.execute('pnew gadget("orphan", 8);')
        c2.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not db.store.active_transactions:
                break
            time.sleep(0.02)
        with connect(server) as c3:
            out = c3.execute("int n = 0;\n"
                            "forall g in gadget suchthat (g->qty > 0) n++;\n"
                            'printf("%d", n);')
            assert out == ["0"]


class TestDeadlines:
    def test_request_deadline_expires(self, server):
        with connect(server) as c:
            with pytest.raises(DeadlineExceededError):
                c.execute(busy_src(1), deadline_ms=30)
            # Deadlines are per-request: the connection survives.
            c.ping()

    def test_deadline_interrupts_single_statement_loop(self, server):
        # One ~multi-second while statement: the deadline must fire from
        # inside the loop (the interpreter's loop tick), not only at
        # top-level statement boundaries.
        with connect(server) as c:
            src = "int j = 0;\nwhile (j < 100000000) j++;"
            start = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                c.execute(src, deadline_ms=100)
            assert time.monotonic() - start < 5.0
            c.ping()

    def test_deadline_mid_result_stream(self, db):
        # Small chunks + a slow trickle of output: the deadline check
        # before each chunk flush fires while results are streaming.
        srv = make_server(db, allow_debug_delay=True)
        try:
            with connect(srv) as c:
                src = ("int i = 0;\n"
                       'while (i < 400) { printf("%d\\n", i); i++; }\n'
                       + busy_src(2)
                       + 'printf("end\\n");')
                with pytest.raises(DeadlineExceededError):
                    c.execute(src, deadline_ms=40)
                c.ping()
        finally:
            srv.shutdown()

    def test_request_deadline_aborts_open_txn(self, server):
        with connect(server) as c:
            c.execute(SCHEMA)
            c.begin()
            c.execute('pnew gadget("late", 6);')
            with pytest.raises(DeadlineExceededError):
                c.execute(busy_src(3), deadline_ms=30)
            # The deadline expired mid-transaction: it was aborted.
            with pytest.raises(TransactionError):
                c.commit()

    def test_txn_deadline_reaps_idle_holder(self, db):
        srv = make_server(db, txn_timeout_s=0.3)
        try:
            with connect(srv) as c:
                c.execute(SCHEMA)
            c2 = connect(srv)
            c2.begin()
            c2.execute('pnew gadget("squatter", 2);')
            # Go silent on the open transaction past its deadline; the
            # reaper closes the socket and the handler thread aborts the
            # transaction on its own (the owning) thread.
            time.sleep(1.0)
            with pytest.raises((ConnectionClosedError, OSError)):
                c2.ping()
            evictions = [v for k, v in db.metrics.snapshot().items()
                         if "server.evictions" in k
                         and "txn_deadline" in k]
            assert sum(evictions) >= 1
            with connect(srv) as c3:
                out = c3.execute(
                    "int n = 0;\n"
                    "forall g in gadget suchthat (g->qty > 0) n++;\n"
                    'printf("%d", n);')
                assert out == ["0"]
        finally:
            srv.shutdown()


class TestAdmission:
    def test_inflight_cap_fast_fails(self, db):
        srv = make_server(db, max_inflight=1, admission_wait_s=0.02,
                          allow_debug_delay=True)
        try:
            blocker = connect(srv)
            t = threading.Thread(
                target=lambda: blocker.ping(delay_ms=800))
            t.start()
            time.sleep(0.2)  # let the blocker occupy the only slot
            with connect(srv) as c:
                with pytest.raises(ServerOverloadedError):
                    c.ping()
            t.join()
            blocker.close()
            snap = db.metrics.snapshot()
            rejects = [v for k, v in snap.items()
                       if "server.overload_rejects" in k
                       and "inflight" in k]
            assert sum(rejects) >= 1
        finally:
            srv.shutdown()

    def test_overload_is_transient_so_clients_retry(self, db):
        srv = make_server(db, max_inflight=1, admission_wait_s=0.02,
                          allow_debug_delay=True)
        try:
            blocker = connect(srv)
            t = threading.Thread(
                target=lambda: blocker.ping(delay_ms=600))
            t.start()
            time.sleep(0.2)
            from repro.retry import RetryPolicy
            with connect(srv, retry=RetryPolicy(retries=8,
                                                base_delay=0.1)) as c:
                # run_transaction sees ServerOverloadedError (transient),
                # backs off, and succeeds once the blocker finishes.
                result = c.run_transaction(lambda cl: "made it")
                assert result == "made it"
            t.join()
            blocker.close()
        finally:
            srv.shutdown()

    def test_connection_cap_fast_fails(self, db):
        srv = make_server(db, max_connections=2)
        try:
            a = connect(srv)
            b = connect(srv)
            a.ping()
            b.ping()
            with pytest.raises(ServerOverloadedError):
                with connect(srv) as c:
                    c.ping()
            a.close()
            b.close()
            # Slots free up once connections close.
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    with connect(srv) as c:
                        c.ping()
                    break
                except (ServerOverloadedError, OSError):
                    if time.monotonic() > deadline:
                        raise
                    time.sleep(0.05)
            rejects = [v for k, v in db.metrics.snapshot().items()
                       if "server.overload_rejects" in k
                       and "connections" in k]
            assert sum(rejects) >= 1
        finally:
            srv.shutdown()


class TestEviction:
    def test_idle_timeout_evicts(self, db):
        srv = make_server(db, idle_timeout_s=0.3)
        try:
            c = connect(srv)
            c.ping()
            time.sleep(0.9)
            with pytest.raises((ConnectionClosedError, OSError)):
                c.ping()
            c.close()
            evictions = [v for k, v in db.metrics.snapshot().items()
                         if "server.evictions" in k and "idle" in k]
            assert sum(evictions) >= 1
        finally:
            srv.shutdown()

    def test_slow_client_evicted_without_stalling_others(self, db):
        # The slow client asks for a huge result and never reads it;
        # with a tiny server-side send buffer the reply send blocks,
        # times out, and the connection is evicted — while a healthy
        # client on another connection keeps making progress throughout.
        srv = make_server(db, write_timeout_s=0.4, sndbuf=4096)
        try:
            slow = connect(srv)
            src = ('int i = 0;\n'
                   'while (i < 60000) { '
                   'printf("%d aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\\n", i); '
                   'i++; }')
            protocol.send_message(slow._sock,
                                  {"op": "execute", "source": src})
            # ...and never read a byte.
            healthy_ok = []
            stop = threading.Event()

            def healthy_loop():
                with connect(srv) as h:
                    while not stop.is_set():
                        h.ping()
                        healthy_ok.append(time.monotonic())
                        time.sleep(0.02)

            t = threading.Thread(target=healthy_loop)
            t.start()
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                evicted = sum(
                    v for k, v in db.metrics.snapshot().items()
                    if "server.evictions" in k and "slow_client" in k)
                if evicted:
                    break
                time.sleep(0.05)
            stop.set()
            t.join()
            slow.close()
            assert evicted >= 1, "slow client was never evicted"
            assert len(healthy_ok) >= 5, (
                "healthy client starved while slow client was evicted")
        finally:
            srv.shutdown()


class TestDrain:
    def test_drain_waits_for_inflight_request(self, db):
        srv = make_server(db, allow_debug_delay=True, drain_timeout_s=5.0)
        c = connect(srv)
        result = {}

        def slow_request():
            try:
                c.ping(delay_ms=500)
                result["ok"] = True
            except OdeError as exc:
                result["err"] = exc

        t = threading.Thread(target=slow_request)
        t.start()
        time.sleep(0.15)
        srv.shutdown()  # must wait for the in-flight ping
        t.join()
        c.close()
        assert result.get("ok") is True

    def test_drain_closes_idle_connections(self, db):
        srv = make_server(db)
        c = connect(srv)
        c.ping()
        srv.shutdown()
        with pytest.raises((ConnectionClosedError, OSError,
                            protocol.ProtocolError)):
            c.ping()
            c.ping()
        c.close()

    def test_no_new_connections_while_draining(self, db):
        srv = make_server(db)
        host, port = srv.address
        srv.shutdown()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1.0).close()

    def test_shutdown_is_idempotent(self, db):
        srv = make_server(db)
        srv.shutdown()
        srv.shutdown()

    def test_db_reopens_cleanly_after_drain(self, tmp_path):
        path = str(tmp_path / "drain.odb")
        db = Database(path)
        srv = make_server(db)
        with connect(srv) as c:
            c.execute(SCHEMA)
            c.execute('pnew gadget("kept", 11);')
        srv.shutdown()
        db.close()
        db2 = Database(path)
        try:
            assert db2.verify() == []
            cluster = db2.cluster("gadget")
            assert sum(1 for _ in cluster) == 1
        finally:
            db2.close()


class TestObservability:
    def test_server_metrics_and_events(self, db, server):
        with connect(server) as c:
            c.execute(SCHEMA)
            c.ping()
        snap = db.metrics.snapshot()
        assert any("server.requests" in k for k in snap)
        assert any("server.connections.total" in k for k in snap)
        assert any("server.request_ns" in k for k in snap)
        kinds = [e["kind"] for e in db.events.snapshot()]
        assert "server_started" in kinds
        assert "server_conn_open" in kinds
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            kinds = [e["kind"] for e in db.events.snapshot()]
            if "server_conn_close" in kinds:
                break
            time.sleep(0.02)
        assert "server_conn_close" in kinds

    def test_stats_op(self, server):
        with connect(server) as c:
            stats = c.stats()
            assert "wal" in stats
            assert "buffer_pool" in stats

    def test_snapshot_token_op(self, server):
        with connect(server) as c:
            token = c.snapshot_token()
            assert isinstance(token, int)
