"""Unit tests for the O++ lexer."""

import pytest

from repro.errors import OppSyntaxError
from repro.opp.lexer import Token, tokenize


def kinds_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_empty(self):
        assert tokenize("")[-1].kind == "eof"

    def test_identifiers_and_keywords(self):
        toks = kinds_values("class stockitem persistent foo_bar2")
        assert toks == [("keyword", "class"), ("ident", "stockitem"),
                        ("keyword", "persistent"), ("ident", "foo_bar2")]

    def test_numbers(self):
        toks = kinds_values("42 3.14 0.5 1e10 2.5e-3 7.")
        assert toks == [("int", "42"), ("float", "3.14"), ("float", "0.5"),
                        ("float", "1e10"), ("float", "2.5e-3"),
                        ("float", "7.")]

    def test_exponent_requires_digits(self):
        # "0E" is the int 0 then the identifier E — consuming the bare
        # E as an exponent produced a float token float() rejects.
        assert kinds_values("0E") == [("int", "0"), ("ident", "E")]
        assert kinds_values("1e+") == [("int", "1"), ("ident", "e"),
                                       ("op", "+")]
        assert kinds_values("2.5E-3")[0] == ("float", "2.5E-3")

    def test_strings(self):
        toks = kinds_values(r'"hello" "with \"escape\"" "tab\t"')
        assert toks == [("string", "hello"), ("string", 'with "escape"'),
                        ("string", "tab\t")]

    def test_chars(self):
        toks = kinds_values(r"'a' '\n' 'f'")
        assert toks == [("char", "a"), ("char", "\n"), ("char", "f")]

    def test_operators_maximal_munch(self):
        toks = [v for _, v in kinds_values("==> == = <= << < -> - >>=")]
        assert toks == ["==>", "==", "=", "<=", "<<", "<", "->", "-", ">>="]

    def test_line_tracking(self):
        toks = tokenize("a\nbb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3 and toks[2].column == 3


class TestComments:
    def test_line_comment(self):
        assert kinds_values("a // comment\n b") == [("ident", "a"),
                                                    ("ident", "b")]

    def test_block_comment(self):
        assert kinds_values("a /* x\ny */ b") == [("ident", "a"),
                                                  ("ident", "b")]

    def test_unterminated_block(self):
        with pytest.raises(OppSyntaxError):
            tokenize("a /* never ends")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(OppSyntaxError):
            tokenize('"never ends')

    def test_bad_character(self):
        with pytest.raises(OppSyntaxError):
            tokenize("a @ b")

    def test_newline_in_string(self):
        with pytest.raises(OppSyntaxError):
            tokenize('"line\nbreak"')

    def test_error_carries_position(self):
        try:
            tokenize("ok\nok @")
        except OppSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected OppSyntaxError")
