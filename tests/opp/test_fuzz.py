"""Fuzz/robustness tests for the O++ front end.

The parser and lexer must reject malformed input with OppSyntaxError —
never an internal exception — and must be total over arbitrary text.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OppError, OppSyntaxError
from repro.opp.lexer import tokenize
from repro.opp.parser import parse


class TestLexerTotality:
    @given(st.text(max_size=200))
    @settings(max_examples=300)
    def test_lexer_tokenizes_or_rejects(self, text):
        try:
            tokens = tokenize(text)
        except OppSyntaxError:
            return
        assert tokens[-1].kind == "eof"

    @given(st.text(alphabet="abc123+-*/<>=!&|(){};, \n\"'", max_size=120))
    @settings(max_examples=300)
    def test_c_flavoured_soup(self, text):
        try:
            tokenize(text)
        except OppSyntaxError:
            pass


class TestParserTotality:
    @given(st.text(max_size=150))
    @settings(max_examples=200)
    def test_parser_never_crashes(self, text):
        try:
            parse(text)
        except OppSyntaxError:
            pass

    @given(st.lists(st.sampled_from([
        "class", "c", "{", "}", "(", ")", ";", "int", "x", "=", "1", "+",
        "forall", "in", "suchthat", "by", "pnew", "pdelete", "persistent",
        "trigger", ":", "==>", "perpetual", "new", "if", "else", "while",
        "return", "->", ".", ",", "*",
    ]), max_size=40))
    @settings(max_examples=300)
    def test_token_soup(self, words):
        try:
            parse(" ".join(words))
        except OppSyntaxError:
            pass

    def test_deeply_nested_expressions(self):
        source = "x = " + "(" * 60 + "1" + ")" * 60 + ";"
        parse(source)

    def test_long_program(self):
        source = "\n".join("int v%d = %d;" % (i, i) for i in range(500))
        program = parse(source)
        assert len(program.decls) == 500


class TestInterpreterRobustness:
    def test_recursion_limit_surfaces_cleanly(self, db):
        from repro.opp import Interpreter
        interp = Interpreter(db)
        with pytest.raises((RecursionError, OppError)):
            interp.run("""
            int forever(int n) { return forever(n + 1); }
            forever(0);
            """)

    def test_sequential_runs_share_state(self, db):
        from repro.opp import Interpreter
        interp = Interpreter(db)
        interp.run("int counter = 10;")
        interp.run("counter = counter + 5;")
        interp.run('printf("%d", counter);')
        assert "".join(interp.output) == "15"

    def test_failed_run_does_not_poison_interpreter(self, db):
        from repro.opp import Interpreter
        interp = Interpreter(db)
        with pytest.raises(OppSyntaxError):
            interp.run("garbage @@@")
        interp.run('printf("fine");')
        assert "fine" in "".join(interp.output)
