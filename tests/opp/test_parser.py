"""Unit tests for the O++ parser (AST shapes)."""

import pytest

from repro.errors import OppSyntaxError
from repro.opp import ast_nodes as ast
from repro.opp.parser import parse


class TestClassDecls:
    def test_fields_and_access(self):
        prog = parse("""
        class point {
          public:
            int x;
            int y;
          private:
            double hidden;
        };
        """)
        cls = prog.decls[0]
        assert isinstance(cls, ast.ClassDecl)
        assert [(f.name, f.access) for f in cls.fields] == [
            ("x", "public"), ("y", "public"), ("hidden", "private")]

    def test_inheritance(self):
        prog = parse("""
        class a { public: int x; };
        class b : public a { public: int y; };
        class c : public a, public b { };
        """)
        assert prog.decls[1].bases == ["a"]
        assert prog.decls[2].bases == ["a", "b"]

    def test_methods_and_constructor(self):
        prog = parse("""
        class counter {
          public:
            int n;
            counter(int start) { n = start; }
            int bump() { n = n + 1; return n; }
        };
        """)
        cls = prog.decls[0]
        assert len(cls.methods) == 2
        ctor = [m for m in cls.methods if m.is_constructor][0]
        assert ctor.params[0].name == "start"

    def test_constraint_section(self):
        prog = parse("""
        class tank {
          public:
            int level;
          constraint:
            level >= 0;
            level <= 100;
        };
        """)
        assert len(prog.decls[0].constraints) == 2

    def test_trigger_section(self):
        prog = parse("""
        class tank {
          public:
            int level;
          trigger:
            low(int n) : level <= n ==> alert(this);
            perpetual empty() : level == 0 ==> alert(this);
            timed(int n) : within 60 : level >= n ==> ok(this) : fail(this);
        };
        """)
        triggers = prog.decls[0].triggers
        assert [t.name for t in triggers] == ["low", "empty", "timed"]
        assert triggers[1].perpetual
        assert triggers[2].within is not None
        assert triggers[2].timeout_action is not None

    def test_multi_declarator_fields(self):
        prog = parse("class p { public: int x, y, z; };")
        assert [f.name for f in prog.decls[0].fields] == ["x", "y", "z"]

    def test_set_member(self):
        prog = parse("class p { public: set<part> kids; };")
        field = prog.decls[0].fields[0]
        assert field.type_name.name == "set"
        assert field.type_name.element.name == "part"


class TestStatements:
    def test_forall_full_form(self):
        prog = parse("""
        class item { public: int qty; };
        forall t in item suchthat (t->qty > 0) by (t->qty) { t; }
        """)
        stmt = prog.decls[1]
        assert isinstance(stmt, ast.Forall)
        assert stmt.sources[0][0] == "t"
        assert stmt.suchthat is not None and stmt.by is not None

    def test_forall_deep(self):
        prog = parse("""
        class item { public: int qty; };
        forall t in item* { t; }
        """)
        assert prog.decls[1].sources[0][2] is True  # deep flag

    def test_forall_join(self):
        prog = parse("""
        class emp { public: char* name; };
        class child { public: char* parent; };
        forall e in emp, forall c in child suchthat (e->name == c->parent)
            { e; }
        """)
        stmt = prog.decls[2]
        assert [v for v, _, _ in stmt.sources] == ["e", "c"]

    def test_for_in_set(self):
        prog = parse("for x in s { x; }")
        assert isinstance(prog.decls[0], ast.ForIn)

    def test_classic_for(self):
        prog = parse("for (int i = 0; i < 10; i = i + 1) { i; }")
        assert isinstance(prog.decls[0], ast.CFor)

    def test_persistent_pointer_decl(self):
        prog = parse("""
        class item { public: int qty; };
        persistent item *p;
        """)
        decl = prog.decls[1]
        assert isinstance(decl, ast.VarDecl)
        assert decl.type_name.persistent and decl.type_name.pointer

    def test_pnew_pdelete_create(self):
        prog = parse("""
        class item { public: int qty; };
        create item;
        item *p;
        p = pnew item(5);
        pdelete p;
        """)
        kinds = [type(d).__name__ for d in prog.decls]
        assert kinds == ["ClassDecl", "Create", "VarDecl", "ExprStmt",
                         "PDelete"]

    def test_transaction_block(self):
        prog = parse("transaction { 1; }")
        assert isinstance(prog.decls[0], ast.TransactionBlock)

    def test_function_decl(self):
        prog = parse("int twice(int n) { return n * 2; }")
        assert isinstance(prog.decls[0], ast.FuncDecl)
        assert prog.decls[0].name == "twice"


class TestExpressions:
    def _expr(self, text):
        prog = parse(text + ";")
        return prog.decls[0].expr

    def test_precedence(self):
        expr = self._expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_chain(self):
        expr = self._expr("a < b == c")
        assert expr.op == "=="
        assert expr.left.op == "<"

    def test_logical_short_circuit_shape(self):
        expr = self._expr("a && b || c")
        assert expr.op == "||"

    def test_member_arrow_and_dot(self):
        expr = self._expr("a->b.c")
        assert isinstance(expr, ast.Member) and expr.field == "c"
        assert expr.target.field == "b"

    def test_is_test(self):
        expr = self._expr("p is persistent student*")
        assert isinstance(expr, ast.IsType)
        assert expr.persistent and expr.type_name == "student"

    def test_conditional(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_shift_as_set_ops(self):
        expr = self._expr("s << x >> y")
        assert expr.op == ">>" and expr.left.op == "<<"

    def test_assignment_chain(self):
        expr = self._expr("a = b = 3")
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_augmented_assign(self):
        expr = self._expr("a += 2")
        assert expr.op == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(OppSyntaxError):
            parse("1 + 2 = 3;")

    def test_call_args(self):
        expr = self._expr("f(1, x, g())")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3

    def test_incdec(self):
        expr = self._expr("i++")
        assert isinstance(expr, ast.IncDec)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(OppSyntaxError):
            parse("int x = 5")

    def test_unclosed_brace(self):
        with pytest.raises(OppSyntaxError):
            parse("class a { public: int x;")

    def test_garbage(self):
        with pytest.raises(OppSyntaxError):
            parse("class class class")
