"""Tests for the O++ interpreter: language semantics end to end."""

import pytest

from repro.core import Database
from repro.errors import (ConstraintViolation, OppNameError, OppRuntimeError,
                          OppTypeError)
from repro.opp import Interpreter


@pytest.fixture
def interp(db):
    return Interpreter(db)


def run(interp, source):
    interp.output.clear()
    interp.run(source)
    return "".join(interp.output)


class TestExpressionsAndStatements:
    def test_arithmetic_printf(self, interp):
        out = run(interp, 'printf("%d %g %d\\n", 2 + 3 * 4, 7.0 / 2, 7 % 3);')
        assert out == "14 3.5 1\n"

    def test_integer_division(self, interp):
        assert run(interp, 'printf("%d\\n", 7 / 2);') == "3\n"

    def test_division_by_zero(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, "1 / 0;")

    def test_variables_and_scope(self, interp):
        out = run(interp, """
        int x = 1;
        { int x = 2; printf("%d", x); }
        printf("%d", x);
        """)
        assert out == "21"

    def test_if_else_while(self, interp):
        out = run(interp, """
        int n = 0;
        int total = 0;
        while (n < 5) { total += n; n++; }
        if (total == 10) printf("ten"); else printf("other");
        """)
        assert out == "ten"

    def test_classic_for_with_break_continue(self, interp):
        out = run(interp, """
        for (int i = 0; i < 10; i++) {
            if (i == 2) continue;
            if (i == 5) break;
            printf("%d", i);
        }
        """)
        assert out == "0134"

    def test_functions(self, interp):
        out = run(interp, """
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        printf("%d", fib(10));
        """)
        assert out == "55"

    def test_conditional_expression(self, interp):
        assert run(interp, 'printf("%s", 1 < 2 ? "yes" : "no");') == "yes"

    def test_logical_short_circuit(self, interp):
        out = run(interp, """
        int boom() { printf("BOOM"); return 1; }
        if (false && boom()) printf("x");
        if (true || boom()) printf("ok");
        """)
        assert out == "ok"

    def test_string_ops(self, interp):
        out = run(interp, 'printf("%d %d", strlen("hello"), strcmp("a", "b"));')
        assert out == "5 -1"

    def test_undefined_name(self, interp):
        with pytest.raises(OppNameError):
            run(interp, "nosuchvar + 1;")


class TestClasses:
    def test_volatile_object(self, interp):
        out = run(interp, """
        class point {
          public:
            int x; int y;
            point(int a, int b) { x = a; y = b; }
            int manhattan() { return x + y; }
        };
        point *p;
        p = new point(3, 4);
        printf("%d", p->manhattan());
        """)
        assert out == "7"

    def test_default_constructor_positional(self, interp):
        out = run(interp, """
        class pair { public: int a; int b; };
        pair *p;
        p = new pair(1, 2);
        printf("%d%d", p->a, p->b);
        """)
        assert out == "12"

    def test_wrong_arity(self, interp):
        with pytest.raises(OppTypeError):
            run(interp, """
            class pt { public: int x; pt(int a) { x = a; } };
            new pt(1, 2, 3);
            """)

    def test_inheritance_and_dispatch(self, interp):
        out = run(interp, """
        class person {
          public:
            char* name;
            double income() { return 0.0; }
        };
        class faculty : public person {
          public:
            double salary;
            double income() { return salary; }
        };
        faculty *f;
        f = new faculty();
        f->salary = 50.0;
        f->name = "prof";
        printf("%s earns %g", f->name, f->income());
        """)
        assert out == "prof earns 50"

    def test_this(self, interp):
        out = run(interp, """
        class node {
          public:
            int v;
            node *me() { return this; }
        };
        node *n;
        n = new node();
        n->v = 9;
        printf("%d", n->me()->v);
        """)
        assert out == "9"

    def test_null_deref(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, """
            class a { public: int x; };
            a *p;
            p->x;
            """)

    def test_is_operator(self, interp):
        out = run(interp, """
        class animal { public: int x; };
        class dog : public animal { public: int y; };
        animal *a;
        a = new dog();
        if (a is dog*) printf("dog");
        if (a is animal*) printf(" animal");
        if (a is persistent dog*) printf(" persistent");
        """)
        assert out == "dog animal"


class TestPersistenceFromOpp:
    def test_pnew_and_forall(self, interp):
        out = run(interp, """
        class item { public: char* name; int qty; };
        create item;
        pnew item("a", 3);
        pnew item("b", 1);
        pnew item("c", 2);
        forall t in item suchthat (t->qty >= 2) by (t->qty)
            printf("%s%d", t->name, t->qty);
        """)
        assert out == "c2a3"

    def test_constraints_abort(self, interp):
        with pytest.raises(ConstraintViolation):
            run(interp, """
            class acct {
              public:
                int bal;
                int take(int n) { bal = bal - n; return bal; }
              constraint:
                bal >= 0;
            };
            create acct;
            acct *a;
            a = pnew acct(10);
            a->take(100);
            """)

    def test_triggers_fire(self, interp):
        out = run(interp, """
        class tank {
          public:
            int level;
            int drain(int n) { level = level - n; return level; }
          trigger:
            low(int mark) : level <= mark ==> printf("LOW %d", level);
        };
        create tank;
        tank *t;
        t = pnew tank(100);
        t->low(10);
        transaction { t->drain(95); }
        """)
        assert out == "LOW 5"

    def test_versions_from_opp(self, interp):
        out = run(interp, """
        class doc { public: char* text; };
        create doc;
        doc *d;
        d = pnew doc("first");
        newversion(d);
        d->text = "second";
        printf("%s/%s", deref(vfirst(d))->text, d->text);
        """)
        assert out == "first/second"

    def test_sets_from_opp(self, interp):
        out = run(interp, """
        class bag { public: set<int> items; };
        bag *b;
        b = new bag();
        b->items << 3 << 1 << 3 << 2;
        int total = 0;
        for x in b->items total += x;
        printf("%d", total);
        """)
        assert out == "6"

    def test_pdelete_from_opp(self, interp, db):
        run(interp, """
        class item { public: int n; };
        create item;
        item *p;
        p = pnew item(1);
        pnew item(2);
        pdelete p;
        """)
        assert db.cluster("item").count() == 1

    def test_join_forall(self, interp):
        out = run(interp, """
        class emp { public: char* name; };
        class kid { public: char* parent; char* kname; };
        create emp;
        create kid;
        pnew emp("smith");
        pnew emp("ng");
        pnew kid("smith", "tom");
        pnew kid("smith", "ann");
        pnew kid("other", "zed");
        forall e in emp, forall c in kid suchthat (e->name == c->parent)
            by (c->kname)
            printf("%s->%s ", e->name, c->kname);
        """)
        assert out == "smith->ann smith->tom "

    def test_deep_forall_with_is(self, interp):
        out = run(interp, """
        class person { public: char* name; };
        class student : public person { public: int year; };
        create person;
        create student;
        pnew person("a");
        pnew student("b", 2);
        pnew student("c", 3);
        int total = 0; int studs = 0;
        forall p in person* {
            total++;
            if (p is student*) studs++;
        }
        printf("%d %d", total, studs);
        """)
        assert out == "3 2"


class TestInterop:
    def test_python_sees_opp_objects(self, interp, db):
        run(interp, """
        class gadget { public: char* name; int size; };
        create gadget;
        pnew gadget("widget", 42);
        """)
        from repro.core.objects import class_registry
        gadget_cls = class_registry()["gadget"]
        objs = list(db.cluster(gadget_cls))
        assert len(objs) == 1
        assert objs[0].name == "widget" and objs[0].size == 42

    def test_opp_sees_python_objects(self, interp, db):
        from repro.core import IntField, OdeObject, StringField

        class Tool(OdeObject):
            label = StringField(default="")
            weight = IntField(default=0)

        db.create(Tool)
        db.pnew(Tool, label="hammer", weight=3)
        out = run(interp, """
        forall t in Tool printf("%s:%d", t->label, t->weight);
        """)
        assert out == "hammer:3"


class TestLanguageExtensions:
    def test_do_while(self, interp):
        out = run(interp, """
        int i = 0;
        do { i++; } while (i < 5);
        printf("%d", i);
        int j = 100;
        do { j++; } while (false);
        printf(" %d", j);
        """)
        assert out == "5 101"

    def test_do_while_break(self, interp):
        out = run(interp, """
        int i = 0;
        do { i++; if (i == 3) break; } while (true);
        printf("%d", i);
        """)
        assert out == "3"

    def test_string_builtins(self, interp):
        out = run(interp, """
        printf("%s %s %s %d %g", toupper("abc"), tolower("XYZ"),
               substr("hello", 1, 3), atoi("42"), atof("2.5"));
        """)
        assert out == "ABC xyz ell 42 2.5"

    def test_min_max(self, interp):
        assert run(interp, 'printf("%d %d", min(3, 7), max(3, 7));') == "3 7"


class TestSuchthatCompilation:
    """O++ suchthat clauses compile to predicates that use indexes."""

    @pytest.fixture
    def stocked(self, interp, db):
        run(interp, """
        class widget { public: char* name; double price; int grade; };
        create widget;
        for (int i = 0; i < 60; i++)
            pnew widget("w", 1.0 * (i - (i/20)*20), i - (i/3)*3);
        """)
        from repro.core.objects import class_registry
        return db, class_registry()["widget"]

    def test_compiled_equality_uses_index(self, interp, stocked):
        db, widget = stocked
        db.create_index(widget, "grade", kind="hash")
        out = run(interp, """
        int n = 0;
        forall w in widget suchthat (w->grade == 1) n++;
        printf("%d", n);
        """)
        assert out == "20"

    def test_compiled_range_matches_interpreted(self, interp, stocked):
        db, widget = stocked
        db.create_index(widget, "price", kind="btree")
        out = run(interp, """
        int a = 0; int b = 0;
        forall w in widget suchthat (w->price >= 5.0 && w->price < 8.0) a++;
        forall w in widget suchthat (5.0 <= w->price && 8.0 > w->price) b++;
        printf("%d %d", a, b);
        """)
        assert out == "9 9"

    def test_uncompilable_clause_still_correct(self, interp, stocked):
        out = run(interp, """
        int n = 0;
        forall w in widget suchthat (w->price + w->grade > 18.0) n++;
        printf("%d", n);
        """)
        db, widget = stocked
        expected = sum(1 for w in db.cluster(widget)
                       if w.price + w.grade > 18.0)
        assert out == str(expected)

    def test_constant_side_from_variable(self, interp, stocked):
        out = run(interp, """
        double limit = 2.0;
        int n = 0;
        forall w in widget suchthat (w->price < limit) n++;
        printf("%d", n);
        """)
        assert out == "6"


class TestAccessControl:
    """O++ enforces the class's access sections (paper: encapsulation)."""

    SOURCE = """
    class account {
        int secret;
      public:
        int shown;
        account(int a, int b) { secret = a; shown = b; }
        int reveal() { return secret; }
      private:
        int internal_helper() { return secret * 2; }
    };
    account *acc;
    acc = new account(42, 7);
    """

    def test_public_member_visible(self, interp):
        out = run(interp, self.SOURCE + 'printf("%d", acc->shown);')
        assert out == "7"

    def test_private_field_hidden(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, self.SOURCE + "acc->secret;")

    def test_private_field_unwritable(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, self.SOURCE + "acc->secret = 0;")

    def test_private_method_hidden(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, self.SOURCE + "acc->internal_helper();")

    def test_member_functions_see_private(self, interp):
        out = run(interp, self.SOURCE + 'printf("%d", acc->reveal());')
        assert out == "42"

    def test_default_class_access_is_private(self, interp):
        """Members before the first access label are private (C++ rule)."""
        with pytest.raises(OppRuntimeError):
            run(interp, """
            class c { int hidden; public: c(int h) { hidden = h; } };
            c *p;
            p = new c(1);
            p->hidden;
            """)

    def test_inherited_private_stays_private(self, interp):
        with pytest.raises(OppRuntimeError):
            run(interp, self.SOURCE + """
            class child : public account {
              public:
                int noop() { return 0; }
            };
            child *k;
            k = new child(1, 2);
            k->secret;
            """)

    def test_python_classes_unrestricted(self, interp, db):
        """Only O++-declared access sections are enforced; Python classes
        follow Python conventions."""
        from repro.core import IntField, OdeObject

        class PyOpen(OdeObject):
            anything = IntField(default=5)

        db.create(PyOpen)
        db.pnew(PyOpen)
        out = run(interp, 'forall p in PyOpen printf("%d", p->anything);')
        assert out == "5"


class TestByDesc:
    def test_descending_order(self, interp):
        out = run(interp, """
        class score { public: char* who; int pts; };
        create score;
        pnew score("a", 10);
        pnew score("b", 30);
        pnew score("c", 20);
        forall s in score by (s->pts) desc
            printf("%s", s->who);
        """)
        assert out == "bca"
