"""Multi-threaded stress tests for the transaction/lock stack.

These tests exercise genuinely concurrent transactions: thread-local
transaction handles, S/X object locks with cluster intention locks,
deadlock detection with the requester as victim, and the
``run_transaction`` retry helper. All are marked ``concurrency`` so they
can be run in isolation with ``pytest -m concurrency`` (or skipped with
``-m "not concurrency"``).
"""

import threading

import pytest

from repro.core import Database, IntField, OdeObject, StringField
from repro.errors import DeadlockError, LockTimeoutError

pytestmark = pytest.mark.concurrency


class Account(OdeObject):
    owner = StringField(default="")
    balance = IntField(default=0)


class Counter(OdeObject):
    n = IntField(default=0)


def run_threads(workers):
    """Start *workers* (zero-arg callables) and re-raise their failures."""
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for main
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    alive = [t for t in threads if t.is_alive()]
    assert not alive, "threads hung: %r" % alive
    if errors:
        raise errors[0]
    return errors


class TestDisjointWriters:
    def test_parallel_writers_on_disjoint_objects(self, db):
        """N threads each update their own object; all updates survive."""
        db.create(Account)
        n_threads, n_rounds = 6, 25
        oids = []
        for i in range(n_threads):
            obj = db.pnew(Account, owner="t%d" % i)
            oids.append(obj.oid)

        def writer(oid):
            def work():
                for _ in range(n_rounds):
                    def txn():
                        acct = db.deref(oid)
                        acct.balance += 1
                    db.run_transaction(txn, retries=10)
            return work

        run_threads([writer(oid) for oid in oids])
        for oid in oids:
            assert db.deref(oid).balance == n_rounds
        assert db.store.locks.stats()["held"] == 0

    def test_parallel_creators_in_one_cluster(self, db):
        """Threads pnew into the same cluster; every object lands."""
        db.create(Counter)
        n_threads, per_thread = 5, 20

        def creator(tag):
            def work():
                for i in range(per_thread):
                    db.run_transaction(
                        lambda: db.pnew(Counter, n=tag * 1000 + i),
                        retries=10)
            return work

        run_threads([creator(t) for t in range(n_threads)])
        assert db.cluster(Counter).count() == n_threads * per_thread
        assert db.store.locks.stats()["held"] == 0


class TestOverlappingWriters:
    def test_concurrent_increments_are_serializable(self, db):
        """Conflicting read-modify-write transactions serialize: no lost
        updates, the final value is exactly the number of increments."""
        db.create(Counter)
        shared = db.pnew(Counter, n=0)
        oid = shared.oid
        n_threads, n_rounds = 6, 20

        def work():
            for _ in range(n_rounds):
                def txn():
                    obj = db.deref(oid)      # S lock ...
                    obj.n += 1               # ... upgraded to X on write
                db.run_transaction(txn, retries=50)

        run_threads([work] * n_threads)
        db._cache.clear()
        assert db.deref(oid).n == n_threads * n_rounds
        stats = db.store.locks.stats()
        assert stats["grants"] > 0          # object layer really took locks
        assert stats["held"] == 0


class TestDeadlock:
    def test_deadlock_detected_and_one_txn_aborted(self, db):
        """Opposite lock orders on two objects deadlock; the victim gets
        DeadlockError (or times out waiting), the other commits."""
        db.create(Account)
        a = db.pnew(Account, owner="a").oid
        b = db.pnew(Account, owner="b").oid
        first_locked = threading.Barrier(2, timeout=30)
        outcomes = []

        def worker(mine, theirs):
            def work():
                try:
                    with db.transaction():
                        # Read both before either writes: a deref after
                        # the peer's write would, under MVCC, resolve a
                        # snapshot copy and conflict out rather than
                        # deadlock. Opposite-order writes still cycle.
                        objm = db.deref(mine)
                        objt = db.deref(theirs)
                        first_locked.wait()   # both have read both
                        objm.balance += 1
                        first_locked.wait()   # both hold their X lock
                        objt.balance += 1
                    outcomes.append("committed")
                except (DeadlockError, LockTimeoutError):
                    outcomes.append("aborted")
            return work

        run_threads([worker(a, b), worker(b, a)])
        assert sorted(outcomes) == ["aborted", "committed"]
        assert db.store.locks.stats()["held"] == 0

    def test_run_transaction_retries_past_deadlock(self, db):
        """With the retry helper, both deadlocking transactions succeed."""
        db.create(Account)
        a = db.pnew(Account, owner="a").oid
        b = db.pnew(Account, owner="b").oid
        n_rounds = 10

        def transferer(src, dst):
            def work():
                for _ in range(n_rounds):
                    def txn():
                        db.deref(src).balance -= 1
                        db.deref(dst).balance += 1
                    db.run_transaction(txn, retries=50)
            return work

        run_threads([transferer(a, b), transferer(b, a)])
        db._cache.clear()
        # Transfers in both directions cancel out.
        assert db.deref(a).balance == 0
        assert db.deref(b).balance == 0
        stats = db.store.locks.stats()
        assert stats["held"] == 0

    def test_victim_failure_releases_all_locks(self, db):
        """A transaction that dies mid-flight (any exception) leaks no
        locks: stats()['held'] returns to zero."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid

        def dying():
            with db.transaction():
                db.deref(oid).n = 99
                raise RuntimeError("thread dies mid-transaction")

        with pytest.raises(RuntimeError):
            dying()
        # Same failure inside a worker thread (thread "dies" and exits).
        run_threads([lambda: pytest.raises(RuntimeError, dying)])
        assert db.store.locks.stats()["held"] == 0
        db._cache.clear()
        assert db.deref(oid).n == 0    # the write rolled back


class TestReadersDuringGroupCommit:
    def test_readers_see_committed_state_under_group_commit(self, db_path):
        """Readers iterate while writers commit under group durability;
        every observed balance is one a committed transaction produced."""
        db = Database(db_path, durability="group")
        try:
            db.create(Account)
            oids = [db.pnew(Account, owner=str(i), balance=0).oid
                    for i in range(4)]
            stop = threading.Event()
            seen = []

            def writer(oid):
                def work():
                    for _ in range(15):
                        def txn():
                            db.deref(oid).balance += 2
                        db.run_transaction(txn, retries=50)
                return work

            def reader():
                while not stop.is_set():
                    def txn():
                        return [db.deref(oid).balance for oid in oids]
                    seen.append(db.run_transaction(txn, retries=50))

            writers = [writer(oid) for oid in oids]

            def run_all():
                threads = [threading.Thread(target=reader)
                           for _ in range(2)]
                for t in threads:
                    t.start()
                try:
                    run_threads(writers)
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=60)
                    assert not any(t.is_alive() for t in threads)

            run_all()
            # Writers bump by 2: a reader inside a transaction must never
            # observe an odd (uncommitted, half-applied) balance.
            for snapshot in seen:
                assert all(v % 2 == 0 for v in snapshot), snapshot
            db._cache.clear()
            for oid in oids:
                assert db.deref(oid).balance == 30
            assert db.store.locks.stats()["held"] == 0
        finally:
            if not db._closed:
                db.close()


class TestScanVsWriter:
    def test_cluster_scan_blocks_out_writer(self, db):
        """forall-style iteration inside a transaction takes a cluster S
        lock, so a concurrent writer serializes against the scan."""
        db.create(Counter)
        for i in range(10):
            db.pnew(Counter, n=i)
        totals = []

        def scanner():
            def txn():
                return sum(obj.n for obj in db.cluster(Counter))
            for _ in range(10):
                totals.append(db.run_transaction(txn, retries=50))

        def writer():
            for i in range(10):
                db.run_transaction(
                    lambda: db.pnew(Counter, n=0), retries=50)

        run_threads([scanner, writer])
        assert all(t == 45 for t in totals)
        assert db.cluster(Counter).count() == 20
        assert db.store.locks.stats()["held"] == 0


class TestDecodedCacheCoherence:
    def test_decoded_cache_coherent_under_concurrent_writers(self, db):
        """Each thread re-materializes its own object every round (popping
        its live instance between transactions), so every deref goes
        through the decoded cache's LSN-token validation — while the
        *other* threads' commits keep bumping the LSNs of the heap pages
        the objects share. A stale decoded entry would surface as a
        value below the thread's own committed count."""
        db.create(Account)
        n_threads, n_rounds = 5, 20
        oids = [db.pnew(Account, owner="t%d" % i).oid
                for i in range(n_threads)]
        stale = []

        def worker(oid):
            key = (oid.cluster, oid.serial)

            def work():
                for i in range(n_rounds):
                    # Only this thread ever touches `key`, so dropping the
                    # live instance between transactions is safe — and it
                    # forces the next deref through _load_current.
                    db._cache.pop(key, None)

                    def txn():
                        acct = db.deref(oid)
                        if acct.balance != i:
                            stale.append((key, i, acct.balance))
                        acct.balance += 1
                    db.run_transaction(txn, retries=50)
            return work

        run_threads([worker(oid) for oid in oids])
        assert not stale
        for oid in oids:
            db._cache.pop((oid.cluster, oid.serial), None)
            assert db.deref(oid).balance == n_rounds
        stats = db._decoded.stats()
        assert stats["hits"] + stats["misses"] > 0
        assert db.store.locks.stats()["held"] == 0

    def test_abort_invalidates_decoded_cache(self, db):
        """A flushed-then-aborted write must not linger in the decoded
        cache: the post-abort deref sees the pre-transaction state."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        db._cache.clear()
        assert db.deref(oid).n == 0    # warm the decoded cache
        with pytest.raises(RuntimeError):
            with db.transaction() as txn:
                obj = db.deref(oid)
                obj.n = 99
                db._flush(txn.txn_id)  # write reaches the heap pages
                raise RuntimeError("force abort")
        db._cache.clear()
        assert db.deref(oid).n == 0
        assert db.store.locks.stats()["held"] == 0

    def test_cache_validation_survives_writer_between_reads(self, db):
        """Sequential interleaving: read (cache fills), another session
        commits a change, read again — the second read must miss (token
        LSN moved) and return the new state."""
        db.create(Account)
        oid = db.pnew(Account, owner="x", balance=1).oid
        db._cache.clear()
        assert db.deref(oid).balance == 1
        done = threading.Event()

        def other_writer():
            def txn():
                db.deref(oid).balance = 2
            db.run_transaction(txn, retries=50)
            done.set()

        run_threads([other_writer])
        assert done.is_set()
        db._cache.clear()
        assert db.deref(oid).balance == 2
