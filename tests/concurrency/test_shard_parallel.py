"""Shard-parallel maintenance racing MVCC scans (ISSUE 8).

The contract under test: shard-parallel vacuum and the reclustering
daemon rewrite heap pages concurrently with snapshot readers, and
nothing is ever lost — every scan sees a consistent snapshot with the
full object population, per-shard decoded-page/decoded-object caches
invalidate when their pages move, and writers keep working throughout.
"""

import threading
import time

import pytest

from repro.core import Database, IntField, OdeObject, StringField
from repro.query import forall
from repro.storage.recluster import ReclusterDaemon
from repro.storage.store import Store

pytestmark = pytest.mark.concurrency

N_SHARDS = 4


@pytest.fixture(autouse=True)
def force_parallel_scans(monkeypatch):
    """Pin the executor on: the worker default is capped at the core
    count, and these races exist to exercise the parallel scan path."""
    monkeypatch.setenv("REPRO_SCAN_WORKERS", str(N_SHARDS))


class Part(OdeObject):
    name = StringField(default="")
    qty = IntField(default=0)


@pytest.fixture
def sharded_db(tmp_path):
    db = Database(str(tmp_path / "shard.odb"), shards=N_SHARDS)
    yield db
    if not db._closed:
        try:
            db.close()
        except Exception:
            pass


def run_threads(workers, timeout=120):
    """Start *workers* (zero-arg callables) and re-raise their failures."""
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised in main
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    assert not alive, "threads hung: %r" % alive
    if errors:
        raise errors[0]


class TestScansVersusVacuum:
    def test_mvcc_scans_race_sharded_vacuum(self, sharded_db):
        """Readers looping full scans while vacuum rewrites all four
        shards in parallel: every scan observes the full population."""
        db = sharded_db
        db.create(Part)
        n = 200
        for i in range(n):
            db.pnew(Part, name="p%d" % i, qty=i)
        stop = threading.Event()
        scans = {"done": 0}

        def reader():
            while not stop.is_set():
                with db.transaction():
                    got = sorted(p.qty for p in forall(db.cluster(Part)))
                    assert got == list(range(n)), (
                        "scan lost objects: %d/%d" % (len(got), n))
                scans["done"] += 1

        def vacuumer():
            try:
                for _ in range(5):
                    # Records, not objects: every object carries a head
                    # record plus its version states.
                    report = db.store.vacuum("Part")
                    assert report["objects"] >= n
            finally:
                stop.set()

        run_threads([reader, reader, vacuumer])
        assert scans["done"] > 0
        assert db.verify() == []

    def test_store_scans_race_sharded_vacuum_and_writers(self, tmp_path):
        """Raw store level: batched parallel scans + per-key writers +
        repeated sharded vacuums; object count never drifts."""
        store = Store(str(tmp_path / "raw.pages"), shards=N_SHARDS)
        txn = store.begin()
        store.create_cluster(txn, "c")
        serials = []
        for i in range(150):
            serial = store.allocate_serial(txn, "c")
            store.put(txn, "c", (serial, 0),
                      {"__key": [serial, 0], "n": i}, new=True)
            serials.append(serial)
        store.commit(txn)
        stop = threading.Event()

        def scanner():
            while not stop.is_set():
                seen = {record["__key"][0]
                        for batch in store.scan_batches("c")
                        for _rid, record in batch}
                # Writers only overwrite existing keys, so the full
                # serial set must be visible to every scan.
                assert seen == set(serials), (
                    "scan lost %d objects" % (len(serials) - len(seen)))

        def writer():
            i = 0
            while not stop.is_set():
                wtxn = store.begin()
                serial = serials[i % len(serials)]
                store.put(wtxn, "c", (serial, 0),
                          {"__key": [serial, 0], "n": -i})
                store.commit(wtxn)
                i += 1

        def vacuumer():
            try:
                for _ in range(4):
                    store.vacuum("c")
            finally:
                stop.set()

        run_threads([scanner, scanner, writer, vacuumer])
        assert store.count("c") == len(serials)
        assert store.verify_integrity() == []
        store.close()


class TestScansVersusRecluster:
    def test_scans_race_recluster_daemon(self, tmp_path):
        """A fast-cycling daemon migrating hot objects while readers
        loop snapshot scans: consistent results, nothing lost."""
        db = Database(str(tmp_path / "rd.odb"), shards=N_SHARDS)
        try:
            db.create(Part)
            n = 120
            objs = [db.pnew(Part, name="p%d" % i, qty=i) for i in range(n)]
            daemon = ReclusterDaemon(db.store, interval=0.05, min_hits=2)
            daemon.start()
            try:
                stop = threading.Event()

                def reader():
                    while not stop.is_set():
                        with db.transaction():
                            got = sorted(p.qty
                                         for p in forall(db.cluster(Part)))
                        assert got == list(range(n))

                def heater():
                    # Hammer a rotating hot set through store.get so the
                    # daemon's profile keeps producing migrations.
                    try:
                        deadline = time.time() + 4.0
                        i = 0
                        while (time.time() < deadline
                               and db.store.recluster_runs < 3):
                            serial = objs[i % 10].oid.serial
                            db.store.get("Part", (serial, 0))
                            i += 1
                            if i % 500 == 0:
                                time.sleep(0.05)
                    finally:
                        stop.set()

                run_threads([reader, reader, heater])
                assert db.store.recluster_runs >= 1, (
                    "daemon never migrated anything")
            finally:
                daemon.stop()
            assert db.verify() == []
            with db.transaction():
                assert len(list(forall(db.cluster(Part)))) == n
        finally:
            db.close()


class TestCacheInvalidation:
    def test_page_cache_invalidates_after_shard_rewrite(self, tmp_path):
        """The decoded-page cache keys on (gpid, LSN); a recluster of one
        shard moves its records to fresh pages, so re-scans return the
        new placement, not stale cached batches."""
        store = Store(str(tmp_path / "pc.pages"), shards=N_SHARDS)
        txn = store.begin()
        store.create_cluster(txn, "c")
        serials = []
        for i in range(80):
            serial = store.allocate_serial(txn, "c")
            store.put(txn, "c", (serial, 0),
                      {"__key": [serial, 0], "n": i}, new=True)
            serials.append(serial)
        store.commit(txn)
        # Two passes: the second one populates from / hits the cache.
        for _ in range(2):
            before = [record["n"] for batch in store.scan_batches("c")
                      for _rid, record in batch]
        assert store.page_cache_hits > 0
        hot = [s for s in serials
               if store._shard_of_key((s, 0)) == 2][:5]
        store.recluster_shard("c", hot, shard=2)
        after = {record["__key"][0]: record["n"]
                 for batch in store.scan_batches("c")
                 for _rid, record in batch}
        assert len(after) == 80
        assert sorted(after.values()) == sorted(before)
        # The migrated shard's records now come from different pages.
        moved_rids = {}
        for batch in store.scan_batches("c"):
            for rid, record in batch:
                moved_rids[record["__key"][0]] = rid
        from repro.storage.sharding import shard_of
        for serial in hot:
            assert shard_of(moved_rids[serial].page_no) == 2
        store.close()

    def test_decoded_object_cache_coherent_across_recluster(self,
                                                            sharded_db):
        """Object-layer decoded cache entries are LSN-token guarded;
        after a recluster moves the objects their tokens stop
        validating, so derefs re-read instead of serving stale data."""
        db = sharded_db
        db.create(Part)
        objs = [db.pnew(Part, name="p%d" % i, qty=i) for i in range(40)]
        with db.transaction():
            for obj in forall(db.cluster(Part)):
                assert obj.qty >= 0  # populate the decoded cache
        serials = [o.oid.serial for o in objs]
        for sid in range(N_SHARDS):
            hot = [s for s in serials
                   if db.store._shard_of_key((s, 0)) == sid][:3]
            db.store.recluster_shard("Part", hot, shard=sid)
        with db.transaction():
            got = sorted(p.qty for p in forall(db.cluster(Part)))
        assert got == list(range(40))
        # And a write-after-recluster still lands correctly.
        with db.transaction():
            objs[0].qty = 999
        with db.transaction():
            assert max(p.qty for p in forall(db.cluster(Part))) == 999
