"""MVCC snapshot reads: repeatable reads, write conflicts, time travel.

ISSUE 7's concurrency contract: transactions read from a snapshot fixed
at begin (no S locks — readers never block writers and writers never
block readers), write-write conflicts keep using X locks, a write to an
object whose snapshot is stale raises
:class:`~repro.errors.SnapshotConflictError` (retried by
``run_transaction``), and ``as of`` tokens replay recent history.
"""

import threading

import pytest

from repro.core import Database, IntField, OdeObject, StringField
from repro.core.database import VersionCache
from repro.core.oid import Oid, Vref
from repro.core.versions import newversion, versions, vnext, vprev
from repro.errors import (DanglingReferenceError, NotPersistentError,
                          SnapshotConflictError, SnapshotTooOldError,
                          TransactionError)
from repro.opp import Interpreter
from repro.query import A, forall

pytestmark = pytest.mark.concurrency


class Counter(OdeObject):
    n = IntField(default=0)


class Item(OdeObject):
    name = StringField(default="")
    qty = IntField(default=0)


def run_threads(workers):
    """Start *workers* (zero-arg callables) and re-raise their failures."""
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for main
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    alive = [t for t in threads if t.is_alive()]
    assert not alive, "threads hung: %r" % alive
    if errors:
        raise errors[0]


class TestSnapshotReads:
    def test_reader_repeats_its_snapshot_across_a_commit(self, db):
        """A transaction re-reads the value it started with even after a
        concurrent transaction commits — and the writer commits *while*
        the reader's transaction is still open (readers hold no S locks,
        so they cannot block the writer)."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        in_txn = threading.Event()
        committed = threading.Event()
        saw = {}

        def reader():
            with db.transaction():
                saw["first"] = db.deref(oid).n
                in_txn.set()
                assert committed.wait(timeout=30), \
                    "writer blocked while reader transaction was open"
                saw["deref"] = db.deref(oid).n
                saw["scan"] = [o.n for o in db.cluster(Counter)]

        def writer():
            assert in_txn.wait(timeout=30)
            db.run_transaction(lambda: setattr(db.deref(oid), "n", 7))
            committed.set()

        run_threads([reader, writer])
        assert saw == {"first": 0, "deref": 0, "scan": [0]}
        # Outside the reader's transaction the commit is visible.
        assert db.deref(oid).n == 7
        assert db.metrics.get("mvcc.resolutions") > 0
        assert db.store.locks.stats()["held"] == 0

    def test_uncommitted_write_invisible_to_other_readers(self, db):
        """While a writer transaction is in flight, both autocommit derefs
        and cluster scans from another thread see the pre-image — never
        the writer's in-memory or flushed-but-uncommitted state."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        wrote = threading.Event()
        done = threading.Event()

        def writer():
            with db.transaction() as txn:
                db.deref(oid).n = 5
                db._flush(txn.txn_id)   # uncommitted bytes reach the heap
                wrote.set()
                assert done.wait(timeout=30)

        def reader():
            assert wrote.wait(timeout=30)
            try:
                assert db.deref(oid).n == 0
                assert [o.n for o in db.cluster(Counter)] == [0]
                with db.transaction():
                    assert db.deref(oid).n == 0
            finally:
                done.set()

        run_threads([writer, reader])
        assert db.deref(oid).n == 5
        assert db.store.locks.stats()["held"] == 0

    def test_scan_totals_are_snapshot_consistent(self, db):
        """A scanning transaction never observes a torn multi-object
        update: a writer that moves quantity between two items commits
        either entirely before or entirely after the snapshot."""
        db.create(Item)
        a = db.pnew(Item, name="a", qty=50).oid
        b = db.pnew(Item, name="b", qty=50).oid
        stop = threading.Event()
        totals = []

        def scanner():
            for _ in range(30):
                def txn():
                    return sum(o.qty for o in db.cluster(Item))
                totals.append(db.run_transaction(txn, retries=50))
            stop.set()

        def mover():
            while not stop.is_set():
                def txn():
                    db.deref(a).qty -= 1
                    db.deref(b).qty += 1
                db.run_transaction(txn, retries=50)

        run_threads([scanner, mover])
        assert totals and all(t == 100 for t in totals)
        assert db.store.locks.stats()["held"] == 0


class TestWriteConflicts:
    def test_first_updater_wins_on_read_then_write(self, db):
        """Read an object, let another transaction commit a newer write,
        then write — the stale transaction gets SnapshotConflictError."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid

        with pytest.raises(SnapshotConflictError):
            with db.transaction():
                obj = db.deref(oid)
                assert obj.n == 0
                run_threads([lambda: db.run_transaction(
                    lambda: setattr(db.deref(oid), "n", 3))])
                obj.n = 9   # conflicts: a commit landed past our snapshot
        assert db.deref(oid).n == 3
        assert db.metrics.get("mvcc.conflicts") >= 1
        assert db.store.locks.stats()["held"] == 0

    def test_write_through_snapshot_copy_conflicts(self, db):
        """A deref that resolved a history image returns a private stale
        copy; writing through it raises immediately (before any lock
        wait) instead of silently clobbering the in-flight writer."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        started = threading.Event()
        release = threading.Event()

        def writer():
            with db.transaction():
                db.deref(oid).n = 5
                started.set()
                assert release.wait(timeout=30)

        def reader():
            assert started.wait(timeout=30)
            try:
                with db.transaction():
                    obj = db.deref(oid)   # resolves the pre-image
                    assert obj.n == 0
                    with pytest.raises(SnapshotConflictError):
                        obj.n = 9
            finally:
                release.set()

        run_threads([writer, reader])
        assert db.deref(oid).n == 5
        assert db.store.locks.stats()["held"] == 0

    def test_run_transaction_retries_snapshot_conflicts(self, db):
        """SnapshotConflictError counts as "aborted through no fault of
        its own": the retry helper re-runs the body on a fresh snapshot."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        attempts = {"n": 0}
        base = db.metrics.get("txn.retries") or 0

        def body():
            attempts["n"] += 1
            obj = db.deref(oid)
            if attempts["n"] == 1:
                # Simulate losing the first-updater race mid-body.
                run_threads([lambda: db.run_transaction(
                    lambda: setattr(db.deref(oid), "n", 1))])
            obj.n += 10

        db.run_transaction(body, retries=3)
        assert attempts["n"] == 2
        assert (db.metrics.get("txn.retries") or 0) == base + 1
        assert db.deref(oid).n == 11   # retried on top of the winner

    def test_concurrent_increments_still_serialize(self, db):
        """Lost-update check under MVCC: conflicting read-modify-writes
        retried by run_transaction converge to the exact total."""
        db.create(Counter)
        oid = db.pnew(Counter, n=0).oid
        n_threads, n_rounds = 4, 15

        def work():
            for _ in range(n_rounds):
                def txn():
                    db.deref(oid).n += 1
                db.run_transaction(txn, retries=100)

        run_threads([work] * n_threads)
        db._cache.clear()
        assert db.deref(oid).n == n_threads * n_rounds
        assert db.store.locks.stats()["held"] == 0


class TestTimeTravel:
    def test_as_of_scan_replays_past_states(self, db):
        db.create(Item)
        a = db.pnew(Item, name="a", qty=1)
        t0 = db.snapshot_token()
        b = db.pnew(Item, name="b", qty=2)
        with db.transaction():     # explicit: autocommit writes defer
            a.qty = 10
        t1 = db.snapshot_token()
        db.pdelete(b.oid)

        # At t0: only "a", at its original quantity; "b" not created yet.
        assert [(o.name, o.qty)
                for o in db.cluster(Item).as_of(t0)] == [("a", 1)]
        # At t1: updated "a" plus "b" — deleted since, so the scan
        # resurrects it from its pre-delete image.
        assert sorted((o.name, o.qty)
                      for o in db.cluster(Item).as_of(t1)) \
            == [("a", 10), ("b", 2)]
        # The present is unaffected.
        assert [(o.name, o.qty) for o in db.cluster(Item)] == [("a", 10)]

    def test_as_of_count_and_oids(self, db):
        db.create(Item)
        a = db.pnew(Item, name="a", qty=1)
        a_serial = a.oid.serial      # pdelete below makes `a` volatile
        t0 = db.snapshot_token()
        b = db.pnew(Item, name="b", qty=2)
        db.pdelete(a.oid)
        handle = db.cluster(Item).as_of(t0)
        assert handle.count() == 1
        assert [o.serial for o in handle.oids()] == [a_serial]
        assert db.cluster(Item).count() == 1
        assert [o.serial for o in db.cluster(Item).oids()] \
            == [b.oid.serial]

    def test_as_of_objects_are_read_only(self, db):
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        tok = db.snapshot_token()
        with db.transaction():
            obj.n = 2
        old = next(iter(db.cluster(Counter).as_of(tok)))
        assert old.n == 1
        with pytest.raises(SnapshotConflictError):
            old.n = 99
        assert db.deref(obj.oid).n == 2

    def test_forall_as_of_with_predicate(self, db):
        db.create(Item)
        db.pnew(Item, name="cheap", qty=1)
        db.pnew(Item, name="mid", qty=5)
        tok = db.snapshot_token()
        db.pnew(Item, name="late", qty=9)
        rows = (forall(db.cluster(Item)).as_of(tok)
                .suchthat(A.qty > 2).to_list())
        assert [o.name for o in rows] == ["mid"]
        # count() goes through the same plan machinery.
        assert forall(db.cluster(Item)).as_of(tok).count() == 2
        assert forall(db.cluster(Item)).suchthat(A.qty > 2).count() == 2

    def test_opp_forall_as_of(self, db):
        """O++ end to end: capture a token with the snapshot_token()
        builtin, mutate, then replay the past with ``as of (t)``."""
        interp = Interpreter(db)
        interp.run("""
        class part { public: char* name; int qty; };
        create part;
        pnew part("bolt", 3);
        int t = snapshot_token();
        pnew part("nut", 8);
        forall p in part as of (t) printf("%s=%d;", p->name, p->qty);
        printf("|");
        forall p in part suchthat (p->qty > 0) by (p->name)
            printf("%s=%d;", p->name, p->qty);
        """)
        assert "".join(interp.output) == "bolt=3;|bolt=3;nut=8;"

    def test_opp_as_of_rejects_non_integer_token(self, db):
        from repro.errors import OppRuntimeError
        interp = Interpreter(db)
        interp.run('class part { public: int qty; }; create part;')
        with pytest.raises(OppRuntimeError):
            interp.run('forall p in part as of (1.5) printf("x");')

    def test_as_of_older_than_horizon_raises(self, db):
        db.create(Counter)
        db.pnew(Counter, n=1)
        tok = db.snapshot_token()
        db._mvcc.dropped_horizon = tok + 1   # simulate retention pruning
        with pytest.raises(SnapshotTooOldError):
            list(db.cluster(Counter).as_of(tok))

    def test_as_of_requires_mvcc(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MVCC", "0")
        db = Database(str(tmp_path / "off.odedb"))
        try:
            assert not db._mvcc_on
            db.create(Counter)
            db.pnew(Counter, n=1)
            with pytest.raises(TransactionError):
                list(db.cluster(Counter).as_of(0))
            # 2PL mode itself still works.
            assert [o.n for o in db.cluster(Counter)] == [1]
        finally:
            db.close()


class TestVersionChainEdges:
    def test_vnext_across_aborted_newversion(self, db):
        """newversion inside an aborted transaction leaves the chain as
        it was: the old tip is still the newest version."""
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        first = obj.vref

        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with db.transaction():
                newversion(obj)
                raise Boom()
        assert vnext(first, db) is None
        assert versions(obj) == [first]
        assert db.deref(first).n == 1

    def test_deref_version_with_missing_state_is_dangling(self, db):
        """Regression: a Vref whose chain entry exists but whose state
        record was removed underneath (concurrent delete/vacuum window)
        raises DanglingReferenceError — previously a TypeError from
        subscripting None."""
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        old = obj.vref
        newversion(obj)
        obj.n = 2
        # Remove the pinned version's state record but leave the chain
        # entry — the mid-vacuum window the bug lived in.
        txn = db.store.begin()
        db.store.delete(txn, old.cluster, (old.serial, old.version))
        db.store.commit(txn)
        db._vcache.pop(old, None)
        with pytest.raises(DanglingReferenceError):
            db.deref(old)
        assert db.deref(old, _missing_ok=True) is None

    def test_deref_deleted_version_after_vacuum_is_dangling(self, db):
        """pdelete of one version + vacuum: the stale Vref must miss the
        (invalidated) version cache and raise, not serve the old pin."""
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        old = obj.vref
        newversion(obj)
        with db.transaction():       # commit: pdelete drops deferred writes
            obj.n = 2
        assert db.deref(old).n == 1   # pin it into the version cache
        db.pdelete(old)
        db.vacuum(Counter)
        with pytest.raises(DanglingReferenceError):
            db.deref(old)
        assert db.deref(obj.oid).n == 2

    def test_object_created_after_snapshot_is_invisible(self, db):
        """An object committed after a reader's snapshot neither appears
        in the reader's scans nor derefs — its history image at that
        snapshot is "does not exist"."""
        db.create(Counter)
        db.pnew(Counter, n=1)
        in_txn = threading.Event()
        created = threading.Event()
        box = {}

        def creator():
            assert in_txn.wait(timeout=30)
            box["oid"] = db.run_transaction(
                lambda: db.pnew(Counter, n=2).oid)
            created.set()

        def reader():
            with db.transaction():
                assert [o.n for o in db.cluster(Counter)] == [1]
                in_txn.set()
                assert created.wait(timeout=30)
                assert [o.n for o in db.cluster(Counter)] == [1]
                assert db.cluster(Counter).count() == 1
                with pytest.raises(DanglingReferenceError):
                    db.deref(box["oid"])

        run_threads([creator, reader])
        assert sorted(o.n for o in db.cluster(Counter)) == [1, 2]

    def test_version_macros_take_object_or_ref(self, db):
        """Uniform macro signature: a live object needs no db, a raw ref
        needs one, a volatile object is rejected."""
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        old = obj.vref
        newversion(obj)
        assert vnext(old, db) == obj.vref
        assert vprev(obj) == old
        with pytest.raises(NotPersistentError):
            vnext(old)           # raw Vref without a database
        with pytest.raises(NotPersistentError):
            vprev(Counter(n=0))  # volatile object
        with pytest.raises(NotPersistentError):
            vnext("not a ref")


class TestVersionCache:
    def test_bounded_with_eviction_and_hit_counts(self):
        cache = VersionCache(capacity=4)
        objs = [object() for _ in range(6)]
        for i, o in enumerate(objs):
            cache.put(Vref("C", i, 1), o)
        assert len(cache) <= 4
        assert cache.evictions > 0
        assert cache.get(Vref("C", 5, 1)) is objs[5]
        assert cache.hits == 1
        assert cache.get(Vref("C", 0, 1)) is None   # trimmed
        assert cache.hits == 1

    def test_db_vcache_hits_and_vacuum_invalidation(self, db):
        db.create(Counter)
        obj = db.pnew(Counter, n=1)
        old = obj.vref
        newversion(obj)
        obj.n = 2
        hits0 = db.metrics.get("vcache.hits")
        assert db.deref(old).n == 1        # miss: materialize + pin
        assert db.deref(old).n == 1        # hit
        assert db.metrics.get("vcache.hits") > hits0
        ev0 = db.metrics.get("vcache.evictions")
        db.vacuum()
        assert len(db._vcache) == 0
        assert db.metrics.get("vcache.evictions") > ev0
        assert db.deref(old).n == 1        # re-pins from rewritten pages


class TestStatsSurface:
    def test_mvcc_stats_exposed(self, db):
        db.create(Counter)
        db.pnew(Counter, n=1)
        stats = db.stats()
        for key in ("histories", "active_snapshots", "resolutions",
                    "conflicts", "last_commit_lsn", "dropped_horizon"):
            assert key in stats["mvcc"]
        assert stats["mvcc"]["last_commit_lsn"] == db.snapshot_token()
        assert {"hits", "evictions"} <= set(stats["vcache"])
