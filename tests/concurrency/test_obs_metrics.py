"""Observability under concurrency: exact counters, deadlock events.

ISSUE 4's instrumentation contract is that metrics stay *exact* under
the PR 2 concurrent-transaction paths without adding locks: owned
counters bump GIL-atomically, and sampled counters read component ints
that are already bumped under that component's own lock.
"""

import threading

import pytest

from repro.core import Database, IntField, OdeObject
from repro.errors import DeadlockError

pytestmark = pytest.mark.concurrency


class Slot(OdeObject):
    n = IntField(default=0)


def run_threads(workers):
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not [t for t in threads if t.is_alive()], "threads hung"
    return errors


class TestExactCounters:
    def test_commit_counter_exact_across_threads(self, db):
        """N threads x M run_transaction each => exactly N*M+setup commits."""
        db.create(Slot)
        oids = []
        with db.transaction():
            for i in range(6):
                oids.append(db.pnew(Slot, n=0).oid)
        base = db.metrics.get("txn.commits")
        n_threads, n_rounds = 6, 20

        def worker(idx):
            def body():
                obj = db.deref(oids[idx])
                obj.n += 1
            return lambda: [db.run_transaction(body)
                            for _ in range(n_rounds)]

        errors = run_threads([worker(i) for i in range(n_threads)])
        assert not errors
        assert (db.metrics.get("txn.commits") - base
                == n_threads * n_rounds)
        for oid in oids:
            assert db.deref(oid).n == n_rounds

    def test_abort_counter_labels_by_reason(self, db):
        db.create(Slot)
        oid = db.pnew(Slot, n=0).oid

        class Boom(Exception):
            pass

        with pytest.raises(Boom):
            with db.transaction():
                db.deref(oid).n = 1
                raise Boom()
        snap = db.metrics.snapshot()
        assert snap.get('txn.aborts{reason="error"}') == 1


class TestDeadlockEvents:
    def test_deadlock_event_records_victim_and_holder(self, db):
        """A real two-transaction deadlock emits an event naming both the
        victim txn and the holder(s) it collided with."""
        db.create(Slot)
        a = db.pnew(Slot, n=0).oid
        b = db.pnew(Slot, n=0).oid
        barrier = threading.Barrier(2, timeout=30)
        txn_ids = {}

        def worker(name, mine, theirs):
            def run():
                try:
                    with db.transaction() as handle:
                        txn_ids[name] = handle.txn_id
                        # Read both objects before either writer starts:
                        # under MVCC a deref *after* the peer's write
                        # would resolve to a snapshot copy and conflict
                        # out instead of deadlocking. Write-write cycles
                        # still deadlock, which is what this test wants.
                        objm = db.deref(mine)
                        objt = db.deref(theirs)
                        barrier.wait()            # both have read both
                        objm.n += 1               # X lock on mine
                        barrier.wait()            # both hold one X lock
                        objt.n += 1               # closes the cycle
                except Exception:
                    pass  # victim (DeadlockError) or timeout: both fine
            return run

        errors = run_threads([worker("t1", a, b), worker("t2", b, a)])
        assert not errors
        assert db.store.locks.deadlocks >= 1
        events = db.events.snapshot(kind="deadlock")
        assert events, "deadlock fired but no event recorded"
        data = events[-1]["data"]
        assert data["victim"] in txn_ids.values()
        holders = set(data["holders"])
        assert holders & (set(txn_ids.values()) - {data["victim"]}), \
            "event must name the holder the victim collided with"
        assert data["waits_for"], "waits-for snapshot missing"
        # sampled counter agrees with the component int
        assert db.metrics.get("lock.deadlocks") == db.store.locks.deadlocks

    def test_lock_wait_event_past_deadline(self, db):
        db.create(Slot)
        oid = db.pnew(Slot, n=0).oid
        db.events.long_lock_wait_ms = 0.0  # every wait is "long" now
        started = threading.Event()
        release = threading.Event()

        def holder():
            with db.transaction():
                db.deref(oid).n += 1     # X lock held until release fires
                started.set()
                release.wait(timeout=30)

        def waiter():
            started.wait(timeout=30)

            def body():
                # A blind write: under MVCC a read-modify-write would
                # resolve the holder's pre-image and conflict instead of
                # waiting; pdelete contends on the X lock in both modes.
                db.pdelete(oid)
            # Free the holder shortly after we park on its X lock.
            timer = threading.Timer(0.3, release.set)
            timer.start()
            try:
                db.run_transaction(body)
            finally:
                timer.cancel()
                release.set()

        errors = run_threads([holder, waiter])
        assert not errors
        waits = db.events.snapshot(kind="lock_wait")
        assert waits, "no lock_wait event despite a blocked acquire"
        assert waits[-1]["data"]["wait_ms"] > 0
