"""Shared fixtures: temporary storage stacks and databases."""

import os

import pytest

from repro.core.database import Database
from repro.storage.buffer import BufferPool
from repro.storage.journal import Journal
from repro.storage.pagefile import PageFile
from repro.storage.store import Store
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def db_path(tmp_path):
    """Path for a fresh database file."""
    return str(tmp_path / "test.odb")


@pytest.fixture
def stack(tmp_path):
    """A (pool, wal, journal) stack over fresh files."""
    pagefile = PageFile(str(tmp_path / "pages"))
    pool = BufferPool(pagefile, capacity=64)
    wal = WriteAheadLog(str(tmp_path / "wal"))
    journal = Journal(pool, wal)
    yield pool, wal, journal
    wal.close()
    pagefile.close()


@pytest.fixture
def store(db_path):
    """An open Store, closed afterwards."""
    s = Store(db_path)
    yield s
    if not s._closed:
        s.close()


@pytest.fixture
def db(db_path):
    """An open Database, closed afterwards."""
    d = Database(db_path)
    yield d
    if not d._closed:
        try:
            d.close()
        except Exception:
            pass
