"""Crash-consistency harness: kill a workload at failpoints, recover, audit."""
