"""WAL tail semantics under damage.

Three scenarios the recovery path must distinguish and survive:

* the log ends mid-record (a crash during append — the normal torn
  tail): recovery at **every** byte boundary of the last record;
* a record in the *middle* of the log is damaged while valid records
  follow — not crash atomicity but real log corruption, classified as
  ``mid_log_corruption`` and surfaced via ``wal.scan.stopped_early``;
* a heap page torn mid-flush (new prefix, old suffix, stale LSN) is
  rebuilt from the log by unconditional redo.
"""

import os
import shutil

import pytest

from repro.storage import wal as wal_mod
from repro.storage.page import PAGE_SIZE
from repro.storage.store import Store

pytestmark = pytest.mark.crash

_HDR = wal_mod._FILE_HDR.size


def _crashed_store(tmp_path, n_commits=3):
    """A store killed with *n_commits* committed puts only in the WAL.

    Returns ``(db_path, records, end_lsn)`` where *records* is the
    ``(lsn, record)`` list — the byte-exact boundaries let the tests
    compute file offsets (``offset = lsn + header``; the log was never
    truncated, so ``base_lsn`` is 0).
    """
    path = str(tmp_path / "t.odb")
    store = Store(path)
    txn = store.begin()
    store.create_cluster(txn, "c")
    store.commit(txn)
    for i in range(n_commits):
        txn = store.begin()
        store.put(txn, "c", (i, 0), {"n": i})
        store.commit(txn)
    records = list(store._wal.records())
    end = store._wal.end_lsn
    assert store._wal.base_lsn == 0
    store.crash()
    return path, records, end


def _snapshot(path, into):
    for suffix in ("", ".wal"):
        shutil.copy(path + suffix, into + suffix)


def _restore(path, frm):
    for suffix in ("", ".wal"):
        shutil.copy(frm + suffix, path + suffix)


def test_truncation_at_every_byte_of_tail_records(tmp_path):
    path, records, end = _crashed_store(tmp_path)
    pristine = str(tmp_path / "pristine")
    _snapshot(path, pristine)
    lsns = [lsn for lsn, _ in records]
    boundaries = set(lsns)
    # Cut at every byte from the last COMMIT record's start to the log's
    # physical end — spanning that commit and any trailing records.
    last_commit_idx = max(i for i, (_, r) in enumerate(records)
                          if r["type"] == "commit")
    commit_end = (lsns[last_commit_idx + 1]
                  if last_commit_idx + 1 < len(lsns) else end)
    start = lsns[last_commit_idx]
    assert end - start < 1024, "unexpectedly large tail"
    for cut in range(start, end):
        _restore(path, pristine)
        with open(path + ".wal", "r+b") as f:
            f.truncate(_HDR + cut)
        store = Store(path)
        report = store.last_recovery
        assert report is not None
        if cut in boundaries:
            # clean boundary: the scan ends exactly at the file's end
            assert report.wal_stop_kind is None, "cut at %d" % cut
        else:
            assert report.wal_stop_kind == "torn_tail", "cut at %d" % cut
        # The last commit survives iff its COMMIT record is whole.
        assert store.get("c", (0, 0)) == {"n": 0}
        assert store.get("c", (1, 0)) == {"n": 1}
        expected = {"n": 2} if cut >= commit_end else None
        assert store.get("c", (2, 0)) == expected, "cut at %d" % cut
        assert store.verify_integrity() == []
        assert store.degraded is None
        store.close()


def test_mid_log_corruption_is_classified(tmp_path):
    path, records, _end = _crashed_store(tmp_path)
    victim = records[len(records) // 2][0]
    with open(path + ".wal", "r+b") as f:
        f.seek(_HDR + victim + wal_mod._REC_HDR.size + 1)
        byte = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([byte[0] ^ 0xFF]))
    store = Store(path)
    report = store.last_recovery
    assert report.wal_stop == victim
    assert report.wal_stop_kind == "mid_log_corruption"
    events = store.events.snapshot(kind="wal.scan.stopped_early")
    assert events and \
        events[0]["data"]["classification"] == "mid_log_corruption"
    # Recovery still lands on the longest intact committed prefix.
    assert store.verify_integrity() == []
    assert store.degraded is None
    store.close()


@pytest.mark.parametrize("torn_bytes",
                         [64, 1024, PAGE_SIZE // 2, PAGE_SIZE - 8])
def test_torn_heap_page_rebuilt_by_unconditional_redo(tmp_path, torn_bytes):
    path = str(tmp_path / "t.odb")
    store = Store(path)
    txn = store.begin()
    store.create_cluster(txn, "c")
    for i in range(20):
        store.put(txn, "c", (i, 0), {"n": i})
    store.commit(txn)
    store.checkpoint()  # on-disk image now checksummed + durable
    heap_page = store.catalog.get_cluster("c").heap_page
    txn = store.begin()
    for i in range(20):
        store.put(txn, "c", (i, 1), {"n": i * 10})
    store.commit(txn)
    # The post-checkpoint image exists only in the pool; capture it to
    # forge the torn flush below.
    page = store._pool.pin(heap_page)
    new_image = bytes(page.buf)
    store._pool.unpin(heap_page, dirty=False)
    store.crash()

    # Torn write: the first torn_bytes of the new image land (including
    # the header with its new LSN), the rest keeps the checkpoint image.
    with open(path, "r+b") as f:
        f.seek(heap_page * PAGE_SIZE)
        f.write(new_image[:torn_bytes])

    store = Store(path)
    report = store.last_recovery
    assert heap_page in report.repaired_pages
    for i in range(20):
        assert store.get("c", (i, 0)) == {"n": i}
        assert store.get("c", (i, 1)) == {"n": i * 10}
    assert store.verify_integrity() == []
    assert store.degraded is None
    store.close()
