"""The crash-consistency harness (EXP-16).

One *cycle* = run the deterministic workload (:mod:`tests.crash.workload`)
in a subprocess with one or more failpoints armed through ``REPRO_FAULTS``,
let the injected fault kill it (or fail its current operation), then reopen
the database **in this process** — which runs crash recovery — and audit:

1. the database opens at all (recovery never leaves an unopenable store);
2. it is not in degraded mode after recovery;
3. the storage + object integrity checker (``db.verify()``) is clean;
4. the surviving contents equal the workload model after exactly ``k``
   operations for some ``k ≥`` the number of *acknowledged* commits in the
   oracle file (every acked-durable commit survived; nothing partial,
   nothing reordered — the sequential workload makes the committed set a
   prefix);
5. the recovered database still accepts writes (create + delete probe).

For faults that model *lying hardware* (``wal.flush.lie``) losing
acknowledged commits is exactly the simulated failure, so the audit drops
invariant 4's lower bound to zero (``strict=False``) but still requires
the state to be *some* consistent prefix.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.storage.faults import DIE_EXIT_CODE, KNOWN_FAILPOINTS

from .workload import CrashItem, ERROR_EXIT_CODE, generate

WORKLOAD = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "workload.py")

#: Exit codes a faulted child may legitimately end with.
OK_EXIT_CODES = (0, ERROR_EXIT_CODE, DIE_EXIT_CODE)


class CycleResult:
    """Everything one crash/recover cycle produced."""

    def __init__(self, spec, returncode, acked, problems, stderr):
        self.spec = spec
        self.returncode = returncode
        self.acked = acked
        self.problems = problems
        self.stderr = stderr

    def __repr__(self):
        return ("CycleResult(spec=%r, rc=%d, acked=%d, problems=%r)"
                % (self.spec, self.returncode, self.acked, self.problems))


def read_oracle(oracle_path: str) -> int:
    """Number of acknowledged commits (with a contiguity sanity check)."""
    if not os.path.exists(oracle_path):
        return 0
    with open(oracle_path, "rb") as handle:
        lines = handle.read().split()
    for i, line in enumerate(lines):
        assert int(line) == i, "oracle file is not contiguous: %r" % lines
    return len(lines)


def run_cycle(tmpdir: str, spec: str, seed: int = 1337, n_ops: int = 40,
              durability: str = "full", strict: bool = True,
              extra_env=None, timeout: float = 120.0) -> CycleResult:
    """Run one crash/recover/audit cycle; see the module docstring."""
    db_path = os.path.join(tmpdir, "crash.odb")
    oracle_path = os.path.join(tmpdir, "oracle.log")
    env = dict(os.environ)
    env.pop("REPRO_SKIP_CHECKSUM", None)
    env["REPRO_FAULTS"] = spec
    env["REPRO_FAULTS_SEED"] = str(seed)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, WORKLOAD, db_path, oracle_path,
         str(seed), str(n_ops), durability],
        env=env, capture_output=True, timeout=timeout)
    acked = read_oracle(oracle_path)
    problems = []
    if proc.returncode not in OK_EXIT_CODES:
        problems.append("child exited %d: %s"
                        % (proc.returncode, proc.stderr.decode()[-500:]))
    problems.extend(audit(db_path, seed, n_ops, acked, strict=strict))
    return CycleResult(spec, proc.returncode, acked, problems,
                       proc.stderr.decode())


def audit(db_path: str, seed: int, n_ops: int, acked: int,
          strict: bool = True):
    """Recover the database in-process and check every invariant.

    Returns a list of violation strings (empty = the cycle is sound).
    """
    problems = []
    if not os.path.exists(db_path):
        if acked:
            problems.append("no database file, yet %d commits acked" % acked)
        return problems
    from repro import Database
    try:
        db = Database(db_path)
    except Exception as exc:  # an unopenable store is always a violation
        problems.append("recovery failed to reopen the store: %s: %s"
                        % (type(exc).__name__, exc))
        return problems
    try:
        if db.degraded is not None:
            problems.append("degraded after recovery: %s" % db.degraded)
        for issue in db.verify():
            problems.append("integrity: %s" % issue)
        state = {}
        if "CrashItem" in db.clusters():
            state = {obj.name: obj.qty for obj in db.cluster(CrashItem)}
        _, models = generate(seed, n_ops)
        lower = acked if strict else 0
        matched = None
        for k in range(lower, n_ops + 1):
            if models[k] == state:
                matched = k
                break
        if matched is None:
            problems.append(
                "state matches no committed prefix >= %d acked ops "
                "(%d objects recovered)" % (lower, len(state)))
        # A recovered store must still take writes (the crash may have
        # predated the cluster's creation; creating it is then the probe).
        if not problems:
            if "CrashItem" not in db.clusters():
                db.create(CrashItem)
            with db.transaction():
                probe = db.pnew(CrashItem, name="__probe__", qty=1)
            db.pdelete(probe.oid)
    except Exception as exc:
        problems.append("audit raised %s: %s" % (type(exc).__name__, exc))
    finally:
        try:
            db.close()
        except Exception as exc:
            problems.append("close after recovery raised %s: %s"
                            % (type(exc).__name__, exc))
    return problems


def kill_specs(hits=(2, 13)):
    """The kill-point matrix: ``(label, REPRO_FAULTS spec, strict)``.

    Derived from :data:`~repro.storage.faults.KNOWN_FAILPOINTS`, with two
    failure modes needing company to be observable:

    * a **lost** page write is undetectable until the next crash (the old
      page image carries a valid checksum), so it is paired with a death
      at the next log truncation — the classic "lost write, then crash
      before the checkpoint completes";
    * a **lying WAL fsync** only loses data when the process dies while
      the lie is still in the write cache, so it is paired with a death
      at the next flush. Losing acked commits is then the *simulated*
      hardware fault, so those cycles audit with ``strict=False``.
    """
    specs = []
    for name, action in KNOWN_FAILPOINTS:
        if name.startswith(("shard.", "recluster.", "server.")):
            # Multi-shard-only points never fire on the default 1-shard
            # workload, and socket-layer points never fire embedded (the
            # cycle would just be a fault-free run); shard_kill_specs()
            # and tests/crash/test_server_crash.py cover them.
            continue
        for at_hit in hits:
            if action == "lost":
                spec = "%s:lost:%d;wal.truncate.pre:die:1" % (name, at_hit)
                strict = True
            elif name == "wal.flush.lie":
                spec = ("wal.flush.lie:lie:%d;wal.flush.pre:die:%d"
                        % (at_hit, at_hit + 1))
                strict = False
            else:
                spec = "%s:%s:%d" % (name, action, at_hit)
                strict = True
            specs.append(("%s@%d" % (name, at_hit), spec, strict))
    return specs


#: Environment for the shard matrix: a 4-shard store, the background
#: recluster daemon off (its timing is non-deterministic; reclustering is
#: exercised via the workload's deterministic maintenance calls instead),
#: and the workload's maintenance ops on.
SHARD_ENV = {
    "REPRO_SHARDS": "4",
    "REPRO_RECLUSTER": "0",
    "REPRO_WORKLOAD_MAINT": "1",
}


def shard_kill_specs():
    """Kill-point matrix for the sharded store: ``(label, spec, strict,
    extra_env)``.

    Covers the shard-only failpoints (store creation and reclustering)
    plus a sample of the core WAL/pagefile points re-run under a 4-shard
    store with deterministic recluster maintenance — the recovery,
    checkpoint and torn-write machinery all route through the gpid
    router there, which the 1-shard matrix cannot see.

    The ``shard.open.*`` points fire once per extra shard file (3 times
    for 4 shards) and only during creation; ``shard.root.pre`` exactly
    once; the recluster points once per maintenance call.
    """
    specs = []
    for name in ("shard.root.pre", "shard.open.pre", "shard.open.post"):
        hits = (1,) if name == "shard.root.pre" else (1, 2, 3)
        for at_hit in hits:
            specs.append(("%s@%d" % (name, at_hit),
                          "%s:die:%d" % (name, at_hit), True, SHARD_ENV))
    for name in ("recluster.pre", "recluster.commit.pre"):
        for at_hit in (1, 2, 4):
            specs.append(("%s@%d" % (name, at_hit),
                          "%s:die:%d" % (name, at_hit), True, SHARD_ENV))
    for name, action in (("wal.flush.pre", "die"),
                         ("pagefile.write.pre", "die"),
                         ("pagefile.write.torn", "torn"),
                         ("wal.truncate.pre", "die"),
                         ("pagefile.sync.pre", "die")):
        for at_hit in (2, 13):
            specs.append(("4shard-%s@%d" % (name, at_hit),
                          "%s:%s:%d" % (name, action, at_hit), True,
                          SHARD_ENV))
    return specs
