"""Crash-consistency matrix (EXP-16).

The smoke matrix — every known failpoint at two hit counts, one cycle
each — runs in CI (``pytest -m crash``). The full randomized matrix
(hundreds of cycles) is opt-in via ``REPRO_CRASH_FULL=1`` /
``make crash-full``; a run prints nothing when every invariant holds.
"""

import os

import pytest

from .harness import kill_specs, run_cycle, shard_kill_specs

pytestmark = pytest.mark.crash

SMOKE = kill_specs(hits=(2, 13))
SHARD = shard_kill_specs()

#: The full matrix crosses more seeds and hit depths; 2 seeds x 17
#: failpoints x 6 depths = 204 crash/recover cycles (>= the 200 the
#: acceptance criteria ask for).
FULL_SEEDS = (1337, 2024)
FULL_HITS = (1, 3, 9, 17, 29, 41)

_FULL = bool(os.environ.get("REPRO_CRASH_FULL"))


@pytest.mark.parametrize(
    "label,spec,strict", SMOKE, ids=[label for label, _, _ in SMOKE])
def test_crash_smoke(tmp_path, label, spec, strict):
    result = run_cycle(str(tmp_path), spec, strict=strict)
    assert result.problems == [], (
        "crash cycle %s violated recovery invariants: %s\n--- child "
        "stderr ---\n%s" % (label, result.problems, result.stderr[-1500:]))


@pytest.mark.parametrize(
    "label,spec,strict,extra_env", SHARD,
    ids=[label for label, _, _, _ in SHARD])
def test_crash_shard_matrix(tmp_path, label, spec, strict, extra_env):
    """Crash matrix over a 4-shard store (EXP-18): shard-creation and
    recluster failpoints plus core WAL/pagefile points rerun with the
    gpid router and deterministic recluster maintenance in play."""
    result = run_cycle(str(tmp_path), spec, strict=strict,
                       extra_env=extra_env)
    assert result.problems == [], (
        "shard crash cycle %s violated recovery invariants: %s\n--- child "
        "stderr ---\n%s" % (label, result.problems, result.stderr[-1500:]))


@pytest.mark.skipif(not _FULL, reason="set REPRO_CRASH_FULL=1 (slow)")
@pytest.mark.parametrize("seed", FULL_SEEDS)
@pytest.mark.parametrize(
    "label,spec,strict",
    kill_specs(hits=FULL_HITS),
    ids=[label for label, _, _ in kill_specs(hits=FULL_HITS)])
def test_crash_full_matrix(tmp_path, seed, label, spec, strict):
    result = run_cycle(str(tmp_path), spec, seed=seed, strict=strict)
    assert result.problems == [], (
        "crash cycle %s seed=%d violated recovery invariants: %s\n--- "
        "child stderr ---\n%s"
        % (label, seed, result.problems, result.stderr[-1500:]))


def test_harness_catches_broken_build(tmp_path):
    """Negative control: a build that skips checksum stamping must FAIL
    the audit — otherwise the harness is vacuous.

    The kill point matters: while the WAL survives, recovery quietly
    *rebuilds* the unstamped pages from the log (checksum failure →
    suspect set → unconditional redo), masking the breakage. Dying just
    after a checkpoint truncates the log leaves unstamped pages with
    nothing to rebuild from — the audit's reopen must flag them."""
    result = run_cycle(str(tmp_path), "wal.truncate.post:die:1",
                       extra_env={"REPRO_SKIP_CHECKSUM": "1"})
    assert result.problems, (
        "the harness failed to detect an intentionally broken build "
        "(REPRO_SKIP_CHECKSUM=1) — its checks have no teeth")


def test_clean_cycle_has_no_violations(tmp_path):
    """Positive control: no faults armed, nothing to report."""
    result = run_cycle(str(tmp_path), "")
    assert result.returncode == 0
    assert result.acked == 40
    assert result.problems == []
