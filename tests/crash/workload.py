"""Randomized-but-deterministic workload for the crash harness.

This module plays two roles:

* **Imported by the harness** (parent process) for :func:`generate`, the
  pure function that maps ``(seed, n_ops)`` to the exact operation list
  and the model state after every prefix. The harness replays it to know
  what the database *should* contain after recovering from a crash at an
  arbitrary point.

* **Run as a script** (child process) it executes that same operation
  list against a real :class:`~repro.core.database.Database`, one
  transaction per operation, appending each acknowledged commit to an
  fsynced *oracle* file **after** the commit returns. Faults are armed
  through ``REPRO_FAULTS`` (see :mod:`repro.storage.faults`), so the
  child can be killed at any registered failpoint; the oracle then lower-
  bounds the set of operations recovery must preserve.

Exit codes: 0 = workload completed and closed cleanly; 47 = injected
process death (``faults.DIE_EXIT_CODE``); 3 = an operation raised (an
injected EIO, a failed WAL, degraded mode, ...) — the child stops
without closing, which the harness treats like a crash.
"""

from __future__ import annotations

import os
import random
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro import Database, IntField, OdeObject, StringField, newversion

#: Exit code when an operation raised instead of dying at a failpoint.
ERROR_EXIT_CODE = 3

#: With ``REPRO_WORKLOAD_MAINT=1`` the child runs a deterministic
#: recluster-maintenance call after every this-many committed ops — the
#: shard matrix uses it to hit the ``recluster.*`` failpoints at
#: reproducible points. Reclustering never changes logical content, so
#: the model states are unaffected.
MAINT_EVERY = 8


def run_maintenance(db, i: int) -> None:
    """One deterministic recluster call after op *i* (content-neutral)."""
    store = db.store
    shard = (i // MAINT_EVERY) % store.n_shards
    serials = sorted(
        serial for _rid, record in store.scan("CrashItem")
        for serial in [record["__key"][0]]
        if store._shard_of_key((serial, 0)) == shard)[:4]
    store.recluster_shard("CrashItem", serials, shard=shard)


class CrashItem(OdeObject):
    """The one persistent class the workload exercises."""

    name = StringField(default="")
    qty = IntField(default=0)


def generate(seed: int, n_ops: int):
    """The deterministic op list and per-prefix model states.

    Returns ``(ops, models)`` where ``ops[i]`` is ``(kind, name, arg)``
    and ``models[k]`` is the ``{name: qty}`` mapping the database must
    hold after exactly the first ``k`` operations have committed
    (``len(models) == n_ops + 1``; ``models[0]`` is empty). Everything
    is a pure function of ``seed``, so parent and child independently
    agree on the workload without sharing state.
    """
    rng = random.Random(seed)
    model = {}
    ops = []
    models = [dict(model)]
    for i in range(n_ops):
        if not model or rng.random() < 0.5:
            op = ("create", "obj-%d" % i, rng.randrange(1000))
        else:
            name = sorted(model)[rng.randrange(len(model))]
            roll = rng.random()
            if roll < 0.45:
                op = ("update", name, rng.randrange(1000))
            elif roll < 0.70:
                op = ("newversion", name, rng.randrange(1000))
            else:
                op = ("delete", name, None)
        kind, name, arg = op
        if kind == "delete":
            del model[name]
        else:
            model[name] = arg
        ops.append(op)
        models.append(dict(model))
    return ops, models


def run_child(db_path: str, oracle_path: str, seed: int, n_ops: int,
              durability: str) -> int:
    """Execute the workload; returns the exit code (may ``os._exit`` 47)."""
    ops, _ = generate(seed, n_ops)
    maint = os.environ.get("REPRO_WORKLOAD_MAINT") == "1"
    # Unbuffered append + fsync per line: an oracle entry on disk means
    # the commit it names was acknowledged as durable before the entry
    # was written, so oracle ⊆ recovered must hold (full/group modes).
    oracle = open(oracle_path, "ab", buffering=0)
    try:
        db = Database(db_path, durability=durability)
        if "CrashItem" not in db.clusters():
            db.create(CrashItem)
            db.create_index(CrashItem, "qty", kind="hash")
        live = {obj.name: obj for obj in db.cluster(CrashItem)}
        for i, (kind, name, arg) in enumerate(ops):
            with db.transaction():
                if kind == "create":
                    live[name] = db.pnew(CrashItem, name=name, qty=arg)
                elif kind == "update":
                    live[name].qty = arg
                elif kind == "newversion":
                    newversion(live[name])
                    live[name].qty = arg
                else:
                    db.pdelete(live[name].oid)
                    del live[name]
            oracle.write(b"%d\n" % i)
            os.fsync(oracle.fileno())
            if maint and (i + 1) % MAINT_EVERY == 0:
                run_maintenance(db, i)
    except BaseException:
        import traceback
        traceback.print_exc()
        return ERROR_EXIT_CODE
    db.close()
    return 0


def main(argv) -> int:
    db_path, oracle_path, seed, n_ops, durability = argv
    return run_child(db_path, oracle_path, int(seed), int(n_ops), durability)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
