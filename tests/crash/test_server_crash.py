"""Server kill-and-audit cycles (EXP-20): SIGKILL / injected death of a
``repro serve`` process mid-commit must never lose a client-acked
transaction.

One cycle: spawn ``python -m repro serve`` as a subprocess (optionally
with socket- or WAL-layer failpoints armed via ``REPRO_FAULTS``), run a
sequential remote workload — each op one explicit begin/execute/commit,
its index recorded as *acked* only after the commit reply arrives — and
let the fault (or a parent-driven SIGKILL racing the commit stream) kill
the server. Then reopen the database **in this process**, which runs
crash recovery, and audit:

1. the store reopens and is not degraded;
2. ``db.verify()`` is clean;
3. the surviving state is exactly the first ``k`` ops for some
   ``k >= acked`` — every acked commit survived, nothing partial (the
   ``server.send.pre`` death window is precisely the durable-but-unacked
   commit, so ``k > acked`` is legal, losing an acked op is not);
4. the recovered store still accepts writes.

The smoke subset runs in CI (``pytest -m crash``); ``REPRO_CRASH_FULL=1``
runs the >= 20-cycle matrix the acceptance criteria require.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.errors import OdeError
from repro.server.client import Client
from repro.storage.faults import DIE_EXIT_CODE

pytestmark = pytest.mark.crash

SRC_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(repro.__file__))))

SCHEMA = """
class citem { public: char* name; int qty; };
create citem;
"""

#: Exit statuses a killed child may legitimately end with.
OK_EXITS = (0, DIE_EXIT_CODE, -signal.SIGKILL)

N_OPS = 40


class ServerCycle:
    """One spawn/kill/audit cycle against a ``repro serve`` subprocess."""

    def __init__(self, tmpdir: str, spec: str = "",
                 kill_after_s: float = None):
        self.db_path = os.path.join(tmpdir, "srvcrash.odb")
        self.spec = spec
        self.kill_after_s = kill_after_s
        self.acked = 0
        self.returncode = None
        self.stderr = ""
        self.problems = []

    def run(self) -> "ServerCycle":
        env = dict(os.environ)
        env.pop("REPRO_SKIP_CHECKSUM", None)
        env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
        if self.spec:
            env["REPRO_FAULTS"] = self.spec
        else:
            env.pop("REPRO_FAULTS", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", self.db_path,
             "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        killer = None
        try:
            line = proc.stdout.readline().decode().split()
            assert line[:1] == ["LISTENING"], (
                "server never announced: %r / %s"
                % (line, proc.stderr.read().decode()[-500:]))
            host, port = line[1], int(line[2])
            if self.kill_after_s is not None:
                killer = threading.Thread(
                    target=self._kill_later, args=(proc,), daemon=True)
                killer.start()
            self._workload(host, port)
        finally:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
            self.returncode = proc.returncode
            self.stderr = proc.stderr.read().decode()
            proc.stdout.close()
            proc.stderr.close()
            if killer is not None:
                killer.join(timeout=10)
        if self.returncode not in OK_EXITS:
            self.problems.append("server exited %d: %s"
                                 % (self.returncode, self.stderr[-500:]))
        self.problems.extend(self._audit())
        return self

    def _kill_later(self, proc) -> None:
        time.sleep(self.kill_after_s)
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass

    def _workload(self, host: str, port: int) -> None:
        """Sequential committed ops; self.acked counts commit *replies*."""
        try:
            client = Client(host, port, timeout=15.0)
            client.execute(SCHEMA)
            for i in range(N_OPS):
                client.begin()
                client.execute('pnew citem("obj%05d", %d);' % (i, i))
                client.commit()
                self.acked += 1
        except (OdeError, OSError):
            return  # the server died (or evicted us): cycle over

    def _audit(self):
        problems = []
        if not os.path.exists(self.db_path):
            if self.acked:
                problems.append("no database file, yet %d commits acked"
                                % self.acked)
            return problems
        from repro import Database
        try:
            db = Database(self.db_path)
        except Exception as exc:
            return ["recovery failed to reopen the store: %s: %s"
                    % (type(exc).__name__, exc)]
        try:
            if db.degraded is not None:
                problems.append("degraded after recovery: %s" % db.degraded)
            for issue in db.verify():
                problems.append("integrity: %s" % issue)
            from repro.opp.interp import Interpreter
            interp = Interpreter(db, echo=False)
            interp.run('class citem { public: char* name; int qty; };')
            state = {}
            if "citem" in db.clusters():
                interp.run("forall c in citem suchthat (c->qty >= 0) "
                           'printf("%s=%d\\n", c->name, c->qty);')
                for line in interp.output:
                    name, _, qty = line.strip().partition("=")
                    state[name] = int(qty)
            matched = None
            for k in range(self.acked, N_OPS + 1):
                model = {"obj%05d" % i: i for i in range(k)}
                if state == model:
                    matched = k
                    break
            if matched is None:
                problems.append(
                    "state matches no committed prefix >= %d acked ops "
                    "(%d objects recovered)" % (self.acked, len(state)))
            if not problems:
                # The recovered store still takes writes: an O++ probe
                # through the same path the server would use.
                if "citem" not in db.clusters():
                    interp.run("create citem;")
                interp.run('pnew citem("__probe__", 999983);\n'
                           "forall c in citem suchthat "
                           '(c->qty == 999983) pdelete c;')
        except Exception as exc:
            problems.append("audit raised %s: %s"
                            % (type(exc).__name__, exc))
        finally:
            try:
                db.close()
            except Exception as exc:
                problems.append("close after recovery raised %s: %s"
                                % (type(exc).__name__, exc))
        return problems


#: Smoke matrix: the socket-layer kill windows (die before the reply —
#: the durable-but-unacked ack window; torn reply frame) plus WAL-layer
#: deaths under the server, plus two parent SIGKILLs racing the commit
#: stream. ~8 cycles.
SMOKE_SPECS = [
    ("send-pre@5", "server.send.pre:die:5"),
    ("send-pre@17", "server.send.pre:die:17"),
    ("send-torn@9", "server.send.torn:torn:9"),
    ("recv-pre@12", "server.recv.pre:error:12"),
    ("wal-flush@7", "wal.flush.pre:die:7"),
    ("wal-flush@23", "wal.flush.pre:die:23"),
]

SMOKE_KILLS = [0.3, 0.9]

_FULL = bool(os.environ.get("REPRO_CRASH_FULL"))

#: Full matrix: >= 20 cycles across ack-window depths and kill delays.
FULL_SPECS = [
    ("send-pre@%d" % h, "server.send.pre:die:%d" % h)
    for h in (2, 5, 9, 17, 29, 41)
] + [
    ("send-torn@%d" % h, "server.send.torn:torn:%d" % h)
    for h in (3, 9, 21)
] + [
    ("recv-pre@%d" % h, "server.recv.pre:error:%d" % h)
    for h in (4, 16)
] + [
    ("wal-flush@%d" % h, "wal.flush.pre:die:%d" % h)
    for h in (2, 7, 13, 23, 31)
] + [
    ("pagefile-torn@%d" % h, "pagefile.write.torn:torn:%d" % h)
    for h in (2, 9)
]

FULL_KILLS = [0.15, 0.3, 0.5, 0.7, 0.9, 1.2]


@pytest.mark.parametrize("label,spec", SMOKE_SPECS,
                         ids=[label for label, _ in SMOKE_SPECS])
def test_server_crash_smoke(tmp_path, label, spec):
    cycle = ServerCycle(str(tmp_path), spec=spec).run()
    assert cycle.problems == [], (
        "server crash cycle %s (acked=%d) violated recovery invariants: "
        "%s\n--- server stderr ---\n%s"
        % (label, cycle.acked, cycle.problems, cycle.stderr[-1500:]))


@pytest.mark.parametrize("delay", SMOKE_KILLS)
def test_server_sigkill_smoke(tmp_path, delay):
    cycle = ServerCycle(str(tmp_path), kill_after_s=delay).run()
    assert cycle.problems == [], (
        "SIGKILL@%.2fs cycle (acked=%d) violated recovery invariants: "
        "%s\n--- server stderr ---\n%s"
        % (delay, cycle.acked, cycle.problems, cycle.stderr[-1500:]))


@pytest.mark.skipif(not _FULL, reason="set REPRO_CRASH_FULL=1 (slow)")
@pytest.mark.parametrize("label,spec", FULL_SPECS,
                         ids=[label for label, _ in FULL_SPECS])
def test_server_crash_full(tmp_path, label, spec):
    cycle = ServerCycle(str(tmp_path), spec=spec).run()
    assert cycle.problems == [], (
        "server crash cycle %s (acked=%d): %s\n%s"
        % (label, cycle.acked, cycle.problems, cycle.stderr[-1500:]))


@pytest.mark.skipif(not _FULL, reason="set REPRO_CRASH_FULL=1 (slow)")
@pytest.mark.parametrize("delay", FULL_KILLS)
def test_server_sigkill_full(tmp_path, delay):
    cycle = ServerCycle(str(tmp_path), kill_after_s=delay).run()
    assert cycle.problems == [], (
        "SIGKILL@%.2fs cycle (acked=%d): %s\n%s"
        % (delay, cycle.acked, cycle.problems, cycle.stderr[-1500:]))
