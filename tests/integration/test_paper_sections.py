"""Integration tests reproducing each paper section's worked example.

These are the behavioural "experiments" indexed in DESIGN.md (EXP-1..9):
the paper has no measured tables, so fidelity to the stated semantics of
each worked example is the reproduction target.
"""

import pytest

from repro import (A, Database, FloatField, IntField, OdeObject, OdeSet,
                   Oid, RefField, SetField, StringField, Trigger, avg,
                   constraint, forall, group_by, newversion)
from repro.errors import ClusterNotFoundError, ConstraintViolation

order_log = []


class PaperSupplier(OdeObject):
    name = StringField(default="")
    address = StringField(default="")


class PaperStockItem(OdeObject):
    """The paper's running `stockitem` example (sections 2, 5, 6)."""

    name = StringField(default="")
    weight = FloatField(default=0.0)
    qty = IntField(default=0)
    max_inventory = IntField(default=1000000)
    price = FloatField(default=0.0)
    reorder_level = IntField(default=0)
    supplier = RefField("PaperSupplier")
    consumers = SetField()

    def consume(self, n):
        self.qty -= n

    def restock(self, n):
        self.qty += n

    @constraint
    def qty_nonneg(self):
        return self.qty >= 0

    @constraint
    def within_capacity(self):
        return self.qty <= self.max_inventory

    reorder = Trigger(
        condition=lambda self, quantity: self.qty <= self.reorder_level,
        action=lambda self, quantity: order_log.append(
            (self.name, quantity)))


@pytest.fixture(autouse=True)
def clear_order_log():
    order_log.clear()


class TestExp1StockItem:
    """EXP-1: sections 2.1-2.4 — class definition and persistence."""

    def test_paper_creation_sequence(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        att = db.pnew(PaperSupplier, name="at&t",
                      address="berkeley hts, nj")
        sip = db.pnew(PaperStockItem, name="512 dram", weight=0.05,
                      qty=7500, max_inventory=15000, price=5.00,
                      reorder_level=15, supplier=att)
        assert sip.is_persistent
        assert sip.follow("supplier").name == "at&t"

    def test_cluster_must_exist_first(self, db):
        with pytest.raises(ClusterNotFoundError):
            db.pnew(PaperStockItem, name="x")

    def test_volatile_and_persistent_same_code(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        vol = PaperStockItem(name="v", qty=100)
        per = db.pnew(PaperStockItem, name="p", qty=100)
        for item in (vol, per):
            item.consume(30)
        assert vol.qty == per.qty == 70


class TestExp4Iteration:
    """EXP-4: section 3.1 — forall / suchthat / by."""

    @pytest.fixture
    def stocked(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        for name, price in [("512 dram", 5.0), ("z80", 2.5),
                            ("eprom", 2.9), ("68000", 12.0)]:
            db.pnew(PaperStockItem, name=name, price=price, qty=10)
        return db

    def test_cheap_items_by_name(self, stocked):
        """`forall t in stockitem suchthat (t->price < 3.00) by (t->name)`"""
        q = forall(stocked.cluster(PaperStockItem)).suchthat(
            A.price < 3.00).by(A.name)
        assert [t.name for t in q] == ["eprom", "z80"]


class TestExp5Hierarchy:
    """EXP-5: section 3.1.1 — deep extents and type tests."""

    def test_income_program(self, db):
        class P(OdeObject):
            name = StringField(default="")

            def income(self):
                return 100.0

        class S(P):
            def income(self):
                return 40.0

        class F(P):
            def income(self):
                return 200.0

        db.create(P)
        db.create(S)
        db.create(F)
        for i in range(4):
            db.pnew(P, name="p%d" % i)
        for i in range(2):
            db.pnew(S, name="s%d" % i)
        for i in range(2):
            db.pnew(F, name="f%d" % i)

        # The paper's accumulator program, directly:
        incomep = incomes = incomef = 0.0
        np = ns = nf = 0
        for p in db.cluster(P).deep():
            incomep += p.income()
            np += 1
            if isinstance(p, S):
                incomes += p.income()
                ns += 1
            elif isinstance(p, F):
                incomef += p.income()
                nf += 1
        assert np == 8 and ns == 2 and nf == 2
        assert incomep / np == (4 * 100 + 2 * 40 + 2 * 200) / 8
        assert incomes / ns == 40.0
        assert incomef / nf == 200.0


class TestExp6Fixpoint:
    """EXP-6: section 3.2 — recursive queries via growing iteration."""

    def test_parts_explosion(self, db):
        class Bom(OdeObject):
            name = StringField(default="")
            uses = SetField("Bom")

        db.create(Bom)
        wheel = db.pnew(Bom, name="wheel")
        spoke = db.pnew(Bom, name="spoke")
        rim = db.pnew(Bom, name="rim")
        bike = db.pnew(Bom, name="bike")
        wheel.uses = OdeSet([spoke.oid, rim.oid])
        bike.uses = OdeSet([wheel.oid])
        with db.transaction():
            pass

        # the paper's idiom: iterate a set while inserting into it
        needed = OdeSet([bike.oid])
        for ref in needed:
            for sub in db.deref(ref).uses:
                needed.insert(sub)
        names = {db.deref(r).name for r in needed}
        assert names == {"bike", "wheel", "spoke", "rim"}


class TestExp7Versions:
    """EXP-7: section 4 — linear versioning."""

    def test_design_history(self, db):
        db.create(PaperStockItem)
        db.create(PaperSupplier)
        item = db.pnew(PaperStockItem, name="board", price=10.0)
        rev_a = item.vref
        newversion(item)
        item.price = 12.0
        rev_b = item.vref
        newversion(item)
        item.price = 15.0
        with db.transaction():
            pass

        assert db.deref(rev_a).price == 10.0
        assert db.deref(rev_b).price == 12.0
        assert db.deref(item.oid).price == 15.0  # generic ref: current
        assert db.vnext(rev_a) == rev_b
        assert db.vprev(rev_b) == rev_a


class TestExp8Constraints:
    """EXP-8: section 5 — constraints abort the violating transaction."""

    def test_violation_rolls_back_everything(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        item = db.pnew(PaperStockItem, name="x", qty=100,
                       max_inventory=1000)
        other = db.pnew(PaperStockItem, name="y", qty=5, max_inventory=1000)
        with pytest.raises(ConstraintViolation):
            with db.transaction():
                other.restock(10)     # would be fine
                item.consume(500)     # qty < 0: abort everything
        assert item.qty == 100
        assert other.qty == 5

    def test_both_constraints_enforced(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        item = db.pnew(PaperStockItem, qty=10, max_inventory=20)
        with pytest.raises(ConstraintViolation):
            item.restock(100)  # above max_inventory
        assert item.qty == 10


class TestExp9Triggers:
    """EXP-9: section 6 — the reorder trigger, exactly as in the paper."""

    def test_reorder_cycle(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        sip = db.pnew(PaperStockItem, name="512 dram", qty=7500,
                      max_inventory=15000, reorder_level=1000)
        tid = sip.reorder(5000)
        with db.transaction():
            sip.consume(3000)  # 4500 left: no fire
        assert order_log == []
        with db.transaction():
            sip.consume(4000)  # 500 left <= 1000: fires
        assert order_log == [("512 dram", 5000)]
        assert not tid.is_active  # once-only

    def test_weak_coupling_abort(self, db):
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        sip = db.pnew(PaperStockItem, name="z80", qty=100,
                      max_inventory=1000, reorder_level=90)
        sip.reorder(10)
        with pytest.raises(RuntimeError):
            with db.transaction():
                sip.consume(50)
                raise RuntimeError("cancel")
        assert order_log == []  # fired actions aborted with the txn


class TestCrossSectionScenario:
    """Everything together: active versioned inventory over reopen."""

    def test_full_lifecycle(self, db_path):
        db = Database(db_path)
        db.create(PaperSupplier)
        db.create(PaperStockItem)
        att = db.pnew(PaperSupplier, name="at&t")
        sip = db.pnew(PaperStockItem, name="512 dram", qty=7500,
                      max_inventory=15000, price=5.0, reorder_level=1000,
                      supplier=att)
        sip.reorder(5000)
        v1 = sip.vref
        newversion(sip)
        sip.price = 6.0
        oid = sip.oid
        db.close()

        db2 = Database(db_path)
        item = db2.deref(oid)
        assert item.price == 6.0
        assert db2.deref(v1).price == 5.0
        with db2.transaction():
            item.consume(6800)
        assert order_log == [("512 dram", 5000)]
        assert item.qty == 700
        totals = group_by(forall(db2.cluster(PaperStockItem)),
                          key=A.name, value=A.qty, reduce=sum)
        assert totals == {"512 dram": 700}
        db2.close()
