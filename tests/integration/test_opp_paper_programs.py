"""The paper's O++ programs, run nearly verbatim through the interpreter."""

import pytest

from repro.core import Database
from repro.opp import Interpreter


@pytest.fixture
def interp(db):
    return Interpreter(db)


PAPER_SCHEMA = r"""
class supplier {
  public:
    char* name;
    char* address;
    supplier(char* n, char* a) { name = n; address = a; }
};

class stockitem {
  public:
    char* name;
    double weight;
    int qty;
    int max_inventory;
    double price;
    int reorder_level;
    persistent supplier *sup;
    stockitem(char* n, double w, int q, int maxi, double p, int r) {
        name = n; weight = w; qty = q; max_inventory = maxi;
        price = p; reorder_level = r;
    }
    int consume(int n) { qty = qty - n; return qty; }
    int restock(int n) { qty = qty + n; return qty; }
  constraint:
    qty >= 0;
    qty <= max_inventory;
  trigger:
    reorder(int n) : qty <= reorder_level ==> printf("ORDER %s x%d\n", name, n);
};
"""


class TestSection2:
    def test_persistent_object_creation(self, interp):
        out = interp.run(PAPER_SCHEMA + r"""
        create supplier;
        create stockitem;

        persistent supplier *att;
        att = pnew supplier("at&t", "berkeley hts, nj");

        persistent stockitem *psip;
        psip = pnew stockitem("512 dram", 0.05, 7500, 15000, 5.00, 15);
        psip->sup = att;
        printf("%s from %s at %s\n", psip->name, psip->sup->name,
               psip->sup->address);
        """)
        assert "512 dram from at&t at berkeley hts, nj\n" in "".join(out)

    def test_volatile_vs_persistent(self, interp):
        out = interp.run(PAPER_SCHEMA + r"""
        create supplier; create stockitem;
        stockitem *sip;                     // volatile pointer
        persistent stockitem *psip;         // persistent pointer
        sip = new stockitem("bolt", 0.01, 50, 100, 0.10, 5);
        psip = pnew stockitem("bolt", 0.01, 50, 100, 0.10, 5);
        sip->consume(10);
        psip->consume(10);
        printf("%d %d\n", sip->qty, psip->qty);
        """)
        assert "40 40\n" in "".join(out)


class TestSection3:
    def test_suchthat_by_query(self, interp):
        out = interp.run(PAPER_SCHEMA + r"""
        create supplier; create stockitem;
        pnew stockitem("512 dram", 0.05, 7500, 15000, 5.00, 15);
        pnew stockitem("z80", 0.10, 50, 500, 2.50, 10);
        pnew stockitem("eprom", 0.07, 300, 2000, 2.90, 20);
        pnew stockitem("68000", 0.20, 90, 400, 12.00, 5);

        forall t in stockitem suchthat (t->price < 3.00) by (t->name)
            printf("%s costs %g\n", t->name, t->price);
        """)
        text = "".join(out)
        assert text.index("eprom") < text.index("z80")
        assert "68000" not in text

    def test_income_program(self, interp):
        """Section 3.1.1's hierarchy program, almost verbatim."""
        out = interp.run(r"""
        class person {
          public:
            char* name;
            double income() { return 100.0; }
        };
        class student : public person {
          public:
            double income() { return 40.0; }
        };
        class faculty : public person {
          public:
            double income() { return 200.0; }
        };
        create person; create student; create faculty;
        pnew person("p1"); pnew person("p2");
        pnew student("s1");
        pnew faculty("f1");

        double incomep = 0.0; double incomes = 0.0; double incomef = 0.0;
        int np = 0; int ns = 0; int nf = 0;
        forall p in person* {
            incomep += p->income(); np++;
            if (p is persistent student*) { incomes += p->income(); ns++; }
            else if (p is persistent faculty*) { incomef += p->income(); nf++; }
        }
        printf("%g %g %g\n", incomep/np, incomes/ns, incomef/nf);
        """)
        assert "110 40 200\n" in "".join(out)

    def test_fixpoint_reachability(self, interp):
        """Section 3.2: iteration over a growing set."""
        out = interp.run(r"""
        class city {
          public:
            char* name;
            set<city> direct;
        };
        create city;
        persistent city *a; persistent city *b;
        persistent city *c; persistent city *d;
        a = pnew city("ny");
        b = pnew city("chi");
        c = pnew city("sf");
        d = pnew city("la");     // not reachable
        a->direct << b;
        b->direct << c;

        set<int> reach;
        reach << a;
        int n = 0;
        for x in reach {
            n++;
            for y in deref(x)->direct reach << y;
        }
        printf("%d\n", n);
        """)
        assert "3\n" in "".join(out)


class TestSections5and6:
    def test_constraint_violation(self, interp, db):
        from repro.errors import ConstraintViolation
        source = PAPER_SCHEMA + r"""
        create supplier; create stockitem;
        persistent stockitem *s;
        s = pnew stockitem("x", 0.1, 10, 100, 1.0, 2);
        s->consume(50);
        """
        with pytest.raises(ConstraintViolation):
            interp.run(source)
        # rolled back: qty still 10
        item = next(iter(db.cluster("stockitem")))
        assert item.qty == 10

    def test_trigger_lifecycle(self, interp):
        out = interp.run(PAPER_SCHEMA + r"""
        create supplier; create stockitem;
        persistent stockitem *s;
        s = pnew stockitem("dram", 0.1, 7500, 15000, 5.0, 1000);
        s->reorder(5000);
        transaction { s->consume(3000); }   // 4500: no fire
        transaction { s->consume(4000); }   // 500: fires once
        transaction { s->consume(100); }    // once-only: no refire
        printf("final %d\n", s->qty);
        """)
        text = "".join(out)
        assert text.count("ORDER dram x5000") == 1
        assert "final 400\n" in text

    def test_versioning_macros(self, interp):
        out = interp.run(r"""
        class doc { public: char* body; };
        create doc;
        persistent doc *d;
        d = pnew doc("draft");
        newversion(d);
        d->body = "final";
        printf("%s then %s\n", deref(vfirst(d))->body, d->body);
        printf("prev of current is v%d\n", vprev(d) == vfirst(d) ? 1 : 0);
        """)
        text = "".join(out)
        assert "draft then final\n" in text
        assert "prev of current is v1\n" in text
