"""Tests for the `python -m repro` command line."""

import io
import sys

import pytest

from repro.__main__ import main


@pytest.fixture
def scripts(tmp_path):
    setup = tmp_path / "setup.opp"
    setup.write_text("""
    class book {
      public:
        char* title;
        int year;
    };
    create book;
    pnew book("tpop", 1999);
    pnew book("kr", 1978);
    """)
    query = tmp_path / "query.opp"
    query.write_text("""
    forall b in book by (b->year)
        printf("%d %s\\n", b->year, b->title);
    """)
    return tmp_path, str(setup), str(query)


def run_cli(args, stdin_text=""):
    out, err = io.StringIO(), io.StringIO()
    old = sys.stdout, sys.stderr, sys.stdin
    sys.stdout, sys.stderr = out, err
    sys.stdin = io.StringIO(stdin_text)
    try:
        code = main(args)
    finally:
        sys.stdout, sys.stderr, sys.stdin = old
    return code, out.getvalue(), err.getvalue()


class TestScriptMode:
    def test_runs_scripts_in_order(self, scripts):
        tmp_path, setup, query = scripts
        db_path = str(tmp_path / "lib.odb")
        code, out, err = run_cli([db_path, setup, query])
        assert code == 0
        assert out.index("1978 kr") < out.index("1999 tpop")

    def test_quiet_suppresses_output(self, scripts):
        tmp_path, setup, query = scripts
        db_path = str(tmp_path / "lib.odb")
        code, out, _ = run_cli([db_path, setup, query, "--quiet"])
        assert code == 0
        assert out == ""

    def test_state_persists_between_invocations(self, scripts):
        tmp_path, setup, query = scripts
        db_path = str(tmp_path / "lib.odb")
        run_cli([db_path, setup])
        code, out, _ = run_cli([db_path, query])
        assert code == 0
        assert "tpop" in out

    def test_error_reported(self, tmp_path):
        bad = tmp_path / "bad.opp"
        bad.write_text("this is not o++ at all @@@;")
        code, out, err = run_cli([str(tmp_path / "x.odb"), str(bad)])
        assert code == 1
        assert "error" in err


class TestAdminModes:
    def test_schema(self, scripts):
        tmp_path, setup, _ = scripts
        db_path = str(tmp_path / "lib.odb")
        run_cli([db_path, setup])
        code, out, _ = run_cli([db_path, "--schema"])
        assert code == 0
        assert "cluster book" in out
        assert "(2 objects)" in out

    def test_verify_clean(self, scripts):
        tmp_path, setup, _ = scripts
        db_path = str(tmp_path / "lib.odb")
        run_cli([db_path, setup])
        code, out, _ = run_cli([db_path, "--verify"])
        assert code == 0
        assert "ok" in out

    def test_vacuum(self, scripts):
        tmp_path, setup, _ = scripts
        db_path = str(tmp_path / "lib.odb")
        run_cli([db_path, setup])
        code, out, _ = run_cli([db_path, "--vacuum"])
        assert code == 0
        assert "book:" in out


class TestRepl:
    def test_evaluates_chunks(self, tmp_path):
        db_path = str(tmp_path / "r.odb")
        code, out, _ = run_cli([db_path],
                               stdin_text='printf("%d\\n", 6 * 7);\n\n')
        assert code == 0
        assert "42" in out

    def test_error_recovery(self, tmp_path):
        db_path = str(tmp_path / "r.odb")
        stdin = ('not valid @;\n\n'
                 'printf("still alive");\n\n')
        code, out, _ = run_cli([db_path], stdin_text=stdin)
        assert code == 0
        assert "error" in out
        assert "still alive" in out

    def test_multiline_class_then_use(self, tmp_path):
        db_path = str(tmp_path / "r.odb")
        stdin = ("class pt {\n"
                 "  public:\n"
                 "    int x;\n"
                 "};\n"
                 "\n"
                 "pt *p;\n"
                 "p = new pt(9);\n"
                 'printf("%d", p->x);\n'
                 "\n")
        code, out, _ = run_cli([db_path], stdin_text=stdin)
        assert code == 0
        assert "9" in out
