"""Every shipped example must run cleanly as a standalone program."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = sorted(f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, (
        "%s failed:\nstdout:\n%s\nstderr:\n%s"
        % (script, result.stdout[-2000:], result.stderr[-2000:]))
    assert result.stdout.strip()  # every example narrates what it does


def test_expected_examples_present():
    assert {"quickstart.py", "university.py", "parts_explosion.py",
            "active_inventory.py", "versioned_designs.py",
            "opp_inventory.py", "crash_recovery.py"} <= set(EXAMPLES)
