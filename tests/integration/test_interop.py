"""Cross-frontend interop: Python classes and O++ classes are one schema."""

import pytest

from repro import A, FloatField, OdeObject, StringField, forall
from repro.core.objects import class_registry
from repro.opp import Interpreter


class BaseAsset(OdeObject):
    """Defined in Python; O++ programs derive from it."""

    label = StringField(default="")
    value = FloatField(default=0.0)

    def appraise(self):
        return self.value


class TestOppExtendsPython:
    def test_opp_subclass_of_python_class(self, db):
        db.create(BaseAsset)
        interp = Interpreter(db)
        interp.run(r'''
        class artwork : public BaseAsset {
          public:
            char* artist;
            double appraise() { return value * 2.0; }
        };
        create artwork;
        pnew artwork("sunflowers", 100.0, "vg");
        ''')
        artwork_cls = class_registry()["artwork"]
        assert issubclass(artwork_cls, BaseAsset)
        # Deep iteration from Python sees the O++ object with dispatch.
        values = [a.appraise() for a in db.cluster(BaseAsset).deep()]
        assert values == [200.0]

    def test_python_queries_compile_over_opp_classes(self, db):
        interp = Interpreter(db)
        interp.run(r'''
        class reading { public: double level; char* station; };
        create reading;
        for (int i = 0; i < 30; i++)
            pnew reading(1.0 * i, "st");
        ''')
        db.create_index("reading", "level", kind="btree")
        cls = class_registry()["reading"]
        q = forall(db.cluster(cls)).suchthat(A.level >= 25.0)
        assert "range-scan" in q.explain()
        assert q.count() == 5

    def test_opp_triggers_on_python_objects(self, db):
        """Activate a Python-declared trigger from O++ (same descriptor)."""
        fired = []

        class Alarmed(OdeObject):
            level = FloatField(default=0.0)
            from repro import Trigger
            overflow = Trigger(
                condition=lambda self: self.level > 10.0,
                action=lambda self: fired.append(self.level))

        db.create(Alarmed)
        obj = db.pnew(Alarmed)
        interp = Interpreter(db)
        interp.globals.declare("target", obj)
        interp.run(r'''
        target->overflow();
        transaction { target->level = 50.0; }
        ''')
        assert fired == [50.0]

    def test_python_mutates_opp_objects_constraints_hold(self, db):
        from repro.errors import ConstraintViolation
        interp = Interpreter(db)
        interp.run(r'''
        class gauge {
          public:
            int psi;
            int pump(int n) { psi = psi + n; return psi; }
          constraint:
            psi <= 100;
        };
        create gauge;
        pnew gauge(50);
        ''')
        gauge = next(iter(db.cluster("gauge")))
        with db.transaction():
            gauge.pump(30)  # fine: 80, committed
        with pytest.raises(ConstraintViolation):
            gauge.pump(100)  # would be 180 > 100
        # the violating call reverts to the last committed state
        assert gauge.psi == 80

    def test_versions_across_frontends(self, db):
        interp = Interpreter(db)
        interp.run(r'''
        class memo { public: char* body; };
        create memo;
        persistent memo *m;
        m = pnew memo("draft");
        newversion(m);
        m->body = "final";
        ''')
        memo = next(iter(db.cluster("memo")))
        assert memo.body == "final"
        first = db.vfirst(memo)
        assert db.deref(first).body == "draft"
        assert len(db.versions(memo)) == 2
