"""Grand lifecycle scenario: a realistic application over many sessions.

One inventory application, driven alternately from Python and O++, through
crashes, vacuums, versioning, triggers and queries — asserting global
consistency at every stage. This is the closest thing to the 'downstream
adopter' experience.
"""

import pytest

from repro import (A, Database, FloatField, IntField, Oid, OdeObject,
                   RefField, SetField, StringField, Trigger, constraint,
                   forall, group_by, newversion)
from repro.errors import ConstraintViolation
from repro.opp import Interpreter

events = []


class Vendor(OdeObject):
    name = StringField(default="")
    rating = IntField(default=3)


class Sku(OdeObject):
    code = StringField(default="")
    price = FloatField(default=0.0)
    on_hand = IntField(default=0)
    reorder_at = IntField(default=0)
    vendor = RefField("Vendor")
    tags = SetField()

    def receive(self, n):
        self.on_hand += n

    def ship(self, n):
        self.on_hand -= n

    @constraint
    def non_negative_stock(self):
        return self.on_hand >= 0

    low_stock = Trigger(
        condition=lambda self, qty: self.on_hand <= self.reorder_at,
        action=lambda self, qty: events.append(("reorder", self.code, qty)))


@pytest.fixture(autouse=True)
def clear_events():
    events.clear()


def open_db(path):
    return Database(str(path))


class TestLifecycle:
    def test_full_application_story(self, tmp_path):
        path = tmp_path / "shop.odb"

        # ---- session 1: bootstrap from Python --------------------------------
        db = open_db(path)
        db.create(Vendor)
        db.create(Sku)
        db.create_index(Sku, "price", kind="btree")
        db.create_index(Sku, ("vendor", "price"), kind="btree")
        acme = db.pnew(Vendor, name="acme", rating=5)
        globex = db.pnew(Vendor, name="globex", rating=2)
        with db.transaction():
            for i in range(120):
                sku = db.pnew(
                    Sku, code="SKU-%04d" % i, price=float(i % 40) + 0.99,
                    on_hand=50 + i % 30, reorder_at=10,
                    vendor=(acme if i % 3 else globex))
                if i % 10 == 0:
                    sku.tags.insert("featured")
        assert db.cluster(Sku).count() == 120
        assert db.verify() == []
        db.close()

        # ---- session 2: O++ operates on the same data -----------------------
        db = open_db(path)
        interp = Interpreter(db)
        interp.run(r'''
        int featured = 0;
        forall s in Sku suchthat (s->price < 5.0) by (s->code)
            featured++;
        printf("cheap=%d\n", featured);
        ''')
        assert "cheap=" in "".join(interp.output)
        # O++ adds new stock through the same constraint/trigger machinery.
        interp.run(r'''
        forall s in Sku suchthat (s->price > 39.0) {
            s->receive(25);
        }
        ''')
        db.close()

        # ---- session 3: trigger + versioning + constraint rollback ----------
        db = open_db(path)
        sku = forall(db.cluster(Sku)).suchthat(A.code == "SKU-0000").first()
        tid = sku.low_stock(500)
        old_rev = sku.vref
        newversion(sku)
        with db.transaction():
            sku.price = sku.price * 1.10  # new version gets a new price
        with db.transaction():
            sku.ship(sku.on_hand - 5)  # drops to 5 <= 10: trigger fires
        assert events == [("reorder", "SKU-0000", 500)]
        assert not tid.is_active
        assert db.deref(old_rev).price < db.deref(sku.oid).price
        # constraint violation rolls everything back
        before = sku.on_hand
        with pytest.raises(ConstraintViolation):
            with db.transaction():
                sku.receive(100)
                sku.ship(100000)
        assert sku.on_hand == before
        db.close()

        # ---- session 4: crash mid-transaction --------------------------------
        db = open_db(path)
        target = forall(db.cluster(Sku)).suchthat(
            A.code == "SKU-0001").first()
        committed_value = target.on_hand
        from repro.core.database import Transaction
        handle = Transaction(db.store.begin(), db)
        db._txn = handle
        target.on_hand = 424242
        db._flush(handle.txn_id)
        db.store.crash()
        db._closed = True

        # ---- session 5: recovery, vacuum, final analytics --------------------
        db = open_db(path)
        assert db.store.last_recovery is not None
        fresh = forall(db.cluster(Sku)).suchthat(
            A.code == "SKU-0001").first()
        assert fresh.on_hand == committed_value  # crash change gone
        assert db.verify() == []

        # churn then vacuum
        doomed = forall(db.cluster(Sku)).suchthat(A.price > 35.0).to_list()
        for sku in doomed:
            db.pdelete(sku)
        db.vacuum()
        assert db.verify() == []
        remaining = db.cluster(Sku).count()
        assert remaining == 120 - len(doomed)

        # composite-index query still correct after all of the above
        q = forall(db.cluster(Sku)).suchthat(
            (A.vendor == acme.oid) & (A.price < 10.0))
        brute = [s for s in db.cluster(Sku)
                 if s.vendor == acme.oid and s.price < 10.0]
        assert {s.code for s in q} == {s.code for s in brute}
        assert "composite" in q.explain() or "eq-lookup" in q.explain()

        # aggregates over the final state
        by_vendor = group_by(forall(db.cluster(Sku)),
                             key=lambda s: db.deref(s.vendor).name,
                             value=A.on_hand, reduce=sum)
        assert set(by_vendor) == {"acme", "globex"}
        assert all(total >= 0 for total in by_vendor.values())

        # the version chain survived every session
        sku0 = forall(db.cluster(Sku)).suchthat(
            A.code == "SKU-0000").first()
        assert len(db.versions(sku0)) == 2
        db.close()
