"""End-to-end crash durability at the Database level (EXP-10)."""

import pytest

from repro import Database, IntField, OdeObject, Oid, StringField, newversion


class Ledger(OdeObject):
    entry = StringField(default="")
    amount = IntField(default=0)


def crash(db):
    """Kill the process's view of the database without flushing."""
    db.store.crash()
    db._closed = True


class TestCrashDurability:
    def test_committed_objects_survive(self, db_path):
        db = Database(db_path)
        db.create(Ledger)
        oids = [db.pnew(Ledger, entry="e%d" % i, amount=i).oid
                for i in range(20)]
        crash(db)

        db2 = Database(db_path)
        assert db2.store.last_recovery is not None
        for i, oid in enumerate(oids):
            assert db2.deref(oid).amount == i
        db2.close()

    def test_uncommitted_txn_lost(self, db_path):
        db = Database(db_path)
        db.create(Ledger)
        keep = db.pnew(Ledger, entry="keep", amount=1).oid
        # open a transaction by hand, mutate, crash before commit
        from repro.core.database import Transaction
        handle = Transaction(db.store.begin(), db)
        db._txn = handle
        obj = db.deref(keep)
        obj.amount = 999
        db.pnew(Ledger, entry="phantom")
        db._flush(handle.txn_id)  # force pages dirty mid-txn
        crash(db)

        db2 = Database(db_path)
        assert db2.deref(keep).amount == 1
        assert db2.cluster(Ledger).count() == 1
        db2.close()

    def test_versions_survive_crash(self, db_path):
        db = Database(db_path)
        db.create(Ledger)
        obj = db.pnew(Ledger, entry="v", amount=1)
        old = obj.vref
        newversion(obj)
        obj.amount = 2
        with db.transaction():
            pass
        oid = obj.oid
        crash(db)

        db2 = Database(db_path)
        assert db2.deref(old).amount == 1
        assert db2.deref(oid).amount == 2
        db2.close()

    def test_trigger_activations_survive_crash(self, db_path):
        from repro import Trigger

        fired = []

        class Alarm(OdeObject):
            level = IntField(default=0)
            watch = Trigger(condition=lambda self: self.level > 10,
                            action=lambda self: fired.append(self.level))

        db = Database(db_path)
        db.create(Alarm)
        a = db.pnew(Alarm)
        a.watch()
        oid = a.oid
        crash(db)

        db2 = Database(db_path)
        with db2.transaction():
            db2.deref(oid).level = 50
        assert fired == [50]
        db2.close()

    def test_repeated_crashes(self, db_path):
        expected = 0
        for round_no in range(5):
            db = Database(db_path)
            if round_no == 0:
                db.create(Ledger)
            db.pnew(Ledger, entry="r%d" % round_no)
            expected += 1
            crash(db)
        db = Database(db_path)
        assert db.cluster(Ledger).count() == expected
        db.close()


class TestDecodedCacheAfterRecovery:
    def test_stale_decoded_entry_rejected_after_recovery(self, db_path):
        """Recovery redo bumps the page LSNs, so a decoded-cache entry
        captured before the crash (with pre-crash tokens) must fail
        validation and re-read the recovered state."""
        db = Database(db_path)
        db.create(Ledger)
        oid = db.pnew(Ledger, entry="a", amount=1).oid
        key = (oid.cluster, oid.serial)
        db._cache.clear()
        assert db.deref(oid).amount == 1     # warm the decoded cache
        stale_entry = db._decoded._entries[key]
        with db.transaction():
            db.deref(oid).amount = 99        # committed; WAL survives
        crash(db)

        db2 = Database(db_path)
        assert db2.store.last_recovery is not None
        # Transplant the pre-crash entry (amount=1, old LSN tokens) into
        # the recovered database's cache: validation must reject it.
        db2._decoded._entries[key] = stale_entry
        db2._cache.clear()
        assert db2.deref(oid).amount == 99
        assert db2._decoded.stats()["misses"] >= 1
        db2.close()

    def test_cache_refills_and_serves_after_recovery(self, db_path):
        """After a crash+recovery cycle the decoded cache works normally:
        the second deref of an unchanged object is a validated hit."""
        db = Database(db_path)
        db.create(Ledger)
        oid = db.pnew(Ledger, entry="b", amount=7).oid
        crash(db)

        db2 = Database(db_path)
        db2._cache.clear()
        assert db2.deref(oid).amount == 7
        db2._cache.clear()
        assert db2.deref(oid).amount == 7
        assert db2._decoded.stats()["hits"] >= 1
        db2.close()
